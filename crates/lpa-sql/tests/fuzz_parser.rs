//! Robustness: the SQL pipeline must never panic, whatever the input.

use lpa_sql::{parse_query, parse_select, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in "\\PC{0,200}") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(input in "[a-zA-Z0-9_ ,.()=<>'*]{0,160}") {
        if let Ok(tokens) = tokenize(&input) {
            let _ = parse_select(&tokens);
        }
    }

    #[test]
    fn resolver_never_panics_on_sqlish_text(
        table in "(lineorder|customer|part|supplier|date|nope)",
        col_a in "(lo_orderkey|lo_custkey|c_custkey|p_partkey|bogus)",
        col_b in "(c_custkey|d_datekey|s_suppkey|bogus)",
        lit in 0u32..10_000,
    ) {
        let schema = lpa_schema::ssb::schema(0.001);
        let sql = format!(
            "SELECT count(*) FROM {table} t, customer c WHERE t.{col_a} = c.{col_b} AND c.c_nation = {lit}"
        );
        let _ = parse_query(&schema, &sql);
    }
}

#[test]
fn deeply_nested_subqueries_do_not_blow_up() {
    let schema = lpa_schema::tpcch::schema(0.0005);
    let sql = "SELECT count(*) FROM item i WHERE i.i_id IN \
        (SELECT ol.ol_i_id FROM orderline ol WHERE ol.ol_o_key IN \
            (SELECT o.o_key FROM \"order\" o WHERE o.o_d_id = 1))";
    // Double-quoted identifiers are not supported; the bare keywordless
    // variant is.
    let _ = lpa_sql::parse_query(&schema, sql);
    let ok = lpa_sql::parse_query(
        &schema,
        "SELECT count(*) FROM item i WHERE i.i_id IN \
         (SELECT ol.ol_i_id FROM orderline ol WHERE ol.ol_o_key IN \
             (SELECT no.no_o_key FROM neworder no WHERE no.no_d_id = 1))",
    )
    .unwrap();
    assert_eq!(ok.tables.len(), 3, "both nesting levels flattened");
    assert_eq!(ok.joins.len(), 2);
}
