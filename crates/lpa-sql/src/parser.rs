//! Recursive-descent parser for the supported `SELECT` subset.

use crate::ast::{ColumnRef, Predicate, SelectStmt, TableRef, Value};
use crate::lexer::Token;
use std::fmt;

/// Parse failure with token position.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at token {}", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

const AGG_FUNCS: &[&str] = &["sum", "count", "avg", "min", "max", "stddev", "median"];

/// Parse a full `SELECT` statement from a token stream.
pub fn parse_select(tokens: &[Token]) -> Result<SelectStmt, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    if p.pos != tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// SELECT … FROM … [WHERE …] [GROUP BY …] [HAVING …] [ORDER BY …]
    /// [LIMIT n]
    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_keyword("SELECT")?;
        self.eat_keyword("DISTINCT");
        let aggregates = self.skip_select_list()?;

        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut predicates = Vec::new();
        loop {
            if self.eat(&Token::Comma) {
                from.push(self.table_ref()?);
                continue;
            }
            // [INNER|LEFT|RIGHT [OUTER]] JOIN t ON cond
            let mark = self.pos;
            if self.eat_keyword("LEFT") || self.eat_keyword("RIGHT") {
                self.eat_keyword("OUTER");
            } else {
                self.eat_keyword("INNER");
            }
            if self.eat_keyword("JOIN") {
                from.push(self.table_ref()?);
                self.expect_keyword("ON")?;
                self.conjunction(&mut predicates)?;
                continue;
            }
            self.pos = mark;
            break;
        }

        if self.eat_keyword("WHERE") {
            self.conjunction(&mut predicates)?;
        }

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("HAVING") {
            // Parse and discard (post-aggregation filters don't influence
            // partitioning decisions).
            let mut sink = Vec::new();
            self.conjunction(&mut sink)?;
        }
        let mut has_order_by = false;
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            has_order_by = true;
            loop {
                let _ = self.column_ref()?;
                let _ = self.eat_keyword("ASC") || self.eat_keyword("DESC");
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_keyword("LIMIT") {
            match self.peek() {
                Some(Token::Number(_)) => self.pos += 1,
                _ => return Err(self.err("expected LIMIT count")),
            }
        }

        Ok(SelectStmt {
            aggregates,
            from,
            predicates,
            group_by,
            has_order_by,
        })
    }

    /// Skip the projection list up to `FROM`, counting aggregate calls.
    fn skip_select_list(&mut self) -> Result<usize, ParseError> {
        let mut depth = 0usize;
        let mut aggregates = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end in select list")),
                Some(Token::Keyword(k)) if k == "FROM" && depth == 0 => return Ok(aggregates),
                Some(Token::LParen) => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(Token::RParen) => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| self.err("unbalanced parentheses"))?;
                    self.pos += 1;
                }
                Some(Token::Ident(name)) => {
                    if AGG_FUNCS.contains(&name.as_str())
                        && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
                    {
                        aggregates += 1;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        // Optional [AS] alias (but not a keyword like WHERE).
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(a)) = self.peek() {
            let a = a.clone();
            self.pos += 1;
            Some(a)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            let col = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Value::Number(n))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                match self.peek().cloned() {
                    Some(Token::Number(n)) => {
                        self.pos += 1;
                        Ok(Value::Number(-n))
                    }
                    _ => Err(self.err("expected number after minus")),
                }
            }
            Some(Token::String(s)) => {
                self.pos += 1;
                Ok(Value::String(s))
            }
            _ => Err(self.err("expected literal value")),
        }
    }

    /// Parse `pred (AND pred)*`, collapsing OR-groups into opaque filters.
    fn conjunction(&mut self, out: &mut Vec<Predicate>) -> Result<(), ParseError> {
        loop {
            let first = self.predicate()?;
            if self.peek_keyword("OR") {
                // Fold the whole disjunction into one opaque predicate.
                let mut cols = pred_columns(&first);
                while self.eat_keyword("OR") {
                    let next = self.predicate()?;
                    cols.extend(pred_columns(&next));
                }
                out.push(Predicate::Opaque { cols });
            } else {
                out.push(first);
            }
            if !self.eat_keyword("AND") {
                return Ok(());
            }
        }
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        if self.eat(&Token::LParen) {
            let mut inner = Vec::new();
            self.conjunction(&mut inner)?;
            self.expect(&Token::RParen, ")")?;
            // A parenthesized conjunction of one predicate passes through;
            // larger groups become opaque (rare in practice).
            if inner.len() == 1 {
                if let Some(only) = inner.pop() {
                    return Ok(only);
                }
            }
            return Ok(Predicate::Opaque {
                cols: inner.iter().flat_map(pred_columns).collect(),
            });
        }
        if self.eat_keyword("NOT") {
            let inner = self.predicate()?;
            return Ok(match inner {
                Predicate::InSubquery { col, subquery, .. } => Predicate::InSubquery {
                    col,
                    negated: true,
                    subquery,
                },
                other => Predicate::Opaque {
                    cols: pred_columns(&other),
                },
            });
        }
        if self.eat_keyword("EXISTS") {
            self.expect(&Token::LParen, "( after EXISTS")?;
            let sub = self.select()?;
            self.expect(&Token::RParen, ") after subquery")?;
            return Ok(Predicate::InSubquery {
                col: None,
                negated: false,
                subquery: Box::new(sub),
            });
        }

        let col = self.column_ref()?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.value()?;
            self.expect_keyword("AND")?;
            let hi = self.value()?;
            return Ok(Predicate::Between { col, lo, hi });
        }
        if self.eat_keyword("LIKE") {
            let v = self.value()?;
            return Ok(Predicate::Cmp {
                col,
                op: "LIKE".into(),
                value: v,
            });
        }
        if self.eat_keyword("IS") {
            self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Predicate::Opaque { cols: vec![col] });
        }
        let negated_in = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen, "( after IN")?;
            if self.peek_keyword("SELECT") {
                let sub = self.select()?;
                self.expect(&Token::RParen, ") after subquery")?;
                return Ok(Predicate::InSubquery {
                    col: Some(col),
                    negated: negated_in,
                    subquery: Box::new(sub),
                });
            }
            let mut values = vec![self.value()?];
            while self.eat(&Token::Comma) {
                values.push(self.value()?);
            }
            self.expect(&Token::RParen, ") after IN list")?;
            return Ok(Predicate::InList { col, values });
        }
        if negated_in {
            return Err(self.err("expected IN after NOT"));
        }

        let op = match self.peek() {
            Some(Token::Eq) => "=",
            Some(Token::Neq) => "<>",
            Some(Token::Lt) => "<",
            Some(Token::Le) => "<=",
            Some(Token::Gt) => ">",
            Some(Token::Ge) => ">=",
            _ => return Err(self.err("expected comparison operator")),
        }
        .to_string();
        self.pos += 1;

        // Column-to-column (join) or column-to-literal?
        if matches!(self.peek(), Some(Token::Ident(_))) && op == "=" {
            let rhs = self.column_ref()?;
            return Ok(Predicate::ColEq(col, rhs));
        }
        let value = self.value()?;
        Ok(Predicate::Cmp { col, op, value })
    }
}

fn pred_columns(p: &Predicate) -> Vec<ColumnRef> {
    match p {
        Predicate::ColEq(a, b) => vec![a.clone(), b.clone()],
        Predicate::Cmp { col, .. }
        | Predicate::Between { col, .. }
        | Predicate::InList { col, .. } => vec![col.clone()],
        Predicate::InSubquery { col, .. } => col.iter().cloned().collect(),
        Predicate::Opaque { cols } => cols.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(sql: &str) -> SelectStmt {
        parse_select(&tokenize(sql).unwrap()).unwrap()
    }

    #[test]
    fn comma_joins_and_where() {
        let s = parse(
            "SELECT sum(l.lo_revenue) FROM lineorder l, date d \
             WHERE l.lo_orderdate = d.d_datekey AND d.d_year = 1993",
        );
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.aggregates, 1);
        assert_eq!(s.predicates.len(), 2);
        assert!(matches!(s.predicates[0], Predicate::ColEq(..)));
        assert!(matches!(s.predicates[1], Predicate::Cmp { .. }));
    }

    #[test]
    fn explicit_join_on() {
        let s = parse(
            "SELECT * FROM customer c INNER JOIN orders o ON c.c_key = o.o_c_key \
             LEFT JOIN nation n ON c.c_n_key = n.n_key",
        );
        assert_eq!(s.from.len(), 3);
        assert_eq!(
            s.predicates
                .iter()
                .filter(|p| matches!(p, Predicate::ColEq(..)))
                .count(),
            2
        );
    }

    #[test]
    fn between_in_like() {
        let s = parse(
            "SELECT count(*) FROM part p WHERE p.p_size BETWEEN 1 AND 10 \
             AND p.p_brand IN ('b1', 'b2') AND p.p_name LIKE 'green'",
        );
        assert!(matches!(s.predicates[0], Predicate::Between { .. }));
        assert!(matches!(s.predicates[1], Predicate::InList { .. }));
        assert!(matches!(
            s.predicates[2],
            Predicate::Cmp { ref op, .. } if op == "LIKE"
        ));
    }

    #[test]
    fn nested_in_subquery() {
        let s = parse(
            "SELECT * FROM item i WHERE i.i_id IN \
             (SELECT ol.ol_i_id FROM orderline ol WHERE ol.ol_d_id = 3)",
        );
        match &s.predicates[0] {
            Predicate::InSubquery {
                col,
                negated,
                subquery,
            } => {
                assert_eq!(col.as_ref().unwrap().column, "i_id");
                assert!(!negated);
                assert_eq!(subquery.from[0].name, "orderline");
            }
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn exists_subquery_and_not_in() {
        let s = parse(
            "SELECT * FROM supplier s WHERE EXISTS \
             (SELECT * FROM stock st WHERE st.s_su_key = s.su_key) \
             AND s.su_n_key NOT IN (SELECT n.n_key FROM nation n)",
        );
        assert_eq!(s.predicates.len(), 2);
        assert!(matches!(
            s.predicates[1],
            Predicate::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn or_groups_become_opaque() {
        let s = parse("SELECT * FROM t WHERE t.a = 1 OR t.b = 2");
        match &s.predicates[0] {
            Predicate::Opaque { cols } => assert_eq!(cols.len(), 2),
            other => panic!("expected opaque, got {other:?}"),
        }
    }

    #[test]
    fn group_order_limit_tail() {
        let s = parse(
            "SELECT d.d_year, sum(l.lo_revenue) FROM lineorder l, date d \
             WHERE l.lo_orderdate = d.d_datekey GROUP BY d.d_year \
             ORDER BY d.d_year DESC LIMIT 10",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.has_order_by);
    }

    #[test]
    fn trailing_tokens_rejected() {
        let t = tokenize("SELECT * FROM t WHERE t.a = 1 garbage more").unwrap();
        assert!(parse_select(&t).is_err());
    }

    #[test]
    fn case_expression_in_projection() {
        let s = parse(
            "SELECT CASE WHEN t.a = 1 THEN 2 ELSE 3 END, avg(t.b) FROM t \
             WHERE t.c > 0",
        );
        assert_eq!(s.aggregates, 1);
    }
}
