//! SQL frontend for the learned partitioning advisor.
//!
//! The advisor is driven by the *observed workload* — the SQL text a
//! customer's applications actually submit (Fig. 1 of the paper). This
//! crate turns that text into the advisor's internal representation:
//!
//! * [`lexer`] / [`parser`] — a recursive-descent parser for the analytical
//!   `SELECT` subset (joins in `FROM`/`ON` or `WHERE`, conjunctive filter
//!   predicates, `IN (subquery)` / `EXISTS` nesting, `GROUP BY` /
//!   `ORDER BY` / `LIMIT` tails);
//! * [`mod@resolve`] — name resolution against a [`lpa_schema::Schema`]
//!   plus heuristic selectivity estimation, producing a
//!   [`lpa_workload::Query`] join graph. Nested subqueries are
//!   *flattened* into the outer join graph — the paper deliberately avoids
//!   encoding query structure into the network (Section 3.2), so all the
//!   advisor needs from a nested query is which tables it touches and how
//!   they join.
//!
//! ```
//! use lpa_sql::parse_query;
//! let schema = lpa_schema::ssb::schema(0.01).expect("schema builds");
//! let q = parse_query(
//!     &schema,
//!     "SELECT sum(lo_revenue) FROM lineorder l, date d \
//!      WHERE l.lo_orderdate = d.d_datekey AND d.d_year = 1993",
//! )
//! .unwrap();
//! assert_eq!(q.joins.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod resolve;

pub use ast::{ColumnRef, Predicate, SelectStmt, TableRef, Value};
pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse_select, ParseError};
pub use resolve::{resolve, ResolveError};

use lpa_schema::Schema;
use lpa_workload::Query;

/// One-stop helper: parse SQL text and resolve it against a schema.
pub fn parse_query(schema: &Schema, sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql).map_err(SqlError::Lex)?;
    let stmt = parse_select(&tokens).map_err(SqlError::Parse)?;
    resolve(schema, &stmt, sql).map_err(SqlError::Resolve)
}

/// Any error on the SQL → query path.
#[derive(Clone, PartialEq, Debug)]
pub enum SqlError {
    Lex(LexError),
    Parse(ParseError),
    Resolve(ResolveError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lex(e) => write!(f, "lex error: {e}"),
            Self::Parse(e) => write!(f, "parse error: {e}"),
            Self::Resolve(e) => write!(f, "resolve error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}
