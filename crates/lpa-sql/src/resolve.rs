//! Name resolution + selectivity estimation: AST → advisor [`Query`].
//!
//! Nested subqueries are flattened into the outer join graph: an
//! `x IN (SELECT y FROM …)` contributes the subquery's tables and joins
//! plus an equi-join `x = y` (a semi-join approximated as a join — the
//! advisor only needs the co-location structure, not exact cardinalities).
//! Correlated predicates resolve against the combined alias environment.

use crate::ast::{ColumnRef, Predicate, SelectStmt, TableRef, Value};
use lpa_schema::{AttrRef, Schema, TableId};
use lpa_workload::{JoinPred, Query};
use std::collections::HashMap;
use std::fmt;

/// Resolution failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResolveError {
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    /// The statement's tables are not all connected by joins.
    CartesianProduct,
    NoTables,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Self::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Self::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            Self::CartesianProduct => write!(f, "tables are not connected by join predicates"),
            Self::NoTables => write!(f, "statement references no tables"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Default selectivities for predicate shapes whose true selectivity the
/// advisor cannot know from the text alone.
mod sel {
    pub const RANGE: f64 = 1.0 / 3.0;
    pub const BETWEEN: f64 = 0.1;
    pub const NEQ: f64 = 0.9;
    pub const LIKE: f64 = 0.05;
    pub const OPAQUE: f64 = 0.5;
    pub const NOT_IN_SUBQUERY: f64 = 0.5;
    pub const FLOOR: f64 = 1e-6;
}

struct Scope {
    /// alias or table name → table id.
    env: HashMap<String, TableId>,
    /// Tables in first-reference order.
    tables: Vec<TableId>,
}

impl Scope {
    fn add(&mut self, schema: &Schema, r: &TableRef) -> Result<TableId, ResolveError> {
        let id = schema
            .table_by_name(&r.name)
            .ok_or_else(|| ResolveError::UnknownTable(r.name.clone()))?;
        if !self.tables.contains(&id) {
            self.tables.push(id);
        }
        self.env.insert(r.name.clone(), id);
        if let Some(a) = &r.alias {
            self.env.insert(a.clone(), id);
        }
        Ok(id)
    }

    fn column(&self, schema: &Schema, c: &ColumnRef) -> Result<AttrRef, ResolveError> {
        if let Some(t) = &c.table {
            let id = self
                .env
                .get(t)
                .copied()
                .ok_or_else(|| ResolveError::UnknownTable(t.clone()))?;
            let attr = schema
                .table(id)
                .attr_by_name(&c.column)
                .ok_or_else(|| ResolveError::UnknownColumn(format!("{t}.{}", c.column)))?;
            return Ok(AttrRef::new(id, attr));
        }
        // Bare column: search all in-scope tables.
        let mut found = None;
        for &id in &self.tables {
            if let Some(attr) = schema.table(id).attr_by_name(&c.column) {
                if found.is_some() {
                    return Err(ResolveError::AmbiguousColumn(c.column.clone()));
                }
                found = Some(AttrRef::new(id, attr));
            }
        }
        found.ok_or_else(|| ResolveError::UnknownColumn(c.column.clone()))
    }
}

/// Resolve a parsed statement against a schema.
pub fn resolve(schema: &Schema, stmt: &SelectStmt, sql: &str) -> Result<Query, ResolveError> {
    let mut scope = Scope {
        env: HashMap::new(),
        tables: Vec::new(),
    };
    let mut preds: Vec<Predicate> = Vec::new();
    let mut extra_joins: Vec<(ColumnRef, ColumnRef)> = Vec::new();
    let mut aggregates = stmt.aggregates;
    flatten(
        schema,
        stmt,
        &mut scope,
        &mut preds,
        &mut extra_joins,
        &mut aggregates,
    )?;
    if scope.tables.is_empty() {
        return Err(ResolveError::NoTables);
    }

    // Resolve predicates into joins and per-table selectivities.
    let mut joins: HashMap<(TableId, TableId), Vec<(AttrRef, AttrRef)>> = HashMap::new();
    let mut selectivity: HashMap<TableId, f64> = HashMap::new();
    let apply_sel = |t: TableId, s: f64, map: &mut HashMap<TableId, f64>| {
        let e = map.entry(t).or_insert(1.0);
        *e = (*e * s).max(sel::FLOOR);
    };

    let add_join = |a: AttrRef,
                    b: AttrRef,
                    joins: &mut HashMap<(TableId, TableId), Vec<(AttrRef, AttrRef)>>,
                    selmap: &mut HashMap<TableId, f64>| {
        if a.table == b.table {
            // Same-table equality: treat as a filter.
            apply_sel(a.table, sel::OPAQUE, selmap);
            return;
        }
        let key = if a.table < b.table {
            (a.table, b.table)
        } else {
            (b.table, a.table)
        };
        let pair = if a.table < b.table { (a, b) } else { (b, a) };
        let pairs = joins.entry(key).or_default();
        if !pairs.contains(&pair) {
            pairs.push(pair);
        }
    };

    for (ca, cb) in &extra_joins {
        let a = scope.column(schema, ca)?;
        let b = scope.column(schema, cb)?;
        add_join(a, b, &mut joins, &mut selectivity);
    }

    for p in &preds {
        match p {
            Predicate::ColEq(ca, cb) => {
                let a = scope.column(schema, ca)?;
                let b = scope.column(schema, cb)?;
                add_join(a, b, &mut joins, &mut selectivity);
            }
            Predicate::Cmp { col, op, value } => {
                let a = scope.column(schema, col)?;
                let s = match op.as_str() {
                    "=" => 1.0 / schema.attr_distinct(a) as f64,
                    "<>" => sel::NEQ,
                    "LIKE" => sel::LIKE,
                    _ => sel::RANGE,
                };
                let _ = value;
                apply_sel(a.table, s, &mut selectivity);
            }
            Predicate::Between { col, lo, hi } => {
                let a = scope.column(schema, col)?;
                // Numeric ranges give a hint when the domain is known.
                let s = match (lo, hi) {
                    (Value::Number(l), Value::Number(h)) if h > l => {
                        let d = schema.attr_distinct(a) as f64;
                        ((h - l) / d)
                            .clamp(sel::FLOOR, 1.0)
                            .min(sel::BETWEEN.max((h - l) / d))
                    }
                    _ => sel::BETWEEN,
                };
                apply_sel(a.table, s.min(1.0), &mut selectivity);
            }
            Predicate::InList { col, values } => {
                let a = scope.column(schema, col)?;
                let s = (values.len() as f64 / schema.attr_distinct(a) as f64).min(1.0);
                apply_sel(a.table, s, &mut selectivity);
            }
            Predicate::InSubquery { col, negated, .. } => {
                // The subquery body was flattened already; a NOT IN keeps
                // only an opaque filter on the outer column's table.
                if *negated {
                    if let Some(c) = col {
                        let a = scope.column(schema, c)?;
                        apply_sel(a.table, sel::NOT_IN_SUBQUERY, &mut selectivity);
                    }
                }
            }
            Predicate::Opaque { cols } => {
                let mut seen = Vec::new();
                for c in cols {
                    let a = scope.column(schema, c)?;
                    if !seen.contains(&a.table) {
                        seen.push(a.table);
                        apply_sel(a.table, sel::OPAQUE, &mut selectivity);
                    }
                }
            }
        }
    }

    let cpu_factor = 1.0
        + 0.2 * aggregates as f64
        + if stmt.group_by.is_empty() { 0.0 } else { 0.2 }
        + if stmt.has_order_by { 0.1 } else { 0.0 };

    let tables = scope.tables.clone();
    let sel_vec: Vec<f64> = tables
        .iter()
        .map(|t| selectivity.get(t).copied().unwrap_or(1.0))
        .collect();
    let join_vec: Vec<JoinPred> = {
        let mut keys: Vec<_> = joins.keys().copied().collect();
        keys.sort();
        keys.into_iter()
            .filter_map(|k| joins.remove(&k))
            .map(JoinPred::new)
            .collect()
    };

    let q = Query {
        name: format!("sql_{:016x}", fnv(sql)),
        tables,
        joins: join_vec,
        selectivity: sel_vec,
        cpu_factor,
    };
    q.validate(schema).map_err(|e| match e {
        lpa_workload::QueryError::Disconnected(_) => ResolveError::CartesianProduct,
        _ => ResolveError::UnknownColumn(format!("{e}")),
    })?;
    Ok(q)
}

/// Merge a statement (and, recursively, its subqueries) into the shared
/// scope and predicate lists.
fn flatten(
    schema: &Schema,
    stmt: &SelectStmt,
    scope: &mut Scope,
    preds: &mut Vec<Predicate>,
    extra_joins: &mut Vec<(ColumnRef, ColumnRef)>,
    aggregates: &mut usize,
) -> Result<(), ResolveError> {
    for t in &stmt.from {
        scope.add(schema, t)?;
    }
    for p in &stmt.predicates {
        if let Predicate::InSubquery {
            col,
            negated,
            subquery,
        } = p
        {
            *aggregates += subquery.aggregates;
            flatten(schema, subquery, scope, preds, extra_joins, aggregates)?;
            if !negated {
                if let (Some(outer), Some(inner)) = (col, first_projected_column(subquery)) {
                    extra_joins.push((outer.clone(), inner));
                }
            }
            // Keep the predicate itself for the NOT IN filter handling.
            preds.push(p.clone());
        } else {
            preds.push(p.clone());
        }
    }
    Ok(())
}

/// The column an `IN (SELECT col FROM …)` subquery projects — we re-parse
/// it from the statement's group-by/predicates shape: the parser does not
/// retain projections, so the convention is that the *first* predicate
/// column of the subquery's driving table stands in. To keep this robust
/// we instead look at the subquery's first FROM table and pick its first
/// column mentioned anywhere; when nothing is mentioned, `None`.
fn first_projected_column(sub: &SelectStmt) -> Option<ColumnRef> {
    // Prefer an explicitly projected column recorded by the parser; the
    // lightweight parser skips projections, so fall back to the first
    // column reference in the subquery's predicates that belongs to one of
    // the subquery's own tables (by alias or name).
    let own: Vec<&str> = sub
        .from
        .iter()
        .flat_map(|t| [t.name.as_str()].into_iter().chain(t.alias.as_deref()))
        .collect();
    for p in &sub.predicates {
        for c in pred_cols(p) {
            if let Some(t) = &c.table {
                if own.contains(&t.as_str()) {
                    return Some(c.clone());
                }
            }
        }
    }
    None
}

fn pred_cols(p: &Predicate) -> Vec<&ColumnRef> {
    match p {
        Predicate::ColEq(a, b) => vec![a, b],
        Predicate::Cmp { col, .. }
        | Predicate::Between { col, .. }
        | Predicate::InList { col, .. } => vec![col],
        Predicate::InSubquery { col, .. } => col.iter().collect(),
        Predicate::Opaque { cols } => cols.iter().collect(),
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn ssb() -> Schema {
        lpa_schema::ssb::schema(0.01).expect("schema builds")
    }

    #[test]
    fn simple_join_with_filters() {
        let schema = ssb();
        let q = parse_query(
            &schema,
            "SELECT sum(lo_revenue) FROM lineorder l, date d \
             WHERE l.lo_orderdate = d.d_datekey AND d.d_year = 1993 \
             AND l.lo_orderkey > 100",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1);
        let date = schema.table_by_name("date").unwrap();
        // d_year = literal → 1/7 selectivity.
        assert!((q.table_selectivity(date) - 1.0 / 7.0).abs() < 1e-9);
        let lo = schema.table_by_name("lineorder").unwrap();
        assert!((q.table_selectivity(lo) - 1.0 / 3.0).abs() < 1e-9);
        assert!(q.cpu_factor > 1.0);
    }

    #[test]
    fn bare_columns_resolve_via_search() {
        let schema = ssb();
        let q = parse_query(
            &schema,
            "SELECT count(*) FROM lineorder, customer \
             WHERE lo_custkey = c_custkey AND c_nation = 7",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        let cust = schema.table_by_name("customer").unwrap();
        assert!((q.table_selectivity(cust) - 1.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn composite_join_predicates_merge_into_one_joinpred() {
        let schema = lpa_schema::tpcds::schema(0.001).expect("schema builds");
        let q = parse_query(
            &schema,
            "SELECT count(*) FROM store_sales ss, store_returns sr \
             WHERE ss.ss_ticket_number = sr.sr_ticket_number \
             AND ss.ss_item_sk = sr.sr_item_sk",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1, "one join with two pairs");
        assert_eq!(q.joins[0].pairs.len(), 2);
    }

    #[test]
    fn in_subquery_flattens_to_join() {
        let schema = lpa_schema::tpcch::schema(0.0005).expect("schema builds");
        let q = parse_query(
            &schema,
            "SELECT count(*) FROM item i WHERE i.i_id IN \
             (SELECT ol.ol_i_id FROM orderline ol WHERE ol.ol_d_id = 3)",
        )
        .unwrap();
        let ol = schema.table_by_name("orderline").unwrap();
        assert!(q.uses_table(ol), "subquery table flattened in");
        assert_eq!(q.joins.len(), 1, "semi-join became a join");
        // The subquery's district filter survives.
        assert!(q.table_selectivity(ol) < 1.0);
    }

    #[test]
    fn exists_correlated_subquery() {
        let schema = lpa_schema::tpcch::schema(0.0005).expect("schema builds");
        let q = parse_query(
            &schema,
            "SELECT count(*) FROM supplier s WHERE EXISTS \
             (SELECT st.s_key FROM stock st WHERE st.s_su_key = s.su_key)",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.joins.len(), 1, "correlation predicate is the join");
    }

    #[test]
    fn cartesian_product_rejected() {
        let schema = ssb();
        let err = parse_query(&schema, "SELECT * FROM lineorder, customer").unwrap_err();
        assert!(matches!(
            err,
            crate::SqlError::Resolve(ResolveError::CartesianProduct)
        ));
    }

    #[test]
    fn unknown_names_rejected() {
        let schema = ssb();
        assert!(parse_query(&schema, "SELECT * FROM nope").is_err());
        assert!(parse_query(&schema, "SELECT * FROM lineorder l WHERE l.nope = 1").is_err());
    }

    #[test]
    fn in_list_selectivity_uses_domain() {
        let schema = ssb();
        let q = parse_query(
            &schema,
            "SELECT count(*) FROM lineorder l, part p \
             WHERE l.lo_partkey = p.p_partkey AND p.p_category IN (1, 2, 3)",
        )
        .unwrap();
        let part = schema.table_by_name("part").unwrap();
        assert!((q.table_selectivity(part) - 3.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn queries_are_named_by_text_hash() {
        let schema = ssb();
        let a = parse_query(&schema, "SELECT * FROM lineorder l WHERE l.lo_orderkey = 5").unwrap();
        let b = parse_query(&schema, "SELECT * FROM lineorder l WHERE l.lo_orderkey = 5").unwrap();
        let c = parse_query(&schema, "SELECT * FROM lineorder l WHERE l.lo_orderkey = 6").unwrap();
        assert_eq!(a.name, b.name);
        assert_ne!(a.name, c.name);
    }
}
