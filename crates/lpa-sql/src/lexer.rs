//! SQL tokenizer.

use std::fmt;

/// A SQL token. Keywords are case-insensitive and normalized to upper
/// case; identifiers keep their original (lowercased) spelling.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Keyword (SELECT, FROM, WHERE, …), upper-cased.
    Keyword(String),
    /// Identifier (table, column, alias), lower-cased.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (single quotes).
    String(String),
    /// Punctuation / operators.
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "ON",
    "GROUP", "ORDER", "BY", "HAVING", "LIMIT", "AS", "IN", "EXISTS", "NOT", "BETWEEN", "LIKE",
    "ASC", "DESC", "DISTINCT", "UNION", "ALL", "NULL", "IS", "CASE", "WHEN", "THEN", "ELSE", "END",
];

/// Lexing failure with byte position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for LexError {}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Neq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Token::String(sql[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'e')
                {
                    i += 1;
                }
                let text = &sql[start..i];
                let n = text.parse::<f64>().map_err(|_| LexError {
                    position: start,
                    message: format!("bad number `{text}`"),
                })?;
                out.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &sql[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_ascii_lowercase()));
                }
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let t = tokenize("SELECT a.x, b.y FROM a, b WHERE a.k = b.k").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert!(t.contains(&Token::Comma));
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Ident("a".into())));
    }

    #[test]
    fn case_insensitive_keywords_preserved_idents() {
        let t = tokenize("select X from T_Name").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("x".into()));
        assert_eq!(t[3], Token::Ident("t_name".into()));
    }

    #[test]
    fn numbers_strings_operators() {
        let t = tokenize("WHERE a >= 10.5 AND b <> 'x y' AND c <= 3").unwrap();
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Neq));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Number(10.5)));
        assert!(t.contains(&Token::String("x y".into())));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT x -- comment here\nFROM t").unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn unterminated_string_errors() {
        let e = tokenize("WHERE a = 'oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(tokenize("SELECT §").is_err());
    }
}
