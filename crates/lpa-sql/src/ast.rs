//! Abstract syntax for the supported `SELECT` subset.

use serde::{Deserialize, Serialize};

/// `table.column` or bare `column` reference (table resolved later via
/// aliases or column-name search).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: Option<String>,
    pub column: String,
}

/// A table in the `FROM` list, with optional alias.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// Literal values in predicates.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Value {
    Number(f64),
    String(String),
}

/// A conjunctive predicate (the parser normalizes the `WHERE` clause and
/// `ON` conditions into one conjunction list; `OR` groups collapse into a
/// single opaque filter on their columns' tables).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Predicate {
    /// `a.x = b.y` — a join (or a same-table equality, treated as filter).
    ColEq(ColumnRef, ColumnRef),
    /// `a.x <op> literal`.
    Cmp {
        col: ColumnRef,
        /// One of `=`, `<>`, `<`, `<=`, `>`, `>=`, `LIKE`.
        op: String,
        value: Value,
    },
    /// `a.x BETWEEN lo AND hi`.
    Between {
        col: ColumnRef,
        lo: Value,
        hi: Value,
    },
    /// `a.x IN (v1, v2, …)`.
    InList { col: ColumnRef, values: Vec<Value> },
    /// `a.x IN (SELECT …)` / correlated `EXISTS (SELECT …)` — the nested
    /// statement is kept whole and flattened during resolution.
    InSubquery {
        col: Option<ColumnRef>,
        negated: bool,
        subquery: Box<SelectStmt>,
    },
    /// An `OR` group or other opaque condition over the given columns.
    Opaque { cols: Vec<ColumnRef> },
}

/// A parsed `SELECT` statement.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct SelectStmt {
    /// Number of aggregate functions in the projection (drives the CPU
    /// weight of the resolved query).
    pub aggregates: usize,
    pub from: Vec<TableRef>,
    pub predicates: Vec<Predicate>,
    pub group_by: Vec<ColumnRef>,
    pub has_order_by: bool,
}

impl SelectStmt {
    /// All table names referenced in `FROM` (not including subqueries).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.from.iter().map(|t| t.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_names_iterates_from_list() {
        let s = SelectStmt {
            from: vec![
                TableRef {
                    name: "a".into(),
                    alias: None,
                },
                TableRef {
                    name: "b".into(),
                    alias: Some("x".into()),
                },
            ],
            ..Default::default()
        };
        let names: Vec<&str> = s.table_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
