//! The incremental (delta) reward engine for the offline cost-model
//! backend.
//!
//! The paper's offline phase evaluates `R(s) = -Σ_j f_j · c(q_j, s)` once
//! per environment step. The seed implementation re-derived every
//! `c(q_j, s)` per step through a memo cache keyed by freshly allocated
//! `Vec<TableState>` keys. This engine only pays for what an action
//! actually changed:
//!
//! * a **per-query cost vector** holds `c(q_j, ·)` for the tracked
//!   partitioning; an action re-costs only the queries whose tables it
//!   touched (via a table→queries inverted index; edge toggles go through
//!   the edge→queries index of their incident queries);
//! * the memo cache keys are [`InternedKey`]s — fixed-width dense ids
//!   interned through a `BTreeMap` (lint L002 forbids hashing here), so a
//!   lookup allocates nothing;
//! * the reward total is **always** re-summed over the cost vector in
//!   query-index order, skipping zero frequencies — exactly the summation
//!   the full recompute performs — so delta and full rewards are
//!   bit-identical (the per-query costs come from the same pure model,
//!   and float addition happens in the same fixed order).
//!
//! [`RecostMode::Full`] preserves the pre-existing full-recompute path
//! (every non-zero-frequency query per reward); the differential suite in
//! `tests/incremental_equiv.rs` pins the two modes together bitwise.

use lpa_costmodel::NetworkCostModel;
use lpa_partition::{Action, InternedKey, KeyInterner, Partitioning};
use lpa_rl::EnvCounters;
use lpa_schema::Schema;
use lpa_workload::{FrequencyVector, Workload};
use std::collections::BTreeMap;

/// How the engine derives rewards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecostMode {
    /// Re-cost every non-zero-frequency query on every reward (the seed
    /// behaviour, kept as the equivalence reference).
    Full,
    /// Maintain the per-query cost vector incrementally.
    Delta,
}

/// Incremental cost engine: memoized per-query costs plus delta
/// bookkeeping over the tracked partitioning.
#[derive(Debug)]
pub struct DeltaCostEngine {
    model: NetworkCostModel,
    mode: RecostMode,
    /// Memoized `c(q_j, states-of-q_j's-tables)`, keyed without allocation.
    cache: BTreeMap<(u32, InternedKey), f64>,
    interner: KeyInterner,
    /// `c(q_j, current)` for every query, valid when `current` is set.
    costs: Vec<f64>,
    current: Option<Partitioning>,
    /// Query indices (sorted) touching each table.
    table_queries: Vec<Vec<usize>>,
    /// Union of the endpoint tables' query lists per candidate edge.
    edge_queries: Vec<Vec<usize>>,
    /// Queries indexed so far (the workload can grow via reserved slots).
    indexed_queries: usize,
    scratch: Vec<usize>,
    /// Observability: cache hits/misses, delta vs full re-costs.
    pub stats: EnvCounters,
}

impl DeltaCostEngine {
    pub fn new(model: NetworkCostModel, mode: RecostMode) -> Self {
        Self {
            model,
            mode,
            cache: BTreeMap::new(),
            interner: KeyInterner::new(),
            costs: Vec::new(),
            current: None,
            table_queries: Vec::new(),
            edge_queries: Vec::new(),
            indexed_queries: 0,
            scratch: Vec::new(),
            stats: EnvCounters::default(),
        }
    }

    pub fn mode(&self) -> RecostMode {
        self.mode
    }

    pub fn model(&self) -> &NetworkCostModel {
        &self.model
    }

    /// Distinct memoized (query, key) cost entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Memoized `(query, interned key) → cost` entries in key order, for
    /// checkpointing.
    pub fn memo_entries(&self) -> Vec<((u32, InternedKey), f64)> {
        self.cache.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The interner backing the memo keys (its id assignment is
    /// first-seen-order state the checkpoint must carry).
    pub fn interner(&self) -> &KeyInterner {
        &self.interner
    }

    /// The partitioning whose per-query costs are currently tracked.
    pub fn tracked(&self) -> Option<&Partitioning> {
        self.current.as_ref()
    }

    /// `c(q_j, tracked)` per query (valid when [`Self::tracked`] is set).
    pub fn cost_vector(&self) -> &[f64] {
        &self.costs
    }

    /// Re-apply checkpointed state onto a freshly built engine (same model
    /// and mode). The inverted indexes are *not* part of the state — they
    /// are a pure function of (schema, workload) and rebuild lazily on the
    /// next reward.
    pub fn restore_state(
        &mut self,
        interner: KeyInterner,
        memo: Vec<((u32, InternedKey), f64)>,
        costs: Vec<f64>,
        current: Option<Partitioning>,
        stats: EnvCounters,
    ) {
        self.interner = interner;
        self.cache = memo.into_iter().collect();
        self.costs = costs;
        self.current = current;
        self.stats = stats;
        self.table_queries.clear();
        self.edge_queries.clear();
        self.indexed_queries = 0;
    }

    /// (Re)build the inverted indexes when the workload gains queries.
    /// Index rebuilds keep the memo cache — query indices are stable, so
    /// existing entries stay valid.
    fn ensure_indexes(&mut self, schema: &Schema, workload: &Workload) {
        let n = workload.queries().len();
        if self.indexed_queries == n && self.table_queries.len() == schema.tables().len() {
            return;
        }
        self.table_queries = vec![Vec::new(); schema.tables().len()];
        for (j, q) in workload.queries().iter().enumerate() {
            for t in &q.tables {
                let list = &mut self.table_queries[t.0];
                if list.last() != Some(&j) {
                    list.push(j);
                }
            }
        }
        self.edge_queries = schema
            .edges()
            .iter()
            .enumerate()
            .map(|(ei, _)| {
                let mut union = Vec::new();
                for ep in schema.edge(lpa_schema::EdgeId(ei)).endpoints() {
                    union.extend_from_slice(&self.table_queries[ep.table.0]);
                }
                union.sort_unstable();
                union.dedup();
                union
            })
            .collect();
        // Cost the queries that joined since the vector was last filled —
        // they were never part of `current`'s bookkeeping.
        if let Some(cur) = self.current.clone() {
            for j in self.costs.len()..n {
                let c = self.cost_of(schema, workload, j, &cur);
                self.costs.push(c);
            }
        }
        self.indexed_queries = n;
    }

    /// Memoized cost of query `j` under `p`.
    fn cost_of(&mut self, schema: &Schema, workload: &Workload, j: usize, p: &Partitioning) -> f64 {
        let Some(q) = workload.queries().get(j) else {
            return 0.0;
        };
        let key = (j as u32, self.interner.query_key(p, &q.tables));
        if let Some(&c) = self.cache.get(&key) {
            self.stats.reward_cache_hits += 1;
            return c;
        }
        self.stats.reward_cache_misses += 1;
        let c = self.model.query_cost(schema, q, p);
        self.cache.insert(key, c);
        c
    }

    /// `-Σ_j f_j · costs[j]` in query-index order, skipping zero
    /// frequencies — the one summation order both modes share.
    fn total_from_costs(&self, freqs: &FrequencyVector) -> f64 {
        let mut total = 0.0;
        for (j, c) in self.costs.iter().enumerate() {
            let f = freqs.as_slice().get(j).copied().unwrap_or(0.0);
            if f == 0.0 {
                continue;
            }
            total += f * c;
        }
        -total
    }

    /// Re-cost the queries listed in `self.scratch` against `p`.
    fn recost_scratch(&mut self, schema: &Schema, workload: &Workload, p: &Partitioning) {
        for i in 0..self.scratch.len() {
            let j = self.scratch[i];
            let c = self.cost_of(schema, workload, j, p);
            if let Some(slot) = self.costs.get_mut(j) {
                *slot = c;
            }
        }
        self.stats.queries_recosted += self.scratch.len() as u64;
    }

    /// Reward of an arbitrary partitioning (generic entry point: resets,
    /// probes, `reward_of`). In delta mode the affected query set is the
    /// diff against the tracked partitioning.
    pub fn reward(
        &mut self,
        schema: &Schema,
        workload: &Workload,
        p: &Partitioning,
        freqs: &FrequencyVector,
    ) -> f64 {
        self.stats.rewards_evaluated += 1;
        if self.mode == RecostMode::Full {
            let mut total = 0.0;
            for j in 0..workload.queries().len() {
                let f = freqs.as_slice().get(j).copied().unwrap_or(0.0);
                if f == 0.0 {
                    continue;
                }
                total += f * self.cost_of(schema, workload, j, p);
            }
            self.stats.full_recosts += 1;
            return -total;
        }
        self.ensure_indexes(schema, workload);
        let n = workload.queries().len();
        match &self.current {
            Some(cur) if cur.table_states().len() == p.table_states().len() => {
                self.scratch.clear();
                {
                    let (scratch, tq) = (&mut self.scratch, &self.table_queries);
                    let cur_states = cur.table_states();
                    let new_states = p.table_states();
                    for (ti, (a, b)) in cur_states.iter().zip(new_states).enumerate() {
                        if a != b {
                            scratch.extend_from_slice(&tq[ti]);
                        }
                    }
                }
                self.scratch.sort_unstable();
                self.scratch.dedup();
                if !self.scratch.is_empty() {
                    self.stats.delta_recosts += 1;
                    self.recost_scratch(schema, workload, p);
                }
            }
            _ => {
                self.stats.full_recosts += 1;
                self.costs.clear();
                for j in 0..n {
                    let c = self.cost_of(schema, workload, j, p);
                    self.costs.push(c);
                }
            }
        }
        self.current = Some(p.clone());
        self.total_from_costs(freqs)
    }

    /// Reward after applying `action` to the tracked partitioning — the
    /// environment-step fast path. The affected query set comes straight
    /// from the inverted indexes: a table action re-costs the queries
    /// touching that table, an edge toggle the queries incident to the
    /// edge. Falls back to [`Self::reward`] whenever `prev` is not the
    /// tracked partitioning (or in full mode).
    pub fn reward_for_step(
        &mut self,
        schema: &Schema,
        workload: &Workload,
        prev: &Partitioning,
        action: &Action,
        next: &Partitioning,
        freqs: &FrequencyVector,
    ) -> f64 {
        if self.mode == RecostMode::Full || self.current.as_ref() != Some(prev) {
            return self.reward(schema, workload, next, freqs);
        }
        self.stats.rewards_evaluated += 1;
        self.ensure_indexes(schema, workload);
        self.scratch.clear();
        match *action {
            Action::Partition { table, .. } | Action::Replicate { table } => {
                self.scratch.extend_from_slice(&self.table_queries[table.0]);
            }
            Action::ActivateEdge(e) | Action::DeactivateEdge(e) => {
                self.scratch.extend_from_slice(&self.edge_queries[e.0]);
            }
        }
        if !self.scratch.is_empty() {
            self.stats.delta_recosts += 1;
            self.recost_scratch(schema, workload, next);
        }
        self.current = Some(next.clone());
        self.total_from_costs(freqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_costmodel::CostParams;
    use lpa_partition::valid_actions;

    fn setup() -> (Schema, Workload) {
        let schema = lpa_schema::ssb::schema(0.001).expect("schema builds");
        let workload = lpa_workload::ssb::workload(&schema).expect("workload builds");
        (schema, workload)
    }

    fn engine(mode: RecostMode) -> DeltaCostEngine {
        DeltaCostEngine::new(NetworkCostModel::new(CostParams::standard()), mode)
    }

    #[test]
    fn delta_reward_matches_full_bitwise_over_a_walk() {
        let (schema, workload) = setup();
        let freqs = workload.uniform_frequencies();
        let mut full = engine(RecostMode::Full);
        let mut delta = engine(RecostMode::Delta);
        let mut p = Partitioning::initial(&schema);
        for step in 0..24 {
            let actions = valid_actions(&schema, &p);
            let a = actions[step % actions.len()];
            let next = a.apply(&schema, &p).expect("valid action applies");
            let rf = full.reward(&schema, &workload, &next, &freqs);
            let rd = delta.reward_for_step(&schema, &workload, &p, &a, &next, &freqs);
            assert_eq!(rf.to_bits(), rd.to_bits(), "step {step} diverged");
            p = next;
        }
        assert!(delta.stats.delta_recosts > 0, "delta path exercised");
        assert!(
            delta.stats.reward_cache_misses <= full.stats.reward_cache_misses,
            "delta must not cost more queries than full"
        );
    }

    #[test]
    fn untracked_prev_falls_back_to_diff_path() {
        let (schema, workload) = setup();
        let freqs = workload.uniform_frequencies();
        let mut delta = engine(RecostMode::Delta);
        let p0 = Partitioning::initial(&schema);
        let r0 = delta.reward(&schema, &workload, &p0, &freqs);
        // Step from a partitioning the engine has never tracked.
        let a = valid_actions(&schema, &p0)[3];
        let foreign = a.apply(&schema, &p0).expect("applies");
        let b = valid_actions(&schema, &foreign)[0];
        let next = b.apply(&schema, &foreign).expect("applies");
        let r = delta.reward_for_step(&schema, &workload, &foreign, &b, &next, &freqs);
        let mut fresh = engine(RecostMode::Full);
        assert_eq!(
            r.to_bits(),
            fresh.reward(&schema, &workload, &next, &freqs).to_bits()
        );
        assert!(r0.is_finite());
    }

    #[test]
    fn edge_toggle_recosts_only_incident_queries() {
        // SSB's fact table is in every query, so use TPC-CH, which has
        // edges whose incident query set is a strict subset.
        let schema = lpa_schema::tpcch::schema(0.001).expect("schema builds");
        let workload = lpa_workload::tpcch::workload(&schema).expect("workload builds");
        let freqs = workload.uniform_frequencies();
        let p0 = Partitioning::initial(&schema);
        let mut picked = None;
        for ei in 0..schema.edges().len() {
            let e = lpa_schema::EdgeId(ei);
            let eps = schema.edge(e).endpoints();
            let incident = workload
                .queries()
                .iter()
                .filter(|q| q.tables.iter().any(|t| eps.iter().any(|ep| ep.table == *t)))
                .count();
            let a = Action::ActivateEdge(e);
            if incident < workload.queries().len() {
                if let Ok(next) = a.apply(&schema, &p0) {
                    picked = Some((a, next, incident));
                    break;
                }
            }
        }
        let (a, next, incident) = picked.expect("tpcch has a non-global applicable edge");
        let mut delta = engine(RecostMode::Delta);
        delta.reward(&schema, &workload, &p0, &freqs);
        let recosted_before = delta.stats.queries_recosted;
        delta.reward_for_step(&schema, &workload, &p0, &a, &next, &freqs);
        let recosted = (delta.stats.queries_recosted - recosted_before) as usize;
        assert_eq!(
            recosted, incident,
            "edge toggle re-costs exactly its incident queries"
        );
        assert!(recosted < workload.queries().len());
    }

    #[test]
    fn workload_growth_rebuilds_indexes() {
        let schema = lpa_schema::microbench::schema(0.01).expect("schema builds");
        let mut workload = lpa_workload::microbench::workload(&schema)
            .expect("workload builds")
            .with_reserved_slots(1);
        let freqs = workload.uniform_frequencies();
        let mut delta = engine(RecostMode::Delta);
        let p0 = Partitioning::initial(&schema);
        delta.reward(&schema, &workload, &p0, &freqs);
        let q = lpa_workload::QueryBuilder::new(&schema, "extra")
            .scan("a")
            .finish()
            .expect("query builds");
        workload.add_query(q).expect("slot reserved");
        let freqs2 = workload.uniform_frequencies();
        let r = delta.reward(&schema, &workload, &p0, &freqs2);
        let mut fresh = engine(RecostMode::Full);
        assert_eq!(
            r.to_bits(),
            fresh.reward(&schema, &workload, &p0, &freqs2).to_bits()
        );
    }
}
