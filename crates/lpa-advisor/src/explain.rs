//! Decision transparency: explain *why* the advisor prefers a partitioning
//! by comparing per-query plans under the current and suggested layouts.
//!
//! A DBA adopting a learned advisor needs to see which queries pay for a
//! layout change and which benefit; this renders the cost model's view of
//! a suggestion (the same simulation used for offline training and
//! inference, Section 6).

use lpa_costmodel::{NetworkCostModel, QueryPlan};
use lpa_partition::Partitioning;
use lpa_schema::Schema;
use lpa_workload::{FrequencyVector, Workload};
use std::fmt;

/// Per-query cost comparison between two partitionings.
#[derive(Clone, Debug)]
pub struct QueryDelta {
    pub name: String,
    pub frequency: f64,
    pub cost_before: f64,
    pub cost_after: f64,
    /// Whether all joins run without data movement after the change.
    pub local_after: bool,
    pub plan_after: QueryPlan,
}

impl QueryDelta {
    pub fn weighted_saving(&self) -> f64 {
        self.frequency * (self.cost_before - self.cost_after)
    }
}

/// Full explanation of a suggested layout change.
#[derive(Clone, Debug)]
pub struct Explanation {
    pub total_before: f64,
    pub total_after: f64,
    /// Queries ordered by weighted saving, biggest winners first.
    pub deltas: Vec<QueryDelta>,
}

impl Explanation {
    /// Compare `before` and `after` for a workload mix under a cost model.
    pub fn compare(
        schema: &Schema,
        workload: &Workload,
        model: &NetworkCostModel,
        freqs: &FrequencyVector,
        before: &Partitioning,
        after: &Partitioning,
    ) -> Self {
        let mut deltas = Vec::new();
        let mut total_before = 0.0;
        let mut total_after = 0.0;
        for (i, q) in workload.queries().iter().enumerate() {
            let f = freqs.as_slice().get(i).copied().unwrap_or(0.0);
            if f == 0.0 {
                continue;
            }
            let cost_before = model.query_cost(schema, q, before);
            let plan_after = model.plan(schema, q, after);
            let cost_after = plan_after.total_seconds;
            total_before += f * cost_before;
            total_after += f * cost_after;
            deltas.push(QueryDelta {
                name: q.name.clone(),
                frequency: f,
                cost_before,
                cost_after,
                local_after: plan_after.fully_local(),
                plan_after,
            });
        }
        deltas.sort_by(|a, b| b.weighted_saving().total_cmp(&a.weighted_saving()));
        Self {
            total_before,
            total_after,
            deltas,
        }
    }

    /// Relative improvement of the suggested layout (positive = better).
    pub fn improvement(&self) -> f64 {
        if self.total_before <= 0.0 {
            0.0
        } else {
            1.0 - self.total_after / self.total_before
        }
    }

    /// Queries whose cost increases under the new layout (the "losers" a
    /// DBA will ask about).
    pub fn regressions(&self) -> impl Iterator<Item = &QueryDelta> {
        self.deltas
            .iter()
            .filter(|d| d.cost_after > d.cost_before * 1.0001)
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload cost {:.5}s → {:.5}s ({:+.1}%)",
            self.total_before,
            self.total_after,
            -self.improvement() * 100.0
        )?;
        for d in self.deltas.iter().take(10) {
            writeln!(
                f,
                "  {:<14} f={:<5.2} {:.5}s → {:.5}s{}",
                d.name,
                d.frequency,
                d.cost_before,
                d.cost_after,
                if d.local_after {
                    "  [all joins local]"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_costmodel::CostParams;
    use lpa_partition::Action;

    #[test]
    fn explanation_orders_by_weighted_saving() {
        let schema = lpa_schema::microbench::schema(0.05).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let model = NetworkCostModel::new(CostParams::standard());
        let freqs = workload.uniform_frequencies();
        let before = Partitioning::initial(&schema);
        // Co-partition a with c: micro_ac becomes local.
        let e = schema
            .edge_between(
                schema.attr_ref("a", "a_c_key").unwrap(),
                schema.attr_ref("c", "c_key").unwrap(),
            )
            .unwrap();
        let after = Action::ActivateEdge(e).apply(&schema, &before).unwrap();
        let ex = Explanation::compare(&schema, &workload, &model, &freqs, &before, &after);
        assert_eq!(ex.deltas.len(), 2);
        assert_eq!(ex.deltas[0].name, "micro_ac", "winner first");
        assert!(ex.deltas[0].local_after);
        assert!(ex.improvement() > 0.0);
        let text = ex.to_string();
        assert!(text.contains("micro_ac"));
        assert!(text.contains("all joins local"));
    }

    #[test]
    fn regressions_detected() {
        let schema = lpa_schema::microbench::schema(0.05).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let model = NetworkCostModel::new(CostParams::standard());
        let freqs = workload.uniform_frequencies();
        let before = Partitioning::initial(&schema);
        // Replicating `a` (the fact table) regresses everything.
        let a = schema.table_by_name("a").unwrap();
        let after = Action::Replicate { table: a }
            .apply(&schema, &before)
            .unwrap();
        let ex = Explanation::compare(&schema, &workload, &model, &freqs, &before, &after);
        assert!(ex.regressions().count() > 0);
        assert!(ex.improvement() < 0.0);
    }

    #[test]
    fn zero_frequency_queries_excluded() {
        let schema = lpa_schema::microbench::schema(0.05).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let model = NetworkCostModel::new(CostParams::standard());
        let freqs = FrequencyVector::from_counts(&[1.0, 0.0], 2);
        let p = Partitioning::initial(&schema);
        let ex = Explanation::compare(&schema, &workload, &model, &freqs, &p, &p);
        assert_eq!(ex.deltas.len(), 1);
        assert_eq!(ex.improvement(), 0.0);
    }
}
