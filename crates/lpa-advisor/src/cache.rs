//! The Query Runtime Cache (Section 4.2).
//!
//! A query's runtime depends only on the physical states of the tables it
//! touches, so the cache key is `(query, states of its tables)`. The cache
//! is shared — the committee of experts and incremental retraining reuse
//! the runtimes collected by the naive agent (Section 5).
//!
//! Keys are interned [`InternedKey`]s from [`lpa_partition::KeyInterner`]:
//! a lookup packs the relevant table states into a reused scratch buffer
//! instead of allocating a fresh `Vec<TableState>` per probe, and the map
//! is a `BTreeMap`, keeping iteration deterministic (lint L002) — the same
//! key discipline the offline delta engine uses.

use lpa_partition::{InternedKey, KeyInterner, Partitioning};
use lpa_schema::TableId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One cached measurement: the runtime plus the health of the epoch it was
/// taken in. Entries measured under active faults are kept (a degraded
/// estimate beats re-running a query on a degraded cluster) but tagged, so
/// the online backend can invalidate them once the cluster recovers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedRuntime {
    pub seconds: f64,
    pub degraded: bool,
}

/// Runtime cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct RuntimeCache {
    interner: KeyInterner,
    map: BTreeMap<(u32, InternedKey), CachedRuntime>,
    pub hits: u64,
    pub misses: u64,
}

impl RuntimeCache {
    fn key(&mut self, query: usize, p: &Partitioning, tables: &[TableId]) -> (u32, InternedKey) {
        (query as u32, self.interner.query_key(p, tables))
    }

    /// Cached runtime of `query` under the states `p` gives its `tables`,
    /// counting a hit or miss.
    pub fn lookup(
        &mut self,
        query: usize,
        p: &Partitioning,
        tables: &[TableId],
    ) -> Option<CachedRuntime> {
        let key = self.key(query, p, tables);
        match self.map.get(&key) {
            Some(v) => {
                self.hits += 1;
                Some(*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Lookup without touching counters (used by inference/committee
    /// reward probes). `&mut` because key interning shares the scratch
    /// buffer; the map itself is not modified.
    pub fn peek(&mut self, query: usize, p: &Partitioning, tables: &[TableId]) -> Option<f64> {
        let key = self.key(query, p, tables);
        self.map.get(&key).map(|v| v.seconds)
    }

    /// Record a healthy measurement.
    pub fn store(&mut self, query: usize, p: &Partitioning, tables: &[TableId], seconds: f64) {
        self.store_tagged(
            query,
            p,
            tables,
            CachedRuntime {
                seconds,
                degraded: false,
            },
        );
    }

    /// Record a measurement together with its epoch health.
    pub fn store_tagged(
        &mut self,
        query: usize,
        p: &Partitioning,
        tables: &[TableId],
        value: CachedRuntime,
    ) {
        let key = self.key(query, p, tables);
        self.map.insert(key, value);
    }

    /// Drop one entry (degraded-epoch invalidation on recovery). Returns
    /// whether an entry existed.
    pub fn invalidate(&mut self, query: usize, p: &Partitioning, tables: &[TableId]) -> bool {
        let key = self.key(query, p, tables);
        self.map.remove(&key).is_some()
    }

    /// Number of entries tagged as measured under active faults.
    pub fn degraded_entries(&self) -> usize {
        self.map.values().filter(|v| v.degraded).count()
    }

    /// Drop every degraded-tagged entry, returning how many were removed.
    /// Used when restoring a checkpoint taken mid-outage onto a cluster
    /// whose fault window has passed: recovery-time invalidation never ran
    /// for those entries, so they would poison healthy-epoch rewards.
    pub fn drop_degraded(&mut self) -> usize {
        let before = self.map.len();
        self.map.retain(|_, v| !v.degraded);
        before - self.map.len()
    }

    /// Every `(query, key) → runtime` entry in key order plus the interner,
    /// for checkpointing (degraded tags included).
    pub fn entries(&self) -> Vec<((u32, InternedKey), CachedRuntime)> {
        self.map.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// The interner backing the keys.
    pub fn interner(&self) -> &KeyInterner {
        &self.interner
    }

    /// Rebuild a cache from checkpointed parts.
    pub fn from_parts(
        interner: KeyInterner,
        entries: Vec<((u32, InternedKey), CachedRuntime)>,
        hits: u64,
        misses: u64,
    ) -> Self {
        Self {
            interner,
            map: entries.into_iter().collect(),
            hits,
            misses,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shared handle: the naive agent, the subspace experts and incremental
/// retraining all read and write the same cache.
pub type SharedRuntimeCache = Arc<Mutex<RuntimeCache>>;

/// Fresh shared cache.
pub fn shared_cache() -> SharedRuntimeCache {
    Arc::new(Mutex::new(RuntimeCache::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_partition::Action;
    use lpa_schema::Schema;

    fn ssb() -> Schema {
        lpa_schema::ssb::schema(0.001).expect("schema builds")
    }

    #[test]
    fn hit_and_miss_counters() {
        let s = ssb();
        let p = Partitioning::initial(&s);
        let tables = [TableId(0), TableId(1)];
        let mut c = RuntimeCache::default();
        assert_eq!(c.lookup(0, &p, &tables), None);
        c.store(0, &p, &tables, 1.5);
        assert_eq!(
            c.lookup(0, &p, &tables),
            Some(CachedRuntime {
                seconds: 1.5,
                degraded: false
            })
        );
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degraded_entries_tag_and_invalidate() {
        let s = ssb();
        let p = Partitioning::initial(&s);
        let tables = [TableId(0)];
        let mut c = RuntimeCache::default();
        c.store_tagged(
            0,
            &p,
            &tables,
            CachedRuntime {
                seconds: 2.0,
                degraded: true,
            },
        );
        c.store(1, &p, &tables, 1.0);
        assert_eq!(c.degraded_entries(), 1);
        assert!(c
            .lookup(0, &p, &tables)
            .map(|v| v.degraded)
            .unwrap_or(false));
        assert!(c.invalidate(0, &p, &tables));
        assert!(!c.invalidate(0, &p, &tables), "already gone");
        assert_eq!(c.degraded_entries(), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn key_distinguishes_states_not_edges() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let lo = s.table_by_name("lineorder").unwrap();
        let p1 = Action::Replicate { table: lo }.apply(&s, &p0).unwrap();
        // Edge toggle away from `tables` leaves the key unchanged.
        let p0_edge = Action::ActivateEdge(lpa_schema::EdgeId(2))
            .apply(&s, &p0)
            .unwrap();
        let tables = [lo, s.table_by_name("customer").unwrap()];
        let mut c = RuntimeCache::default();
        c.store(3, &p0, &tables, 1.0);
        c.store(3, &p1, &tables, 2.0);
        assert_eq!(c.peek(3, &p0, &tables), Some(1.0));
        assert_eq!(c.peek(3, &p1, &tables), Some(2.0));
        assert_eq!(c.len(), 2);
        // p0_edge differs from p0 only in lineorder's forced edge state;
        // if the toggle changed lineorder's state the key changes too, so
        // probe a query not touching the edge endpoints instead.
        let part = s.table_by_name("part").unwrap();
        let date = s.table_by_name("date").unwrap();
        c.store(5, &p0, &[part, date], 3.0);
        assert_eq!(c.peek(5, &p0_edge, &[part, date]), Some(3.0));
    }

    #[test]
    fn queries_do_not_alias() {
        let s = ssb();
        let p = Partitioning::initial(&s);
        let tables = [TableId(0)];
        let mut c = RuntimeCache::default();
        c.store(1, &p, &tables, 1.0);
        assert_eq!(c.peek(2, &p, &tables), None);
    }
}
