//! The Query Runtime Cache (Section 4.2).
//!
//! A query's runtime depends only on the physical states of the tables it
//! touches, so the cache key is `(query, states of its tables)`. The cache
//! is shared — the committee of experts and incremental retraining reuse
//! the runtimes collected by the naive agent (Section 5).

use lpa_partition::TableState;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: query index plus the physical states of the tables the query
/// scans (in query-table order).
pub type CacheKey = (usize, Vec<TableState>);

/// Runtime cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct RuntimeCache {
    map: HashMap<CacheKey, f64>,
    pub hits: u64,
    pub misses: u64,
}

impl RuntimeCache {
    pub fn get(&mut self, key: &CacheKey) -> Option<f64> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(*v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching counters (used by inference/committee reward
    /// probes).
    pub fn peek(&self, key: &CacheKey) -> Option<f64> {
        self.map.get(key).copied()
    }

    pub fn insert(&mut self, key: CacheKey, seconds: f64) {
        self.map.insert(key, seconds);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shared handle: the naive agent, the subspace experts and incremental
/// retraining all read and write the same cache.
pub type SharedRuntimeCache = Arc<Mutex<RuntimeCache>>;

/// Fresh shared cache.
pub fn shared_cache() -> SharedRuntimeCache {
    Arc::new(Mutex::new(RuntimeCache::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_schema::AttrId;

    #[test]
    fn hit_and_miss_counters() {
        let mut c = RuntimeCache::default();
        let key = (0usize, vec![TableState::PartitionedBy(AttrId(0))]);
        assert_eq!(c.get(&key), None);
        c.insert(key.clone(), 1.5);
        assert_eq!(c.get(&key), Some(1.5));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_distinguishes_states_not_edges() {
        // Same query, different table states → different entries.
        let mut c = RuntimeCache::default();
        let a = (3usize, vec![TableState::Replicated]);
        let b = (3usize, vec![TableState::PartitionedBy(AttrId(1))]);
        c.insert(a.clone(), 1.0);
        c.insert(b.clone(), 2.0);
        assert_eq!(c.peek(&a), Some(1.0));
        assert_eq!(c.peek(&b), Some(2.0));
        assert_eq!(c.len(), 2);
    }
}
