//! The partitioning problem as a DQN environment (Section 3.2).

use crate::delta::{DeltaCostEngine, RecostMode};
use crate::online::OnlineBackend;
use lpa_costmodel::NetworkCostModel;
use lpa_partition::{
    valid_actions, Action, ActionSetCache, DeltaEncoder, Partitioning, StateEncoder,
};
use lpa_rl::{EnvCounters, QEnvironment};
use lpa_schema::Schema;
use lpa_workload::{FrequencyVector, MixSampler, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// DQN state: the current partitioning plus the episode's workload mix
/// (both are part of the Q-network input, Fig. 2c).
#[derive(Clone, Debug)]
pub struct EnvState {
    pub partitioning: Partitioning,
    pub freqs: FrequencyVector,
}

/// Where rewards come from.
#[derive(Debug)]
pub enum RewardBackend {
    /// Offline phase: the network-centric cost model behind the
    /// incremental [`DeltaCostEngine`] (per-query cost vector, inverted
    /// indexes, interned memo keys).
    CostModel(Box<DeltaCostEngine>),
    /// Online phase: measured runtimes on the sampled cluster.
    Cluster(Box<OnlineBackend>),
}

impl RewardBackend {
    /// Offline backend in delta mode (the default: steps re-cost only the
    /// queries the action touched).
    pub fn cost_model(model: NetworkCostModel) -> Self {
        Self::CostModel(Box::new(DeltaCostEngine::new(model, RecostMode::Delta)))
    }

    /// Offline backend that re-costs the full workload on every reward —
    /// the seed behaviour, kept as the equivalence reference for the
    /// differential suite and the before/after benchmark.
    pub fn cost_model_full(model: NetworkCostModel) -> Self {
        Self::CostModel(Box::new(DeltaCostEngine::new(model, RecostMode::Full)))
    }

    /// Access the online backend, if this is one.
    pub fn as_online(&self) -> Option<&OnlineBackend> {
        match self {
            Self::Cluster(b) => Some(b),
            Self::CostModel { .. } => None,
        }
    }

    /// Access the offline delta engine, if this is one.
    pub fn as_cost_model(&self) -> Option<&DeltaCostEngine> {
        match self {
            Self::CostModel(engine) => Some(engine),
            Self::Cluster(_) => None,
        }
    }

    /// Mutable access to the online backend (checkpoint restore).
    pub fn as_online_mut(&mut self) -> Option<&mut OnlineBackend> {
        match self {
            Self::Cluster(b) => Some(b),
            Self::CostModel { .. } => None,
        }
    }

    /// Mutable access to the offline delta engine (checkpoint restore).
    pub fn as_cost_model_mut(&mut self) -> Option<&mut DeltaCostEngine> {
        match self {
            Self::CostModel(engine) => Some(engine),
            Self::Cluster(_) => None,
        }
    }

    fn reward(
        &mut self,
        schema: &Schema,
        workload: &Workload,
        p: &Partitioning,
        freqs: &FrequencyVector,
    ) -> f64 {
        match self {
            Self::CostModel(engine) => engine.reward(schema, workload, p, freqs),
            Self::Cluster(backend) => backend.reward(workload, p, freqs),
        }
    }

    /// Reward after `action` turned `prev` into `next` — lets the offline
    /// engine re-cost only the queries the action touched.
    fn reward_for_step(
        &mut self,
        schema: &Schema,
        workload: &Workload,
        prev: &Partitioning,
        action: &Action,
        next: &Partitioning,
        freqs: &FrequencyVector,
    ) -> f64 {
        match self {
            Self::CostModel(engine) => {
                engine.reward_for_step(schema, workload, prev, action, next, freqs)
            }
            Self::Cluster(backend) => backend.reward(workload, next, freqs),
        }
    }
}

/// The advisor's environment.
#[derive(Debug)]
pub struct AdvisorEnv {
    pub schema: Schema,
    pub workload: Workload,
    pub encoder: StateEncoder,
    sampler: MixSampler,
    backend: RewardBackend,
    rng: StdRng,
    s0: Partitioning,
    /// Engines without compound-key support (Postgres-XL) exclude actions
    /// touching compound attributes.
    allow_compound: bool,
    /// Rewards are divided by this before reaching the agent so the
    /// Q-network sees O(1) targets regardless of the benchmark's absolute
    /// cost magnitude (cost-model costs at sample scale are milliseconds,
    /// far below the network's initial output scale). Ranking — and thus
    /// every argmax — is unaffected.
    reward_scale: f64,
    /// `valid_actions` (plus the compound filter) memoized per distinct
    /// partitioning. `RefCell` because [`QEnvironment::actions`] takes
    /// `&self`; never borrowed across a call boundary, and `RefCell<T:
    /// Send>` keeps the env `Send` for the committee's parallel map.
    action_sets: RefCell<ActionSetCache>,
    /// Incremental state encoder: patches only the feature slots the
    /// partitioning changed since the last encode instead of rebuilding
    /// the full state prefix. Wraps a clone of [`Self::encoder`] (the
    /// layout is fixed at construction, so the two can never diverge).
    /// `RefCell` for the same reason as `action_sets` —
    /// [`QEnvironment::encode`] takes `&self`. Bit-exactness versus the
    /// full rebuild is the [`DeltaEncoder`] contract, enforced by its
    /// `with_full_encode` oracle guard and this crate's differential
    /// tests.
    delta_enc: RefCell<DeltaEncoder>,
    /// [`Self::counters`] snapshot taken at the last `reset()`, so
    /// `episode_counters()` can report per-episode deltas while
    /// `counters()` stays cumulative for the training loop's own
    /// differencing.
    episode_base: EnvCounters,
}

impl AdvisorEnv {
    pub fn new(
        schema: Schema,
        workload: Workload,
        backend: RewardBackend,
        sampler: MixSampler,
        allow_compound: bool,
        seed: u64,
    ) -> Self {
        let encoder = StateEncoder::new(&schema, workload.slots());
        let delta_enc = RefCell::new(DeltaEncoder::new(encoder.clone()));
        let s0 = Partitioning::initial(&schema);
        let mut env = Self {
            encoder,
            delta_enc,
            sampler,
            backend,
            rng: StdRng::seed_from_u64(seed ^ 0xE27),
            s0,
            allow_compound,
            schema,
            workload,
            reward_scale: 1.0,
            action_sets: RefCell::new(ActionSetCache::new()),
            episode_base: EnvCounters::default(),
        };
        env.recompute_reward_scale();
        env
    }

    /// Construct an environment from checkpointed state without deriving a
    /// fresh reward normalization. [`Self::new`] executes the workload once
    /// against the backend to fix `reward_scale`; on the restore path that
    /// side effect would perturb the cluster clock and caches that were
    /// just put back into their recorded state, so the captured scale and
    /// RNG words are installed directly instead.
    #[allow(clippy::too_many_arguments)]
    pub fn for_restore(
        schema: Schema,
        workload: Workload,
        backend: RewardBackend,
        sampler: MixSampler,
        allow_compound: bool,
        reward_scale: f64,
        rng_state: [u64; 4],
    ) -> Self {
        let encoder = StateEncoder::new(&schema, workload.slots());
        let delta_enc = RefCell::new(DeltaEncoder::new(encoder.clone()));
        let s0 = Partitioning::initial(&schema);
        Self {
            encoder,
            delta_enc,
            sampler,
            backend,
            rng: StdRng::from_state(rng_state),
            s0,
            allow_compound,
            schema,
            workload,
            reward_scale,
            action_sets: RefCell::new(ActionSetCache::new()),
            episode_base: EnvCounters::default(),
        }
    }

    /// Patch/rebuild tallies of the incremental state encoder (observability
    /// for benchmarks; a rebuild happens on the first encode after
    /// construction or [`DeltaEncoder::invalidate`], a patch everywhere the
    /// delta path applied).
    pub fn encoder_stats(&self) -> (u64, u64) {
        let enc = self.delta_enc.borrow();
        (enc.patches(), enc.rebuilds())
    }

    /// Fix the normalization constant from the initial state's cost under
    /// a uniform mix. For the online backend this executes the workload
    /// once on the sampled cluster — cheap, and the runtime cache keeps
    /// the measurements for training anyway.
    fn recompute_reward_scale(&mut self) {
        let uniform = self.workload.uniform_frequencies();
        let raw = self
            .backend
            .reward(&self.schema, &self.workload, &self.s0, &uniform)
            .abs();
        self.reward_scale = if raw > 1e-12 { raw } else { 1.0 };
    }

    /// The current reward normalization constant.
    pub fn reward_scale(&self) -> f64 {
        self.reward_scale
    }

    /// Swap the workload-mix sampler (inference pins it to one vector).
    pub fn set_sampler(&mut self, sampler: MixSampler) -> MixSampler {
        std::mem::replace(&mut self.sampler, sampler)
    }

    /// Swap the reward backend (offline → online refinement). The reward
    /// normalization is re-derived for the new backend.
    pub fn set_backend(&mut self, backend: RewardBackend) -> RewardBackend {
        let old = std::mem::replace(&mut self.backend, backend);
        self.recompute_reward_scale();
        old
    }

    /// Install a backend together with a previously captured normalization
    /// constant, bit-for-bit. Unlike [`Self::set_backend`] this does *not*
    /// re-derive the scale — re-deriving would execute the workload against
    /// the backend, perturbing cluster clocks and caches that a checkpoint
    /// restore has just put back into their recorded state.
    pub fn restore_backend(&mut self, backend: RewardBackend, reward_scale: f64) {
        self.backend = backend;
        self.reward_scale = reward_scale;
    }

    /// The current mix sampler (checkpoint capture; includes cursor state
    /// for cycling samplers).
    pub fn sampler(&self) -> &MixSampler {
        &self.sampler
    }

    /// Raw words of the environment's episode-mix RNG.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore the episode-mix RNG to previously captured raw words.
    pub fn set_rng_state(&mut self, s: [u64; 4]) {
        self.rng = StdRng::from_state(s);
    }

    pub fn backend(&self) -> &RewardBackend {
        &self.backend
    }

    pub fn backend_mut(&mut self) -> &mut RewardBackend {
        &mut self.backend
    }

    pub fn initial_partitioning(&self) -> &Partitioning {
        &self.s0
    }

    pub fn allow_compound(&self) -> bool {
        self.allow_compound
    }

    /// Normalized reward of an arbitrary partitioning under a mix —
    /// exposed for inference (best-state selection) and the committee's
    /// subspace assignment. Same units as the rewards the agent trains on.
    pub fn reward_of(&mut self, p: &Partitioning, freqs: &FrequencyVector) -> f64 {
        self.backend.reward(&self.schema, &self.workload, p, freqs) / self.reward_scale
    }

    /// Cost of a partitioning in the backend's raw units (estimated or
    /// scaled-measured seconds) — use this when comparing against real
    /// quantities like repartitioning time.
    pub fn cost_of(&mut self, p: &Partitioning, freqs: &FrequencyVector) -> f64 {
        -self.backend.reward(&self.schema, &self.workload, p, freqs)
    }

    fn action_allowed(&self, a: &Action) -> bool {
        if self.allow_compound {
            return true;
        }
        match *a {
            Action::Partition { table, attr } => {
                !self.schema.table(table).attributes[attr.0].is_compound()
            }
            Action::Replicate { .. } => true,
            Action::ActivateEdge(e) | Action::DeactivateEdge(e) => {
                let edge = self.schema.edge(e);
                edge.endpoints()
                    .iter()
                    .all(|ep| !self.schema.attribute(*ep).is_compound())
            }
        }
    }
}

impl QEnvironment for AdvisorEnv {
    type State = EnvState;
    type Action = Action;

    fn input_dim(&self) -> usize {
        self.encoder.input_dim()
    }

    fn reset(&mut self) -> EnvState {
        self.episode_base = self.counters();
        let freqs = self.sampler.sample(&mut self.rng);
        EnvState {
            partitioning: self.s0.clone(),
            freqs,
        }
    }

    fn actions(&self, state: &EnvState) -> Vec<Action> {
        let mut out = Vec::new();
        self.actions_into(state, &mut out);
        out
    }

    fn actions_into(&self, state: &EnvState, out: &mut Vec<Action>) {
        out.extend_from_slice(self.action_sets.borrow_mut().get_or_insert_with(
            &state.partitioning,
            || {
                valid_actions(&self.schema, &state.partitioning)
                    .into_iter()
                    .filter(|a| self.action_allowed(a))
                    .collect()
            },
        ));
    }

    fn encode(&self, state: &EnvState, action: &Action, out: &mut [f32]) {
        self.delta_enc
            .borrow_mut()
            .encode_input(&state.partitioning, &state.freqs, action, out);
    }

    fn encode_batch(&self, state: &EnvState, actions: &[Action], out: &mut [f32]) {
        self.delta_enc
            .borrow_mut()
            .encode_batch(&state.partitioning, &state.freqs, actions, out);
    }

    fn encode_overwrites_fully(&self) -> bool {
        // `DeltaEncoder::encode_input` copies the full state prefix and
        // `StateEncoder::encode_action_into` zero-fills the action block
        // before writing its one-hots — every output slot is written, so
        // callers may skip zeroing reused buffers.
        true
    }

    fn step(&mut self, state: &EnvState, action: &Action) -> (EnvState, f64) {
        // Only valid actions are offered; a rejected action degrades to a
        // no-op step so a planner bug cannot abort a training episode.
        let next = action
            .apply(&self.schema, &state.partitioning)
            .unwrap_or_else(|_| state.partitioning.clone());
        let reward = self.backend.reward_for_step(
            &self.schema,
            &self.workload,
            &state.partitioning,
            action,
            &next,
            &state.freqs,
        ) / self.reward_scale;
        (
            EnvState {
                partitioning: next,
                freqs: state.freqs.clone(),
            },
            reward,
        )
    }

    fn counters(&self) -> EnvCounters {
        let mut c = match &self.backend {
            RewardBackend::CostModel(engine) => engine.stats,
            RewardBackend::Cluster(online) => {
                // Fault-layer activity (merged cluster + backend view)
                // flows into per-episode training stats.
                let fa = online.fault_accounting();
                EnvCounters {
                    queries_failed: fa.queries_failed,
                    fault_retries: fa.retries,
                    fault_failovers: fa.failovers,
                    fault_fallbacks: fa.fallbacks,
                    ..EnvCounters::default()
                }
            }
        };
        let sets = self.action_sets.borrow();
        c.action_cache_hits = sets.hits;
        c.action_cache_misses = sets.misses;
        c
    }

    fn episode_counters(&self) -> EnvCounters {
        self.counters().since(&self.episode_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_costmodel::CostParams;

    fn offline_env(allow_compound: bool) -> AdvisorEnv {
        let schema = lpa_schema::tpcch::schema(0.001).expect("schema builds");
        let workload = lpa_workload::tpcch::workload(&schema).expect("workload builds");
        let sampler = MixSampler::uniform(&workload);
        AdvisorEnv::new(
            schema,
            workload,
            RewardBackend::cost_model(NetworkCostModel::new(CostParams::standard())),
            sampler,
            allow_compound,
            1,
        )
    }

    #[test]
    fn compound_actions_filtered_for_pgxl() {
        let env_pg = offline_env(false);
        let env_sx = offline_env(true);
        let s = EnvState {
            partitioning: env_pg.initial_partitioning().clone(),
            freqs: FrequencyVector::uniform(env_pg.workload.slots()),
        };
        let pg_actions = env_pg.actions(&s);
        let sx_actions = env_sx.actions(&s);
        assert!(sx_actions.len() > pg_actions.len());
        let has_compound = |actions: &[Action], env: &AdvisorEnv| {
            actions.iter().any(|a| match *a {
                Action::Partition { table, attr } => {
                    env.schema.table(table).attributes[attr.0].is_compound()
                }
                _ => false,
            })
        };
        assert!(!has_compound(&pg_actions, &env_pg));
        assert!(has_compound(&sx_actions, &env_sx));
    }

    #[test]
    fn step_reward_matches_reward_of() {
        let mut env = offline_env(true);
        let s = {
            let mut s = env.reset();
            s.freqs = FrequencyVector::uniform(env.workload.slots());
            s
        };
        let a = env.actions(&s)[0];
        let (next, r) = env.step(&s, &a);
        let direct = env.reward_of(&next.partitioning, &s.freqs);
        assert!((r - direct).abs() < 1e-9);
        assert!(r < 0.0, "rewards are negative costs");
    }

    #[test]
    fn offline_cache_memoizes() {
        let mut env = offline_env(true);
        let s = env.reset();
        // An action that changes the physical state of a table some query
        // actually touches (the first enumerated actions can be state-level
        // no-ops or hit query-free tables — nothing to re-cost there).
        let a = env
            .actions(&s)
            .into_iter()
            .find(|a| {
                let touched = match *a {
                    Action::Partition { table, .. } | Action::Replicate { table } => env
                        .workload
                        .queries()
                        .iter()
                        .any(|q| q.tables.contains(&table)),
                    Action::ActivateEdge(_) | Action::DeactivateEdge(_) => false,
                };
                touched
                    && a.apply(&env.schema, &s.partitioning)
                        .map(|n| n != s.partitioning)
                        .unwrap_or(false)
            })
            .expect("a state-changing action on a queried table exists");
        let (_, r1) = env.step(&s, &a);
        let (_, r2) = env.step(&s, &a);
        assert_eq!(r1, r2);
        // Walking back to the initial partitioning re-costs the changed
        // tables from the memo cache (their s0 costs were cached when the
        // reward scale was derived).
        let p0 = env.initial_partitioning().clone();
        let _ = env.reward_of(&p0, &s.freqs.clone());
        let engine = env.backend().as_cost_model().expect("offline backend");
        assert!(engine.cache_len() > 0);
        assert!(engine.stats.reward_cache_hits > 0, "revisit memoized");
    }

    #[test]
    fn delta_env_matches_full_env_bitwise() {
        let schema = lpa_schema::tpcch::schema(0.001).expect("schema builds");
        let workload = lpa_workload::tpcch::workload(&schema).expect("workload builds");
        let mk = |backend| {
            AdvisorEnv::new(
                schema.clone(),
                workload.clone(),
                backend,
                MixSampler::uniform(&workload),
                true,
                7,
            )
        };
        let mut delta = mk(RewardBackend::cost_model(NetworkCostModel::new(
            CostParams::standard(),
        )));
        let mut full = mk(RewardBackend::cost_model_full(NetworkCostModel::new(
            CostParams::standard(),
        )));
        assert_eq!(
            delta.reward_scale().to_bits(),
            full.reward_scale().to_bits(),
            "normalization identical across modes"
        );
        let mut sd = delta.reset();
        let mut sf = full.reset();
        assert_eq!(sd.freqs, sf.freqs, "same seed, same mixes");
        for step in 0..30 {
            let actions = delta.actions(&sd);
            assert_eq!(actions, full.actions(&sf));
            let a = actions[step % actions.len()];
            let (nd, rd) = delta.step(&sd, &a);
            let (nf, rf) = full.step(&sf, &a);
            assert_eq!(rd.to_bits(), rf.to_bits(), "step {step} reward diverged");
            assert_eq!(nd.partitioning, nf.partitioning);
            if step % 11 == 10 {
                sd = delta.reset();
                sf = full.reset();
            } else {
                sd = nd;
                sf = nf;
            }
        }
        let c = delta.counters();
        assert!(c.delta_recosts > 0, "delta path exercised");
        assert!(c.action_cache_hits > 0, "action sets memoized");
    }

    /// The env's incremental encoder must emit exactly the bytes the plain
    /// [`StateEncoder`] would, across a step/reset walk that exercises the
    /// patch path, the first-call rebuild, and the forced-oracle guard.
    #[test]
    fn env_encode_matches_state_encoder_bitwise() {
        let mut env = offline_env(true);
        let dim = env.input_dim();
        let mut fast = vec![0.0f32; dim];
        let mut full = vec![0.0f32; dim];
        let mut s = env.reset();
        for step in 0..12 {
            let actions = env.actions(&s);
            for a in actions.iter().take(4) {
                env.encode(&s, a, &mut fast);
                env.encoder
                    .encode_input(&s.partitioning, &s.freqs, a, &mut full);
                let same = fast
                    .iter()
                    .zip(&full)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "step {step}: delta encode diverged");
            }
            let batch_n = actions.len().min(5);
            let mut fast_b = vec![0.0f32; batch_n * dim];
            let mut full_b = vec![0.0f32; batch_n * dim];
            env.encode_batch(&s, &actions[..batch_n], &mut fast_b);
            env.encoder
                .encode_batch(&s.partitioning, &s.freqs, &actions[..batch_n], &mut full_b);
            let same = fast_b
                .iter()
                .zip(&full_b)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "step {step}: delta encode_batch diverged");
            if step == 7 {
                s = env.reset(); // new mix → full-prefix distance from cache
            } else {
                let a = actions[step % actions.len()];
                s = env.step(&s, &a).0;
            }
        }
        let (patches, rebuilds) = env.encoder_stats();
        assert!(patches > 0, "patch path exercised");
        assert!(rebuilds >= 1, "first call rebuilds");
        // Under the oracle guard the env must still produce the same bytes.
        lpa_partition::with_full_encode(|| {
            let a = env.actions(&s)[0];
            env.encode(&s, &a, &mut fast);
            env.encoder
                .encode_input(&s.partitioning, &s.freqs, &a, &mut full);
            let same = fast
                .iter()
                .zip(&full)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "forced full encode diverged");
        });
    }

    /// `episode_counters()` reports activity since the last `reset()`, not
    /// since construction — the bug fixed here had multi-episode profiling
    /// runs reporting inflated cumulative cache-hit ratios per episode.
    #[test]
    fn episode_counters_reset_per_episode() {
        use lpa_rl::QEnvironment as _;
        let mut env = offline_env(true);
        let s = env.reset();
        let actions = env.actions(&s);
        let a = actions[0];
        let mut st = s.clone();
        for _ in 0..3 {
            let _ = env.actions(&st); // cache hits accumulate
            st = env.step(&st, &a).0;
        }
        let ep1 = env.episode_counters();
        let cum1 = env.counters();
        assert!(ep1.action_cache_hits > 0);
        assert_eq!(ep1.action_cache_hits, cum1.action_cache_hits);
        // Second episode: cumulative counters keep growing, per-episode
        // counters restart from the reset baseline.
        let s2 = env.reset();
        let fresh = env.episode_counters();
        assert_eq!(fresh.action_cache_hits, 0, "baseline taken at reset");
        let _ = env.actions(&s2);
        let ep2 = env.episode_counters();
        let cum2 = env.counters();
        assert!(cum2.action_cache_hits >= cum1.action_cache_hits);
        assert!(
            ep2.action_cache_hits < cum2.action_cache_hits,
            "episode view must not be cumulative"
        );
    }

    #[test]
    fn reset_samples_fresh_mixes() {
        let mut env = offline_env(true);
        let a = env.reset();
        let b = env.reset();
        assert_ne!(a.freqs, b.freqs, "uniform sampler varies per episode");
        assert_eq!(
            a.partitioning.table_states(),
            b.partitioning.table_states(),
            "always resets to s0"
        );
    }
}
