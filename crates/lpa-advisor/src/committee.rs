//! The committee of DRL subspace experts (Section 5).
//!
//! 1. Ask the naive (single-agent) advisor for a partitioning per
//!    "extreme" frequency vector (one query over-represented); the
//!    distinct results are the *reference partitionings*.
//! 2. A frequency vector belongs to the subspace of the reference
//!    partitioning with the highest reward for it.
//! 3. One expert agent is trained per subspace, only on mixes from its
//!    subspace; the shared Query Runtime Cache means this usually needs no
//!    new query executions.

use crate::advisor::{Advisor, Suggestion};
use crate::env::AdvisorEnv;
use lpa_par::Pool;
use lpa_partition::Partitioning;
use lpa_rl::DqnConfig;
use lpa_workload::{FrequencyVector, MixSampler, QueryId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Frequencies used to build the extreme vectors.
pub const F_LOW: f64 = 0.1;
pub const F_HIGH: f64 = 1.0;

/// A committee of subspace experts built on top of a naive advisor.
#[derive(Debug)]
pub struct Committee {
    pub references: Vec<Partitioning>,
    pub experts: Vec<Advisor>,
}

impl Committee {
    /// Derive the reference partitionings from the naive advisor
    /// (Section 5: one extreme vector per query, deduplicated).
    ///
    /// Deduplication is two-stage: exact physical-layout equality, then
    /// reward equivalence under a uniform mix — suggestions that differ
    /// only in irrelevant small-table details collapse into one reference,
    /// which is how the paper ends up with `n << m` references.
    pub fn reference_partitionings(naive: &mut Advisor) -> Vec<Partitioning> {
        let m = naive.env.workload.slots();
        let queries = naive.env.workload.queries().len();
        let mut refs: Vec<Partitioning> = Vec::new();
        for i in 0..queries {
            let f = FrequencyVector::extreme(m, QueryId(i), F_LOW, F_HIGH);
            let s = naive.suggest(&f);
            if !refs
                .iter()
                .any(|r| r.physical_key() == s.partitioning.physical_key())
            {
                refs.push(s.partitioning);
            }
        }
        // Reward-equivalence merge (keep the better representative).
        let uniform = naive.env.workload.uniform_frequencies();
        let mut kept: Vec<(Partitioning, f64)> = Vec::new();
        for p in refs {
            let r = naive.reward_of(&p, &uniform);
            match kept
                .iter_mut()
                .find(|(_, kr)| (*kr - r).abs() <= 0.02 * kr.abs().max(1e-12))
            {
                Some(slot) => {
                    if r > slot.1 {
                        *slot = (p, r);
                    }
                }
                None => kept.push((p, r)),
            }
        }
        kept.into_iter().map(|(p, _)| p).collect()
    }

    /// Which subspace a mix belongs to: the reference partitioning with
    /// the maximum reward for it.
    pub fn assign(naive: &mut Advisor, refs: &[Partitioning], freqs: &FrequencyVector) -> usize {
        let mut best = 0;
        let mut best_r = f64::NEG_INFINITY;
        for (i, p) in refs.iter().enumerate() {
            let r = naive.reward_of(p, freqs);
            if r > best_r {
                best_r = r;
                best = i;
            }
        }
        best
    }

    /// Shared prelude of [`Self::train`] and [`Self::train_lockstep`]:
    /// derive the references and build, per subspace, a fresh environment
    /// plus the deterministic mix pool its expert trains on.
    #[allow(clippy::type_complexity)]
    fn expert_inputs(
        naive: &mut Advisor,
        expert_cfg: &DqnConfig,
        mut make_env: impl FnMut() -> AdvisorEnv,
    ) -> (Vec<Partitioning>, Vec<(AdvisorEnv, Vec<FrequencyVector>)>) {
        let refs = Self::reference_partitionings(naive);
        let slots = naive.env.workload.slots();
        let queries = naive.env.workload.queries().len();

        // Pool of uniform mixes, assigned to subspaces.
        let mut rng = StdRng::seed_from_u64(expert_cfg.seed ^ 0xC0117);
        let mut pools: Vec<Vec<FrequencyVector>> = vec![Vec::new(); refs.len()];
        let mut base = MixSampler::Uniform { slots, queries };
        let pool_target = expert_cfg.episodes.max(8) * 2;
        for _ in 0..pool_target * refs.len() {
            let f = base.sample(&mut rng);
            let s = Self::assign(naive, &refs, &f);
            if let Some(pool) = pools.get_mut(s) {
                pool.push(f);
            }
            if pools.iter().all(|p| p.len() >= pool_target) {
                break;
            }
        }

        let inputs: Vec<(AdvisorEnv, Vec<FrequencyVector>)> = pools
            .iter()
            .map(|pool| {
                let env = make_env();
                let vectors = if pool.is_empty() {
                    vec![FrequencyVector::uniform(slots)]
                } else {
                    pool.clone()
                };
                (env, vectors)
            })
            .collect();
        (refs, inputs)
    }

    /// One untrained expert, specialized from the naive policy: a copy of
    /// the naive agent with its subspace's cycling mix sampler, a small
    /// fine-tuning learning rate, a per-expert RNG stream derived from
    /// `(seed, expert_id)`, and low exploration.
    fn make_expert(
        naive_policy: &lpa_rl::AgentSnapshot,
        expert_cfg: &DqnConfig,
        expert_id: usize,
        mut env: AdvisorEnv,
        vectors: Vec<FrequencyVector>,
    ) -> Advisor {
        env.set_sampler(MixSampler::cycle(vectors));
        let mut snapshot = naive_policy.clone();
        // Experts fine-tune: small learning rate, little exploration —
        // they specialize the naive policy rather than re-learn it.
        let mut cfg = expert_cfg.clone();
        cfg.learning_rate = (expert_cfg.learning_rate * 0.3).max(1e-4);
        cfg.seed = lpa_par::derive_stream(expert_cfg.seed, expert_id as u64);
        snapshot.cfg = cfg;
        let mut expert = Advisor::from_snapshot(env, snapshot);
        expert.set_epsilon(0.05);
        expert
    }

    /// Build the committee: derive references, partition a pool of
    /// uniformly sampled mixes by subspace, and train one expert per
    /// subspace on its mixes. Experts share the naive advisor's reward
    /// backend machinery through `make_env`, which must build a fresh
    /// environment per expert (typically sharing the cluster and runtime
    /// cache handles).
    ///
    /// Parallelism is coarse: one task per expert. Each expert's RNG
    /// stream is derived from `(seed, expert_id)`, so its trajectory does
    /// not depend on how many experts run concurrently, and the experts
    /// come back in subspace order. When there are fewer experts than
    /// threads, [`Self::train_lockstep`] keeps the pool busy instead.
    pub fn train(
        naive: &mut Advisor,
        expert_cfg: DqnConfig,
        make_env: impl FnMut() -> AdvisorEnv,
    ) -> Committee {
        let (refs, inputs) = Self::expert_inputs(naive, &expert_cfg, make_env);
        let naive_policy = naive.snapshot();
        let experts = Pool::current().par_map_owned(inputs, |expert_id, (env, vectors)| {
            let mut expert = Self::make_expert(&naive_policy, &expert_cfg, expert_id, env, vectors);
            expert.train_episodes(expert_cfg.episodes, |_| {});
            expert
        });
        Committee {
            references: refs,
            experts,
        }
    }

    /// [`Self::train`] with the experts advanced in lockstep instead of
    /// one-task-per-expert: every expert steps through the same
    /// episode/step schedule and all experts' Q-network work — selection
    /// forwards, target forwards, backward passes — is stacked into
    /// grouped kernels ([`lpa_rl::train_lockstep`]), one pooled dispatch
    /// per network stage instead of one tiny dispatch per expert.
    ///
    /// Produces bit-identical experts to [`Self::train`]: the experts are
    /// constructed by the same code, and the lockstep driver is proven
    /// bit-equal to the sequential per-expert loop. Prefer this path when
    /// experts are few relative to threads (each expert's minibatch is too
    /// small to occupy a wide pool on its own); with many experts the
    /// coarse per-expert parallelism of [`Self::train`] is already
    /// saturating and either path performs alike.
    pub fn train_lockstep(
        naive: &mut Advisor,
        expert_cfg: DqnConfig,
        make_env: impl FnMut() -> AdvisorEnv,
    ) -> Committee {
        let (refs, inputs) = Self::expert_inputs(naive, &expert_cfg, make_env);
        let naive_policy = naive.snapshot();
        let mut experts: Vec<Advisor> = inputs
            .into_iter()
            .enumerate()
            .map(|(expert_id, (env, vectors))| {
                Self::make_expert(&naive_policy, &expert_cfg, expert_id, env, vectors)
            })
            .collect();
        {
            let mut members: Vec<(&mut lpa_rl::DqnAgent<AdvisorEnv>, &mut AdvisorEnv)> =
                experts.iter_mut().map(|e| e.agent_env_mut()).collect();
            lpa_rl::train_lockstep(&mut members, expert_cfg.episodes, |_, _| {});
        }
        Committee {
            references: refs,
            experts,
        }
    }

    /// Committee inference (Section 6): route the mix to its subspace
    /// expert.
    pub fn suggest(&mut self, naive: &mut Advisor, freqs: &FrequencyVector) -> Suggestion {
        let i = Self::assign(naive, &self.references, freqs);
        match self.experts.get_mut(i) {
            Some(expert) => expert.suggest(freqs),
            // `assign` indexes the references, which are built one-to-one
            // with the experts; fall back to the naive advisor if that
            // invariant ever breaks rather than panic during serving.
            None => naive.suggest(freqs),
        }
    }

    /// Committee inference over a batch of mixes: each mix is routed to
    /// its subspace expert exactly as [`Self::suggest`] would, then every
    /// expert serves its whole request group through one coalesced
    /// lockstep rollout ([`Advisor::suggest_coalesced`]) — one batched
    /// Q-network forward per rollout step per expert instead of one tiny
    /// forward per candidate action. Results come back in input order and
    /// are bit-identical to calling [`Self::suggest`] per mix.
    pub fn suggest_batch(
        &mut self,
        naive: &mut Advisor,
        freqs: &[FrequencyVector],
    ) -> Vec<Suggestion> {
        // Route every mix first (assignment order matches the sequential
        // path: one `assign` per request, in input order).
        let assignments: Vec<usize> = freqs
            .iter()
            .map(|f| Self::assign(naive, &self.references, f))
            .collect();
        // Group request indices by expert, preserving input order within
        // each group.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.experts.len()];
        let mut fallback: Vec<usize> = Vec::new();
        for (req, &a) in assignments.iter().enumerate() {
            match groups.get_mut(a) {
                Some(g) => g.push(req),
                // `assign` indexes the references, built one-to-one with
                // the experts; fall back to the naive advisor if that
                // invariant ever breaks rather than panic during serving.
                None => fallback.push(req),
            }
        }
        let mut out: Vec<Option<Suggestion>> = vec![None; freqs.len()];
        for (expert, group) in self.experts.iter_mut().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let batch: Vec<&FrequencyVector> =
                group.iter().filter_map(|&req| freqs.get(req)).collect();
            for (&req, s) in group.iter().zip(expert.suggest_coalesced(&batch)) {
                if let Some(slot) = out.get_mut(req) {
                    *slot = Some(s);
                }
            }
        }
        for &req in &fallback {
            if let (Some(f), Some(slot)) = (freqs.get(req), out.get_mut(req)) {
                *slot = Some(naive.suggest(f));
            }
        }
        // Every request was either grouped or sent to the fallback, so the
        // unwrap_or fills nothing in practice; a naive suggestion for the
        // uniform-equivalent of "no answer" would still be wrong, so keep
        // the defensive shape cheap: re-ask the naive advisor.
        out.into_iter()
            .zip(freqs)
            .map(|(s, f)| s.unwrap_or_else(|| naive.suggest(f)))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.experts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.experts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RewardBackend;
    use lpa_costmodel::{CostParams, NetworkCostModel};
    use lpa_rl::DqnConfig;

    fn quick_cfg() -> DqnConfig {
        DqnConfig {
            episodes: 25,
            tmax: 6,
            batch_size: 8,
            hidden: vec![32],
            epsilon_decay: 0.9,
            learning_rate: 2e-3,
            tau: 0.05,
            ..DqnConfig::paper()
        }
        .with_seed(11)
    }

    fn offline_naive() -> Advisor {
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let sampler = MixSampler::uniform(&workload);
        Advisor::train_offline(
            schema,
            workload,
            NetworkCostModel::new(CostParams::standard()),
            sampler,
            quick_cfg(),
            true,
        )
    }

    #[test]
    fn references_are_deduplicated_and_nonempty() {
        let mut naive = offline_naive();
        let refs = Committee::reference_partitionings(&mut naive);
        assert!(!refs.is_empty());
        assert!(refs.len() <= naive.env.workload.queries().len());
        for i in 0..refs.len() {
            for j in (i + 1)..refs.len() {
                assert_ne!(refs[i].physical_key(), refs[j].physical_key());
            }
        }
    }

    #[test]
    fn assignment_is_stable_and_in_range() {
        let mut naive = offline_naive();
        let refs = Committee::reference_partitionings(&mut naive);
        let f = FrequencyVector::uniform(naive.env.workload.slots());
        let a = Committee::assign(&mut naive, &refs, &f);
        let b = Committee::assign(&mut naive, &refs, &f);
        assert_eq!(a, b);
        assert!(a < refs.len());
    }

    #[test]
    fn committee_trains_and_suggests() {
        let mut naive = offline_naive();
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let cfg = quick_cfg();
        let mk_schema = schema.clone();
        let mk_workload = workload.clone();
        let mut committee = Committee::train(&mut naive, cfg, move || {
            AdvisorEnv::new(
                mk_schema.clone(),
                mk_workload.clone(),
                RewardBackend::cost_model(NetworkCostModel::new(CostParams::standard())),
                MixSampler::uniform(&mk_workload),
                true,
                99,
            )
        });
        assert_eq!(committee.len(), committee.references.len());
        let f = FrequencyVector::uniform(workload.slots());
        let s = committee.suggest(&mut naive, &f);
        assert!(s.reward.is_finite());
        s.partitioning.check(&schema).unwrap();

        // Batched committee inference must match routing + sequential
        // expert suggestions bit-for-bit, in input order.
        let m = workload.slots();
        let mixes: Vec<FrequencyVector> = (0..workload.queries().len())
            .map(|i| FrequencyVector::extreme(m, QueryId(i), F_LOW, F_HIGH))
            .chain([FrequencyVector::uniform(m), f])
            .collect();
        let sequential: Vec<Suggestion> = mixes
            .iter()
            .map(|f| committee.suggest(&mut naive, f))
            .collect();
        let batch = committee.suggest_batch(&mut naive, &mixes);
        assert_eq!(batch.len(), sequential.len());
        for (b, s) in batch.iter().zip(&sequential) {
            assert_eq!(b.partitioning, s.partitioning);
            assert_eq!(b.reward.to_bits(), s.reward.to_bits());
            assert_eq!(b.step, s.step);
        }
        assert!(committee.suggest_batch(&mut naive, &[]).is_empty());
    }

    fn mk_env() -> AdvisorEnv {
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let sampler = MixSampler::uniform(&workload);
        AdvisorEnv::new(
            schema,
            workload,
            RewardBackend::cost_model(NetworkCostModel::new(CostParams::standard())),
            sampler,
            true,
            99,
        )
    }

    /// The lockstep committee contract: grouped cross-expert training
    /// produces, for every expert, exactly the networks the
    /// one-task-per-expert path produces — at one and at eight threads —
    /// and therefore identical suggestions.
    #[test]
    fn lockstep_committee_matches_parallel_committee_bitwise() {
        use lpa_par::with_threads;
        let mut naive_ref = offline_naive();
        let mut reference =
            with_threads(1, || Committee::train(&mut naive_ref, quick_cfg(), mk_env));
        let ref_bits: Vec<(Vec<u32>, Vec<u32>, f64)> = reference
            .experts
            .iter()
            .map(|e| {
                (
                    lpa_nn::reference::mlp_bits(e.agent().q_network()),
                    lpa_nn::reference::mlp_bits(e.agent().target_network()),
                    e.agent().epsilon(),
                )
            })
            .collect();
        let slots = naive_ref.env.workload.slots();
        let uniform = FrequencyVector::uniform(slots);
        for threads in [1usize, 8] {
            let mut naive = offline_naive();
            let mut committee = with_threads(threads, || {
                Committee::train_lockstep(&mut naive, quick_cfg(), mk_env)
            });
            assert_eq!(committee.references, reference.references);
            assert_eq!(committee.experts.len(), ref_bits.len());
            for (k, (expert, (q, t, eps))) in committee.experts.iter().zip(&ref_bits).enumerate() {
                assert_eq!(
                    &lpa_nn::reference::mlp_bits(expert.agent().q_network()),
                    q,
                    "threads {threads} expert {k}: q-net diverged"
                );
                assert_eq!(
                    &lpa_nn::reference::mlp_bits(expert.agent().target_network()),
                    t,
                    "threads {threads} expert {k}: target net diverged"
                );
                assert_eq!(expert.agent().epsilon(), *eps);
            }
            // Identical networks must serve identical suggestions.
            let mut naive2 = offline_naive();
            let s = committee.suggest(&mut naive2, &uniform);
            let mut naive3 = offline_naive();
            let sr = reference.suggest(&mut naive3, &uniform);
            assert_eq!(s.partitioning, sr.partitioning);
            assert_eq!(s.reward.to_bits(), sr.reward.to_bits());
            assert_eq!(s.step, sr.step);
        }
    }
}
