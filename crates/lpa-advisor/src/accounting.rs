//! Training-time ledger for the Table 2 ablation.
//!
//! A single instrumented online-training run records, next to the time it
//! actually spent, the time it *would* have spent without each
//! optimization — exactly how the paper measured Table 2 ("by keeping
//! track of the queries that would be executed twice without Runtime
//! Caching, how often a table would be repartitioned without Lazy
//! Repartitioning and how much time could be saved with a particular
//! Timeout").

use serde::{Deserialize, Serialize};

/// Simulated-seconds ledger of one online-training run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CostAccounting {
    /// Seconds actually charged for executed queries (after timeouts).
    pub actual_query_seconds: f64,
    /// Full runtimes of executed queries (before timeout savings).
    pub executed_query_seconds_full: f64,
    /// Runtimes served from the cache — the re-execution time the cache
    /// avoided.
    pub cached_query_seconds: f64,
    /// Seconds saved by aborting hopeless queries.
    pub timeout_saved_seconds: f64,
    /// Actual (lazy) repartitioning seconds.
    pub lazy_repartition_seconds: f64,
    /// Hypothetical repartitioning seconds had every state change been
    /// deployed eagerly.
    pub full_repartition_seconds: f64,
    pub queries_executed: u64,
    pub queries_cached: u64,
    pub timeouts_hit: u64,
}

impl CostAccounting {
    /// Training time with no optimizations: every query re-runs, every
    /// state change repartitions eagerly, no timeouts.
    pub fn row_none(&self) -> f64 {
        self.executed_query_seconds_full + self.cached_query_seconds + self.full_repartition_seconds
    }

    /// + Runtime Cache.
    pub fn row_cache(&self) -> f64 {
        self.executed_query_seconds_full + self.full_repartition_seconds
    }

    /// + Lazy Repartitioning.
    pub fn row_lazy(&self) -> f64 {
        self.executed_query_seconds_full + self.lazy_repartition_seconds
    }

    /// + Timeouts (everything except the offline bootstrap, which is
    ///   measured by running a second, bootstrapped training).
    pub fn row_timeouts(&self) -> f64 {
        self.actual_query_seconds + self.lazy_repartition_seconds
    }

    /// Total time actually spent by this run.
    pub fn total(&self) -> f64 {
        self.row_timeouts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_monotonically_cheaper() {
        let acc = CostAccounting {
            actual_query_seconds: 10.0,
            executed_query_seconds_full: 14.0,
            cached_query_seconds: 50.0,
            timeout_saved_seconds: 4.0,
            lazy_repartition_seconds: 5.0,
            full_repartition_seconds: 40.0,
            queries_executed: 7,
            queries_cached: 30,
            timeouts_hit: 2,
        };
        assert!(acc.row_none() > acc.row_cache());
        assert!(acc.row_cache() > acc.row_lazy());
        assert!(acc.row_lazy() > acc.row_timeouts());
        assert_eq!(acc.row_none(), 104.0);
        assert_eq!(acc.row_timeouts(), 15.0);
        assert_eq!(acc.total(), acc.row_timeouts());
    }
}
