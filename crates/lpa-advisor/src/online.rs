//! The online reward backend: measured runtimes on a sampled cluster with
//! the Section 4.2 optimizations (sampling + scale factors, query-runtime
//! caching, lazy repartitioning, timeouts).

use crate::accounting::CostAccounting;
use crate::cache::{CachedRuntime, SharedRuntimeCache};
use lpa_cluster::{direct_deploy, Cluster, FaultAccounting, QueryOutcome};
use lpa_costmodel::NetworkCostModel;
use lpa_partition::Partitioning;
use lpa_schema::Schema;
use lpa_workload::{FrequencyVector, Query, Workload};
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared mutable cluster handle: the naive agent and the committee
/// experts train against the same sampled database.
pub type SharedCluster = Arc<Mutex<Cluster>>;

/// Wrap a cluster for sharing.
pub fn shared_cluster(cluster: Cluster) -> SharedCluster {
    Arc::new(Mutex::new(cluster))
}

/// Toggles for the Table 2 ablation; production use enables all.
#[derive(Clone, Copy, Debug)]
pub struct OnlineOptimizations {
    pub runtime_cache: bool,
    pub lazy_repartitioning: bool,
    pub timeouts: bool,
}

impl Default for OnlineOptimizations {
    fn default() -> Self {
        Self {
            runtime_cache: true,
            lazy_repartitioning: true,
            timeouts: true,
        }
    }
}

/// Bounded-retry policy for failed measurements. Backoff is charged in
/// *simulated* seconds via [`Cluster::advance_clock`] — no wall time — so
/// waiting out a fault window genuinely moves the schedule forward.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt.
    pub max_retries: u32,
    /// Simulated seconds waited before the first retry.
    pub backoff_seconds: f64,
    /// Backoff growth per retry (exponential).
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_seconds: 0.05,
            backoff_multiplier: 2.0,
        }
    }
}

/// Cost-model stand-in used when a measurement ultimately fails: the
/// model's full-scale estimate replaces `S_j · c_sample` in the reward sum,
/// so one dead query cannot poison a whole episode.
#[derive(Debug)]
struct CostModelFallback {
    model: NetworkCostModel,
    schema: Schema,
}

/// The checkpointable portion of an [`OnlineBackend`]: everything mutable
/// except the shared cluster and cache (captured separately) and the
/// cost-model fallback (pure configuration, re-attached on restore).
#[derive(Clone, Debug)]
pub struct OnlineResumeState {
    pub scale: Vec<f64>,
    pub opts: OnlineOptimizations,
    pub accounting: CostAccounting,
    pub best_reward: f64,
    pub eager_shadow: Option<Partitioning>,
    pub retry: RetryPolicy,
    pub faults: FaultAccounting,
}

/// Rewards from actual execution on the sampled cluster.
#[derive(Debug)]
pub struct OnlineBackend {
    cluster: SharedCluster,
    cache: SharedRuntimeCache,
    /// Per-query scale factors `S_i = c_full(q_i) / c_sample(q_i)`
    /// (Section 4.2, Sampling).
    scale: Vec<f64>,
    opts: OnlineOptimizations,
    pub accounting: CostAccounting,
    /// Best reward seen so far; bounds the per-query timeout.
    best_reward: f64,
    /// Ledger-only shadow of what eager deployment would have done.
    eager_shadow: Option<Partitioning>,
    retry: RetryPolicy,
    fallback: Option<CostModelFallback>,
    /// Training-side fault counters (retries, fallbacks, invalidations);
    /// [`Self::fault_accounting`] merges them with the cluster's view.
    faults: FaultAccounting,
}

impl OnlineBackend {
    pub fn new(
        cluster: SharedCluster,
        cache: SharedRuntimeCache,
        scale: Vec<f64>,
        opts: OnlineOptimizations,
    ) -> Self {
        Self {
            cluster,
            cache,
            scale,
            opts,
            accounting: CostAccounting::default(),
            best_reward: f64::NEG_INFINITY,
            eager_shadow: None,
            retry: RetryPolicy::default(),
            fallback: None,
            faults: FaultAccounting::default(),
        }
    }

    /// Override the retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Provide a cost model (with the *full* cluster's schema) to estimate
    /// rewards for queries whose measurement keeps failing. Without one, a
    /// dead query is charged at its timeout bound instead.
    pub fn with_fallback(mut self, model: NetworkCostModel, schema: Schema) -> Self {
        self.fallback = Some(CostModelFallback { model, schema });
        self
    }

    /// Fault-layer counters: the backend's own (retries, fallbacks, cache
    /// invalidations) merged with the cluster's execution-side view.
    pub fn fault_accounting(&self) -> FaultAccounting {
        self.faults.merged(&self.cluster.lock().fault_accounting())
    }

    /// Measure the per-query scale factors: run the whole workload once on
    /// the full cluster and once on the sample, both under `p_offline`
    /// (the partitioning the offline phase suggested).
    pub fn compute_scale_factors(
        full: &mut Cluster,
        sample: &mut Cluster,
        workload: &Workload,
        p_offline: &Partitioning,
    ) -> Vec<f64> {
        direct_deploy(full, p_offline);
        direct_deploy(sample, p_offline);
        workload
            .queries()
            .iter()
            .map(|q| {
                let cf = full.run_query(q, None).seconds();
                let cs = sample.run_query(q, None).seconds().max(1e-12);
                (cf / cs).max(1e-6)
            })
            .collect()
    }

    /// Capture the backend's own mutable state for checkpointing. The
    /// backend-side fault ledger is included *unmerged* (the cluster's view
    /// is checkpointed with the cluster).
    pub fn resume_state(&self) -> OnlineResumeState {
        OnlineResumeState {
            scale: self.scale.clone(),
            opts: self.opts,
            accounting: self.accounting,
            best_reward: self.best_reward,
            eager_shadow: self.eager_shadow.clone(),
            retry: self.retry,
            faults: self.faults,
        }
    }

    /// Re-apply checkpointed state (the cluster/cache handles and any
    /// fallback are supplied by the caller, who rebuilt them).
    pub fn restore_resume_state(&mut self, st: OnlineResumeState) {
        self.scale = st.scale;
        self.opts = st.opts;
        self.accounting = st.accounting;
        self.best_reward = st.best_reward;
        self.eager_shadow = st.eager_shadow;
        self.retry = st.retry;
        self.faults = st.faults;
    }

    pub fn cache(&self) -> SharedRuntimeCache {
        Arc::clone(&self.cache)
    }

    pub fn cluster(&self) -> SharedCluster {
        Arc::clone(&self.cluster)
    }

    pub fn scale_factors(&self) -> &[f64] {
        &self.scale
    }

    pub fn optimizations(&self) -> OnlineOptimizations {
        self.opts
    }

    /// The reward `-Σ_j f_j · S_j · c_sample(P, q_j)` for a candidate
    /// partitioning under a workload mix, executing only what the cache
    /// does not already know.
    pub fn reward(
        &mut self,
        workload: &Workload,
        partitioning: &Partitioning,
        freqs: &FrequencyVector,
    ) -> f64 {
        let mut cluster = self.cluster.lock();

        // Ledger: what eager deployment of every state change would cost.
        match &self.eager_shadow {
            Some(prev) => {
                self.accounting.full_repartition_seconds +=
                    cluster.repartition_cost(prev, partitioning);
            }
            None => {
                self.accounting.full_repartition_seconds +=
                    cluster.repartition_cost(cluster.deployed(), partitioning);
            }
        }
        self.eager_shadow = Some(partitioning.clone());

        let mut total = 0.0;
        for (j, q) in workload.queries().iter().enumerate() {
            let f = freqs.as_slice().get(j).copied().unwrap_or(0.0);
            if f == 0.0 {
                continue;
            }
            let s = self.scale.get(j).copied().unwrap_or(1.0);

            if self.opts.runtime_cache {
                let hit = self.cache.lock().lookup(j, partitioning, &q.tables);
                match hit {
                    // A degraded-epoch entry is only trusted while the
                    // cluster is still unhealthy; once it recovers, drop
                    // the entry and re-measure under clean conditions.
                    Some(entry) if entry.degraded && !cluster.fault_state().any_fault() => {
                        self.cache.lock().invalidate(j, partitioning, &q.tables);
                        self.faults.cache_invalidations += 1;
                    }
                    Some(entry) => {
                        self.accounting.cached_query_seconds += entry.seconds;
                        self.accounting.queries_cached += 1;
                        total += f * s * entry.seconds;
                        continue;
                    }
                    None => {}
                }
            }

            // Deploy what this query needs (lazy) or the full target.
            let target = if self.opts.lazy_repartitioning {
                let mut states = cluster.deployed().table_states().to_vec();
                for &t in &q.tables {
                    states[t.0] = partitioning.table_state(t);
                }
                Partitioning::from_states(cluster.schema(), states)
            } else {
                partitioning.clone()
            };
            self.accounting.lazy_repartition_seconds += direct_deploy(&mut cluster, &target);

            // Execute fully to learn the true runtime, retrying failed
            // attempts with deterministic simulated-time backoff; apply
            // the timeout bound to the *charged* time (Section 4.2,
            // Timeouts: a query exceeding -r*/(S_i·f_i) cannot belong to
            // an optimal partitioning, so a real system would abort it
            // there).
            let limit = if self.opts.timeouts && self.best_reward.is_finite() {
                -self.best_reward / (s * f)
            } else {
                f64::INFINITY
            };
            let outcome = Self::measure_with_retries(self.retry, &mut self.faults, &mut cluster, q);
            match outcome {
                QueryOutcome::Completed {
                    seconds: t,
                    degraded,
                    ..
                } => {
                    self.accounting.queries_executed += 1;
                    self.accounting.executed_query_seconds_full += t;
                    if t > limit {
                        self.accounting.timeout_saved_seconds += t - limit;
                        self.accounting.timeouts_hit += 1;
                        self.accounting.actual_query_seconds += limit;
                    } else {
                        self.accounting.actual_query_seconds += t;
                    }
                    // Record unconditionally: with caching disabled the
                    // entry is never read for rewards, but
                    // committee/inference probes and the ledger still use
                    // it. Degraded epochs are tagged for invalidation on
                    // recovery.
                    self.cache.lock().store_tagged(
                        j,
                        partitioning,
                        &q.tables,
                        CachedRuntime {
                            seconds: t,
                            degraded,
                        },
                    );
                    total += f * s * t;
                }
                QueryOutcome::TimedOut { limit: spent } => {
                    // Unreachable with an unlimited budget, but handled
                    // for completeness: charge what was spent, cache
                    // nothing (the full runtime is unknown).
                    self.accounting.queries_executed += 1;
                    self.accounting.actual_query_seconds += spent;
                    total += f * s * spent;
                }
                QueryOutcome::Failed { .. } => {
                    // Retries exhausted: fall back to the cost model's
                    // full-scale estimate (replacing S_j · c_sample), or —
                    // without a model — charge the timeout bound as a
                    // pessimistic stand-in. Nothing is cached; the next
                    // visit re-measures.
                    self.faults.fallbacks += 1;
                    match &self.fallback {
                        Some(fb) => {
                            total += f * fb.model.query_cost(&fb.schema, q, partitioning);
                        }
                        None => {
                            let bound = if limit.is_finite() { limit } else { 0.0 };
                            total += f * s * bound;
                        }
                    }
                }
            }
        }
        let r = -total;
        if r > self.best_reward {
            self.best_reward = r;
        }
        r
    }

    /// Run one query, retrying failures up to the policy's bound. Backoff
    /// advances the *simulated* clock, so the fault schedule moves to later
    /// windows and a transient storm can genuinely pass. On a fault-free
    /// cluster the first attempt always completes and this is exactly one
    /// `run_query` call — bit-identical to the unhardened path.
    fn measure_with_retries(
        retry: RetryPolicy,
        faults: &mut FaultAccounting,
        cluster: &mut Cluster,
        q: &Query,
    ) -> QueryOutcome {
        let mut backoff = retry.backoff_seconds.max(0.0);
        let mut attempts_left = retry.max_retries;
        loop {
            let out = cluster.run_query(q, None);
            match out {
                QueryOutcome::Completed { .. } | QueryOutcome::TimedOut { .. } => return out,
                QueryOutcome::Failed { .. } => {
                    if attempts_left == 0 {
                        return out;
                    }
                    attempts_left -= 1;
                    faults.retries += 1;
                    cluster.advance_clock(backoff);
                    backoff *= retry.backoff_multiplier.max(1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::shared_cache;
    use lpa_cluster::{ClusterConfig, EngineProfile, HardwareProfile};

    fn setup() -> (SharedCluster, Workload) {
        let schema = lpa_schema::microbench::schema(0.002).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let c = Cluster::new(
            schema,
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        (Arc::new(Mutex::new(c)), w)
    }

    #[test]
    fn cache_prevents_reexecution() {
        let (cluster, w) = setup();
        let p = {
            let c = cluster.lock();
            Partitioning::initial(c.schema())
        };
        let mut backend = OnlineBackend::new(
            Arc::clone(&cluster),
            shared_cache(),
            vec![1.0; w.queries().len()],
            OnlineOptimizations::default(),
        );
        let f = FrequencyVector::uniform(w.slots());
        let r1 = backend.reward(&w, &p, &f);
        let executed_after_first = cluster.lock().queries_executed();
        let r2 = backend.reward(&w, &p, &f);
        let executed_after_second = cluster.lock().queries_executed();
        assert_eq!(executed_after_first, executed_after_second, "all cached");
        assert!((r1 - r2).abs() < 1e-12, "cached reward identical");
        assert_eq!(backend.accounting.queries_cached, 2);
    }

    #[test]
    fn rewards_are_negative_costs_and_scale_applies() {
        let (cluster, w) = setup();
        let p = {
            let c = cluster.lock();
            Partitioning::initial(c.schema())
        };
        let mut b1 = OnlineBackend::new(
            Arc::clone(&cluster),
            shared_cache(),
            vec![1.0; 2],
            OnlineOptimizations::default(),
        );
        let mut b2 = OnlineBackend::new(
            Arc::clone(&cluster),
            shared_cache(),
            vec![10.0; 2],
            OnlineOptimizations::default(),
        );
        let f = FrequencyVector::uniform(w.slots());
        let r1 = b1.reward(&w, &p, &f);
        let r2 = b2.reward(&w, &p, &f);
        assert!(r1 < 0.0);
        assert!((r2 - 10.0 * r1).abs() < 1e-9 * r1.abs().max(1.0));
    }

    #[test]
    fn ledger_orders_rows() {
        let (cluster, w) = setup();
        let schema = cluster.lock().schema().clone();
        let mut backend = OnlineBackend::new(
            cluster,
            shared_cache(),
            vec![1.0; 2],
            OnlineOptimizations::default(),
        );
        let f = FrequencyVector::uniform(w.slots());
        // Visit a few states, revisiting the first.
        let p0 = Partitioning::initial(&schema);
        let b = schema.table_by_name("b").unwrap();
        let p1 = lpa_partition::Action::Replicate { table: b }
            .apply(&schema, &p0)
            .unwrap();
        for p in [&p0, &p1, &p0, &p1, &p0] {
            backend.reward(&w, p, &f);
        }
        let acc = backend.accounting;
        assert!(acc.queries_cached > 0, "revisits must hit the cache");
        assert!(acc.row_none() >= acc.row_cache());
        assert!(acc.row_cache() >= acc.row_lazy());
        assert!(acc.row_lazy() >= acc.row_timeouts());
    }

    #[test]
    fn scale_factors_reflect_sample_ratio() {
        let schema = lpa_schema::microbench::schema(0.004).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let mut full = Cluster::new(
            schema.clone(),
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        let mut sample = full.sampled(0.25);
        let p = Partitioning::initial(&schema);
        let s = OnlineBackend::compute_scale_factors(&mut full, &mut sample, &w, &p);
        assert_eq!(s.len(), 2);
        for v in s {
            assert!(v > 1.0, "full must be slower than the sample: {v}");
        }
    }
}
