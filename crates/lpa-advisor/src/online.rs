//! The online reward backend: measured runtimes on a sampled cluster with
//! the Section 4.2 optimizations (sampling + scale factors, query-runtime
//! caching, lazy repartitioning, timeouts).

use crate::accounting::CostAccounting;
use crate::cache::SharedRuntimeCache;
use lpa_cluster::Cluster;
use lpa_partition::Partitioning;
use lpa_workload::{FrequencyVector, Workload};
use parking_lot::Mutex;
use std::sync::Arc;

/// Shared mutable cluster handle: the naive agent and the committee
/// experts train against the same sampled database.
pub type SharedCluster = Arc<Mutex<Cluster>>;

/// Wrap a cluster for sharing.
pub fn shared_cluster(cluster: Cluster) -> SharedCluster {
    Arc::new(Mutex::new(cluster))
}

/// Toggles for the Table 2 ablation; production use enables all.
#[derive(Clone, Copy, Debug)]
pub struct OnlineOptimizations {
    pub runtime_cache: bool,
    pub lazy_repartitioning: bool,
    pub timeouts: bool,
}

impl Default for OnlineOptimizations {
    fn default() -> Self {
        Self {
            runtime_cache: true,
            lazy_repartitioning: true,
            timeouts: true,
        }
    }
}

/// Rewards from actual execution on the sampled cluster.
#[derive(Debug)]
pub struct OnlineBackend {
    cluster: SharedCluster,
    cache: SharedRuntimeCache,
    /// Per-query scale factors `S_i = c_full(q_i) / c_sample(q_i)`
    /// (Section 4.2, Sampling).
    scale: Vec<f64>,
    opts: OnlineOptimizations,
    pub accounting: CostAccounting,
    /// Best reward seen so far; bounds the per-query timeout.
    best_reward: f64,
    /// Ledger-only shadow of what eager deployment would have done.
    eager_shadow: Option<Partitioning>,
}

impl OnlineBackend {
    pub fn new(
        cluster: SharedCluster,
        cache: SharedRuntimeCache,
        scale: Vec<f64>,
        opts: OnlineOptimizations,
    ) -> Self {
        Self {
            cluster,
            cache,
            scale,
            opts,
            accounting: CostAccounting::default(),
            best_reward: f64::NEG_INFINITY,
            eager_shadow: None,
        }
    }

    /// Measure the per-query scale factors: run the whole workload once on
    /// the full cluster and once on the sample, both under `p_offline`
    /// (the partitioning the offline phase suggested).
    pub fn compute_scale_factors(
        full: &mut Cluster,
        sample: &mut Cluster,
        workload: &Workload,
        p_offline: &Partitioning,
    ) -> Vec<f64> {
        full.deploy(p_offline);
        sample.deploy(p_offline);
        workload
            .queries()
            .iter()
            .map(|q| {
                let cf = full.run_query(q, None).seconds();
                let cs = sample.run_query(q, None).seconds().max(1e-12);
                (cf / cs).max(1e-6)
            })
            .collect()
    }

    pub fn cache(&self) -> SharedRuntimeCache {
        Arc::clone(&self.cache)
    }

    pub fn cluster(&self) -> SharedCluster {
        Arc::clone(&self.cluster)
    }

    pub fn scale_factors(&self) -> &[f64] {
        &self.scale
    }

    pub fn optimizations(&self) -> OnlineOptimizations {
        self.opts
    }

    /// The reward `-Σ_j f_j · S_j · c_sample(P, q_j)` for a candidate
    /// partitioning under a workload mix, executing only what the cache
    /// does not already know.
    pub fn reward(
        &mut self,
        workload: &Workload,
        partitioning: &Partitioning,
        freqs: &FrequencyVector,
    ) -> f64 {
        let mut cluster = self.cluster.lock();

        // Ledger: what eager deployment of every state change would cost.
        match &self.eager_shadow {
            Some(prev) => {
                self.accounting.full_repartition_seconds +=
                    cluster.repartition_cost(prev, partitioning);
            }
            None => {
                self.accounting.full_repartition_seconds +=
                    cluster.repartition_cost(cluster.deployed(), partitioning);
            }
        }
        self.eager_shadow = Some(partitioning.clone());

        let mut total = 0.0;
        for (j, q) in workload.queries().iter().enumerate() {
            let f = freqs.as_slice().get(j).copied().unwrap_or(0.0);
            if f == 0.0 {
                continue;
            }
            let s = self.scale.get(j).copied().unwrap_or(1.0);

            if self.opts.runtime_cache {
                if let Some(t) = self.cache.lock().lookup(j, partitioning, &q.tables) {
                    self.accounting.cached_query_seconds += t;
                    self.accounting.queries_cached += 1;
                    total += f * s * t;
                    continue;
                }
            }

            // Deploy what this query needs (lazy) or the full target.
            let target = if self.opts.lazy_repartitioning {
                let mut states = cluster.deployed().table_states().to_vec();
                for &t in &q.tables {
                    states[t.0] = partitioning.table_state(t);
                }
                Partitioning::from_states(cluster.schema(), states)
            } else {
                partitioning.clone()
            };
            self.accounting.lazy_repartition_seconds += cluster.deploy(&target);

            // Execute fully to learn the true runtime; apply the timeout
            // bound to the *charged* time (Section 4.2, Timeouts: a query
            // exceeding -r*/(S_i·f_i) cannot belong to an optimal
            // partitioning, so a real system would abort it there).
            let t = cluster.run_query(q, None).seconds();
            self.accounting.queries_executed += 1;
            self.accounting.executed_query_seconds_full += t;
            let limit = if self.opts.timeouts && self.best_reward.is_finite() {
                -self.best_reward / (s * f)
            } else {
                f64::INFINITY
            };
            if t > limit {
                self.accounting.timeout_saved_seconds += t - limit;
                self.accounting.timeouts_hit += 1;
                self.accounting.actual_query_seconds += limit;
            } else {
                self.accounting.actual_query_seconds += t;
            }
            // Record unconditionally: with caching disabled the entry is
            // never read for rewards, but committee/inference probes and
            // the ledger still use it.
            self.cache.lock().store(j, partitioning, &q.tables, t);
            total += f * s * t;
        }
        let r = -total;
        if r > self.best_reward {
            self.best_reward = r;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::shared_cache;
    use lpa_cluster::{ClusterConfig, EngineProfile, HardwareProfile};

    fn setup() -> (SharedCluster, Workload) {
        let schema = lpa_schema::microbench::schema(0.002).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let c = Cluster::new(
            schema,
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        (Arc::new(Mutex::new(c)), w)
    }

    #[test]
    fn cache_prevents_reexecution() {
        let (cluster, w) = setup();
        let p = {
            let c = cluster.lock();
            Partitioning::initial(c.schema())
        };
        let mut backend = OnlineBackend::new(
            Arc::clone(&cluster),
            shared_cache(),
            vec![1.0; w.queries().len()],
            OnlineOptimizations::default(),
        );
        let f = FrequencyVector::uniform(w.slots());
        let r1 = backend.reward(&w, &p, &f);
        let executed_after_first = cluster.lock().queries_executed();
        let r2 = backend.reward(&w, &p, &f);
        let executed_after_second = cluster.lock().queries_executed();
        assert_eq!(executed_after_first, executed_after_second, "all cached");
        assert!((r1 - r2).abs() < 1e-12, "cached reward identical");
        assert_eq!(backend.accounting.queries_cached, 2);
    }

    #[test]
    fn rewards_are_negative_costs_and_scale_applies() {
        let (cluster, w) = setup();
        let p = {
            let c = cluster.lock();
            Partitioning::initial(c.schema())
        };
        let mut b1 = OnlineBackend::new(
            Arc::clone(&cluster),
            shared_cache(),
            vec![1.0; 2],
            OnlineOptimizations::default(),
        );
        let mut b2 = OnlineBackend::new(
            Arc::clone(&cluster),
            shared_cache(),
            vec![10.0; 2],
            OnlineOptimizations::default(),
        );
        let f = FrequencyVector::uniform(w.slots());
        let r1 = b1.reward(&w, &p, &f);
        let r2 = b2.reward(&w, &p, &f);
        assert!(r1 < 0.0);
        assert!((r2 - 10.0 * r1).abs() < 1e-9 * r1.abs().max(1.0));
    }

    #[test]
    fn ledger_orders_rows() {
        let (cluster, w) = setup();
        let schema = cluster.lock().schema().clone();
        let mut backend = OnlineBackend::new(
            cluster,
            shared_cache(),
            vec![1.0; 2],
            OnlineOptimizations::default(),
        );
        let f = FrequencyVector::uniform(w.slots());
        // Visit a few states, revisiting the first.
        let p0 = Partitioning::initial(&schema);
        let b = schema.table_by_name("b").unwrap();
        let p1 = lpa_partition::Action::Replicate { table: b }
            .apply(&schema, &p0)
            .unwrap();
        for p in [&p0, &p1, &p0, &p1, &p0] {
            backend.reward(&w, p, &f);
        }
        let acc = backend.accounting;
        assert!(acc.queries_cached > 0, "revisits must hit the cache");
        assert!(acc.row_none() >= acc.row_cache());
        assert!(acc.row_cache() >= acc.row_lazy());
        assert!(acc.row_lazy() >= acc.row_timeouts());
    }

    #[test]
    fn scale_factors_reflect_sample_ratio() {
        let schema = lpa_schema::microbench::schema(0.004).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let mut full = Cluster::new(
            schema.clone(),
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        let mut sample = full.sampled(0.25);
        let p = Partitioning::initial(&schema);
        let s = OnlineBackend::compute_scale_factors(&mut full, &mut sample, &w, &p);
        assert_eq!(s.len(), 2);
        for v in s {
            assert!(v > 1.0, "full must be slower than the sample: {v}");
        }
    }
}
