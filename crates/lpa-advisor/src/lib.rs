//! The learned partitioning advisor — the paper's core contribution.
//!
//! * [`env::AdvisorEnv`] casts the partitioning problem as a DQN
//!   environment (Section 3): states are (partitioning, workload-mix)
//!   pairs, actions change one table or toggle one co-partitioning edge,
//!   rewards are negative frequency-weighted workload costs.
//! * [`advisor::Advisor`] trains offline against the network-centric cost
//!   model (Algorithm 1), optionally refines online against measured
//!   runtimes on a sampled cluster (Section 4.2 with all four
//!   optimizations: sampling + scale factors, query-runtime caching, lazy
//!   repartitioning, timeouts), and suggests partitionings by greedy
//!   rollout with best-state selection (Section 6).
//! * [`committee::Committee`] implements the DRL subspace experts and
//!   [`incremental`] the cheap retraining for new queries (Section 5).
//! * [`accounting::CostAccounting`] is the simulated-time ledger behind
//!   the Table 2 training-time ablation.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod accounting;
pub mod advisor;
pub mod cache;
pub mod committee;
pub mod delta;
pub mod env;
pub mod explain;
pub mod incremental;
pub mod online;

pub use accounting::CostAccounting;
pub use advisor::{Advisor, Suggestion};
pub use cache::{shared_cache, CachedRuntime, RuntimeCache, SharedRuntimeCache};
pub use committee::Committee;
pub use delta::{DeltaCostEngine, RecostMode};
pub use env::{AdvisorEnv, EnvState, RewardBackend};
pub use explain::{Explanation, QueryDelta};
pub use online::{
    shared_cluster, OnlineBackend, OnlineOptimizations, OnlineResumeState, RetryPolicy,
    SharedCluster,
};
