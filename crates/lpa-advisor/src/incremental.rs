//! Incremental training for new queries (Section 5).
//!
//! When genuinely new queries join the workload, the advisor does not
//! retrain from scratch: the new queries take over reserved frequency
//! slots (the Q-network input already has entries for them, initially
//! always 0), the agent retrains only on mixes that include the new
//! queries, exploration starts warm, and the Query Runtime Cache keeps
//! actual executions to the new queries' runtimes.

use crate::advisor::Advisor;
use lpa_workload::{MixSampler, Query, QueryId};

/// Result of an incremental extension.
#[derive(Clone, Debug)]
pub struct IncrementalReport {
    /// Ids assigned to the new queries.
    pub new_ids: Vec<QueryId>,
    /// Episodes of additional training performed.
    pub episodes: usize,
}

/// Add new queries to the advisor's workload and retrain incrementally.
///
/// `episodes` is the additional training budget — typically a fraction of
/// the original (the paper's Fig. 6 shows incremental training at a small
/// percentage of full retraining). Returns `Err` with the un-added queries
/// if the workload has no reserved slots left.
pub fn add_queries(
    advisor: &mut Advisor,
    queries: Vec<Query>,
    episodes: usize,
) -> Result<IncrementalReport, Vec<Query>> {
    if queries.len() > advisor.env.workload.reserved_slots() {
        return Err(queries);
    }
    let mut new_ids = Vec::with_capacity(queries.len());
    let mut rejected = Vec::new();
    for q in queries {
        // Slot availability is checked above; collect rather than panic if
        // the workload refuses a query anyway.
        match advisor.env.workload.add_query(q) {
            Ok(id) => new_ids.push(id),
            Err(q) => rejected.push(q),
        }
    }
    if !rejected.is_empty() {
        return Err(rejected);
    }

    // Retrain only on mixes that include the new queries, warm-started.
    let sampler = MixSampler::emphasis(&advisor.env.workload, new_ids.clone(), 4.0);
    let prev = advisor.env.set_sampler(sampler);
    let warm = advisor
        .config()
        .epsilon_after(advisor.config().episodes / 2);
    advisor.set_epsilon(warm);
    advisor.train_episodes(episodes, |_| {});
    advisor.env.set_sampler(prev);
    Ok(IncrementalReport { new_ids, episodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_costmodel::{CostParams, NetworkCostModel};
    use lpa_rl::DqnConfig;
    use lpa_workload::{FrequencyVector, QueryBuilder};

    fn cfg() -> DqnConfig {
        DqnConfig {
            episodes: 15,
            tmax: 6,
            batch_size: 8,
            hidden: vec![32],
            epsilon_decay: 0.9,
            ..DqnConfig::paper()
        }
        .with_seed(21)
    }

    #[test]
    fn new_query_takes_reserved_slot_and_retrains() {
        let schema = lpa_schema::microbench::schema(0.05).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema)
            .expect("workload builds")
            .with_reserved_slots(2);
        let sampler = MixSampler::uniform(&workload);
        let mut advisor = Advisor::train_offline(
            schema.clone(),
            workload,
            NetworkCostModel::new(CostParams::standard()),
            sampler,
            cfg(),
            true,
        );
        let slots = advisor.env.workload.slots();
        let new_q = QueryBuilder::new(&schema, "micro_ab2")
            .join(("a", "a_b_key"), ("b", "b_key"))
            .filter("b", 0.002)
            .finish()
            .unwrap();
        let report = add_queries(&mut advisor, vec![new_q], 5).unwrap();
        assert_eq!(report.new_ids, vec![QueryId(2)]);
        // Slot count unchanged (reserved slot consumed), so the encoder and
        // the network still fit.
        assert_eq!(advisor.env.workload.slots(), slots);
        assert_eq!(advisor.env.workload.queries().len(), 3);
        // The advisor can now be queried with mixes involving the query.
        let f = FrequencyVector::extreme(slots, QueryId(2), 0.1, 1.0);
        let s = advisor.suggest(&f);
        assert!(s.reward.is_finite());
    }

    #[test]
    fn overflow_reports_remaining_queries() {
        let schema = lpa_schema::microbench::schema(0.05).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds"); // 0 reserved
        let sampler = MixSampler::uniform(&workload);
        let mut advisor = Advisor::train_offline(
            schema.clone(),
            workload,
            NetworkCostModel::new(CostParams::standard()),
            sampler,
            cfg(),
            true,
        );
        let q = QueryBuilder::new(&schema, "x").scan("a").finish().unwrap();
        let err = add_queries(&mut advisor, vec![q], 3).unwrap_err();
        assert_eq!(err.len(), 1, "the rejected query is returned");
        assert_eq!(advisor.env.workload.queries().len(), 2);
    }
}
