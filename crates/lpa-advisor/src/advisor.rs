//! The advisor: offline training, online refinement, inference.

use crate::env::{AdvisorEnv, EnvState, RewardBackend};
use crate::online::OnlineBackend;
use lpa_costmodel::NetworkCostModel;
use lpa_nn::Matrix;
use lpa_par::Pool;
use lpa_partition::Partitioning;
use lpa_rl::{
    greedy_argmax, rollout, train, DqnAgent, DqnConfig, EpisodeStats, QEnvironment, Trajectory,
};
use lpa_schema::Schema;
use lpa_workload::{FrequencyVector, MixSampler, Workload};

/// A partitioning suggestion: the best state of a greedy rollout.
#[derive(Clone, Debug)]
pub struct Suggestion {
    pub partitioning: Partitioning,
    /// Reward of that state under the requested mix.
    pub reward: f64,
    /// Rollout step at which the state was reached (0 = initial state).
    pub step: usize,
}

/// The learned partitioning advisor: one DQN agent over an
/// [`AdvisorEnv`].
#[derive(Debug)]
pub struct Advisor {
    pub env: AdvisorEnv,
    agent: DqnAgent<AdvisorEnv>,
    cfg: DqnConfig,
}

impl Advisor {
    /// Phase 1 (Section 4.1): bootstrap the agent offline against the
    /// network-centric cost model.
    pub fn train_offline(
        schema: Schema,
        workload: Workload,
        model: NetworkCostModel,
        sampler: MixSampler,
        cfg: DqnConfig,
        allow_compound: bool,
    ) -> Self {
        let mut env = AdvisorEnv::new(
            schema,
            workload,
            RewardBackend::cost_model(model),
            sampler,
            allow_compound,
            cfg.seed,
        );
        let mut agent = DqnAgent::new(env.input_dim(), cfg.clone());
        train(&mut agent, &mut env, cfg.episodes, |_| {});
        Self { env, agent, cfg }
    }

    /// Construct from a pre-built environment without training (used by the
    /// committee, which trains with custom episode scheduling).
    pub fn untrained(env: AdvisorEnv, cfg: DqnConfig) -> Self {
        let agent = DqnAgent::new(env.input_dim(), cfg.clone());
        Self { env, agent, cfg }
    }

    /// Run additional training episodes against the current backend,
    /// reporting per-episode stats.
    pub fn train_episodes(&mut self, episodes: usize, on_episode: impl FnMut(&EpisodeStats)) {
        train(&mut self.agent, &mut self.env, episodes, on_episode);
    }

    /// Train episodes `start..episodes` with a post-episode observer — the
    /// checkpoint hook. The observer fires at the episode boundary (after
    /// the ε decay), where agent + environment are a complete resumable
    /// state; resuming a run killed after episode `k` means calling this
    /// with `start = k + 1` on the restored state.
    pub fn train_episodes_from(
        &mut self,
        start: usize,
        episodes: usize,
        on_episode: impl FnMut(&EpisodeStats),
        mut after_episode: impl FnMut(usize, &DqnAgent<AdvisorEnv>, &AdvisorEnv),
    ) {
        lpa_rl::train_from(
            &mut self.agent,
            &mut self.env,
            start,
            episodes,
            on_episode,
            |ep, agent, env| after_episode(ep, agent, env),
        );
    }

    /// Phase 2 (Section 4.2): refine online against measured runtimes on
    /// the sampled cluster. Exploration restarts at the ε the offline phase
    /// would have reached after half its episodes.
    pub fn refine_online(&mut self, backend: OnlineBackend, episodes: usize) {
        self.begin_online_refinement(backend);
        train(&mut self.agent, &mut self.env, episodes, |_| {});
    }

    /// The prologue of [`Self::refine_online`] without the training loop —
    /// lets checkpointing hosts drive the episodes themselves through
    /// [`Self::train_episodes_from`].
    pub fn begin_online_refinement(&mut self, backend: OnlineBackend) {
        let warm = self.cfg.epsilon_after(self.cfg.episodes / 2);
        self.agent.set_epsilon(warm);
        // Measured rewards live on a different scale than the cost model's
        // estimates; don't replay stale offline transitions against them.
        self.agent.clear_buffer();
        self.env
            .set_backend(RewardBackend::Cluster(Box::new(backend)));
    }

    /// Inference (Section 6): greedy rollout from `s_0`, return the state
    /// with the maximum reward (the agent oscillates around the optimum,
    /// so the last state is not necessarily the best).
    pub fn suggest(&mut self, freqs: &FrequencyVector) -> Suggestion {
        let prev = self.env.set_sampler(MixSampler::Fixed(freqs.clone()));
        let mut traj = rollout(&mut self.agent, &mut self.env, self.cfg.tmax);
        // The rollout leaves the initial state's reward unknown; fill it in
        // so "change nothing" can win.
        let p0 = self.env.initial_partitioning().clone();
        let r0 = self.env.reward_of(&p0, freqs);
        traj.rewards[0] = r0;
        let i = traj.best_index();
        let suggestion = match (traj.states.get(i), traj.rewards.get(i)) {
            (Some(s), Some(&r)) => Suggestion {
                partitioning: s.partitioning.clone(),
                reward: r,
                step: i,
            },
            // A rollout always holds at least the initial state; if it ever
            // did not, suggest "change nothing" rather than panic
            // mid-inference.
            _ => Suggestion {
                partitioning: p0,
                reward: r0,
                step: 0,
            },
        };
        self.env.set_sampler(prev);
        suggestion
    }

    /// Batched inference: greedy rollouts for many frequency mixes,
    /// advanced in lockstep with every rollout's candidate actions at each
    /// step coalesced into one batched Q-network forward. Bit-identical to
    /// calling [`Self::suggest`] once per mix: each output row of a batched
    /// matmul depends only on its own input row, the [`greedy_argmax`]
    /// tie-break is the same one [`DqnAgent::select_action`] uses, and the
    /// greedy rollout draws no RNG — so the trajectories, rewards and
    /// returned suggestions match the sequential path bit-for-bit. The
    /// committee uses this to amortize network cost across each expert's
    /// request group.
    pub fn suggest_coalesced(&mut self, freqs: &[&FrequencyVector]) -> Vec<Suggestion> {
        if freqs.is_empty() {
            return Vec::new();
        }
        let dim = self.env.input_dim();
        // Ambient pool, resolved once for the whole batch of rollouts.
        let pool = Pool::current();
        let s0 = self.env.initial_partitioning().clone();
        // `reset` under a `Fixed` sampler is exactly this construction
        // (no RNG is drawn), so each lockstep rollout starts from the same
        // state sequential `suggest` would.
        let mut trajs: Vec<Trajectory<EnvState>> = freqs
            .iter()
            .map(|f| Trajectory {
                states: vec![EnvState {
                    partitioning: s0.clone(),
                    freqs: (*f).clone(),
                }],
                rewards: vec![f64::NEG_INFINITY],
            })
            .collect();
        let mut inputs = Matrix::zeros(0, 0);
        let mut qs: Vec<f32> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(trajs.len());
        for _ in 0..self.cfg.tmax {
            // Coalesce every rollout's candidate actions for this step
            // into one encode matrix and a single batched forward.
            ranges.clear();
            let mut per_traj_actions = Vec::with_capacity(trajs.len());
            let mut total = 0usize;
            for traj in &trajs {
                let acts = match traj.states.last() {
                    Some(cur) => self.env.actions(cur),
                    None => Vec::new(),
                };
                ranges.push((total, total + acts.len()));
                total += acts.len();
                per_traj_actions.push(acts);
            }
            inputs.resize_zeroed(total.max(1), dim);
            let mut row = 0usize;
            for (traj, acts) in trajs.iter().zip(&per_traj_actions) {
                let Some(cur) = traj.states.last() else {
                    continue;
                };
                let span = &mut inputs.data_mut()[row * dim..(row + acts.len()) * dim];
                self.env.encode_batch(cur, acts, span);
                row += acts.len();
            }
            if total > 0 {
                self.agent.q_forward_batch(pool, &inputs, &mut qs);
            } else {
                qs.clear();
            }
            for ((traj, acts), &(lo, hi)) in trajs.iter_mut().zip(&per_traj_actions).zip(&ranges) {
                let Some(cur) = traj.states.last().cloned() else {
                    continue;
                };
                // Same greedy tie-break as `DqnAgent::select_action`.
                let Some(action) = greedy_argmax(&qs[lo..hi], acts) else {
                    continue;
                };
                let (next, reward) = self.env.step(&cur, &action);
                traj.states.push(next);
                traj.rewards.push(reward);
            }
        }
        // Same epilogue as `suggest`: score the initial state so "change
        // nothing" can win, then take the best state of each rollout.
        freqs
            .iter()
            .zip(trajs.iter_mut())
            .map(|(f, traj)| {
                let r0 = self.env.reward_of(&s0, f);
                if let Some(first) = traj.rewards.first_mut() {
                    *first = r0;
                }
                let i = traj.best_index();
                match (traj.states.get(i), traj.rewards.get(i)) {
                    (Some(s), Some(&r)) => Suggestion {
                        partitioning: s.partitioning.clone(),
                        reward: r,
                        step: i,
                    },
                    _ => Suggestion {
                        partitioning: s0.clone(),
                        reward: r0,
                        step: 0,
                    },
                }
            })
            .collect()
    }

    /// Reward of an arbitrary partitioning (backend-dependent: cost model
    /// offline, scaled measured runtimes online), in the agent's
    /// normalized units.
    pub fn reward_of(&mut self, p: &Partitioning, freqs: &FrequencyVector) -> f64 {
        self.env.reward_of(p, freqs)
    }

    /// Cost of a partitioning in raw backend units (seconds) — for
    /// comparisons against real quantities such as repartitioning time.
    pub fn cost_of(&mut self, p: &Partitioning, freqs: &FrequencyVector) -> f64 {
        self.env.cost_of(p, freqs)
    }

    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    pub fn epsilon(&self) -> f64 {
        self.agent.epsilon()
    }

    pub fn set_epsilon(&mut self, eps: f64) {
        self.agent.set_epsilon(eps);
    }

    pub fn agent(&self) -> &DqnAgent<AdvisorEnv> {
        &self.agent
    }

    /// Split borrows for callers driving custom rollouts (ablations).
    pub fn agent_env_mut(&mut self) -> (&mut DqnAgent<AdvisorEnv>, &mut AdvisorEnv) {
        (&mut self.agent, &mut self.env)
    }

    /// The online-training ledger, when the advisor runs against a cluster
    /// backend (used by the Table 2 experiment).
    pub fn online_accounting(&self) -> Option<crate::CostAccounting> {
        match self.env.backend() {
            RewardBackend::Cluster(b) => Some(b.accounting),
            RewardBackend::CostModel { .. } => None,
        }
    }

    /// Fault-layer counters of the online backend (its own retries,
    /// fallbacks and invalidations merged with the cluster's execution-side
    /// view); `None` for offline advisors.
    pub fn online_fault_accounting(&self) -> Option<lpa_cluster::FaultAccounting> {
        match self.env.backend() {
            RewardBackend::Cluster(b) => Some(b.fault_accounting()),
            RewardBackend::CostModel { .. } => None,
        }
    }

    /// Snapshot the trained policy for persistence (the environment —
    /// schema, workload, reward backend — is reconstructed by the caller
    /// at load time; only the learned part is stored).
    pub fn snapshot(&self) -> lpa_rl::AgentSnapshot {
        self.agent.snapshot()
    }

    /// A stable 64-bit fingerprint of the learned weights (Q and target
    /// networks, FNV-1a over raw `f32` bits). Equal fingerprints mean the
    /// advisor is bitwise the same trained artifact — the fleet's
    /// isolation tests compare these to prove chaos in one tenant never
    /// perturbs another tenant's training.
    pub fn weight_fingerprint(&self) -> u64 {
        let q = lpa_nn::reference::mlp_fingerprint(self.agent.q_network());
        let t = lpa_nn::reference::mlp_fingerprint(self.agent.target_network());
        q ^ t.rotate_left(32)
    }

    /// Rebuild an advisor from a persisted policy plus a freshly
    /// constructed environment. Panics if the environment's input
    /// dimension does not match the snapshot's network.
    pub fn from_snapshot(env: AdvisorEnv, snapshot: lpa_rl::AgentSnapshot) -> Self {
        assert_eq!(
            env.input_dim(),
            snapshot.q.input_dim(),
            "environment/network dimension mismatch"
        );
        let cfg = snapshot.cfg.clone();
        let agent = DqnAgent::restore(snapshot);
        Self { env, agent, cfg }
    }

    /// Rebuild an advisor from a fully reconstructed environment and agent —
    /// the checkpoint restore path, where (unlike [`Self::from_snapshot`])
    /// the agent carries its optimizer moments, replay buffer and RNG
    /// stream, so training can continue bit-identically.
    pub fn from_parts(env: AdvisorEnv, agent: DqnAgent<AdvisorEnv>) -> Self {
        let cfg = agent.config().clone();
        Self { env, agent, cfg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_costmodel::CostParams;
    use lpa_partition::TableState;

    /// End-to-end offline training on the microbenchmark: the agent must
    /// discover that `a` and `c` have to be co-partitioned.
    #[test]
    fn offline_agent_learns_microbench_copartitioning() {
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let sampler = MixSampler::uniform(&workload);
        let cfg = DqnConfig {
            episodes: 80,
            tmax: 8,
            batch_size: 16,
            hidden: vec![48, 24],
            epsilon_decay: 0.95,
            learning_rate: 2e-3,
            tau: 0.02,
            ..DqnConfig::paper()
        }
        .with_seed(3);
        let mut advisor = Advisor::train_offline(
            schema.clone(),
            workload.clone(),
            NetworkCostModel::new(CostParams::standard()),
            sampler,
            cfg,
            true,
        );
        let freqs = FrequencyVector::uniform(workload.slots());
        let suggestion = advisor.suggest(&freqs);
        let a = schema.table_by_name("a").unwrap();
        let a_c = schema.attr_ref("a", "a_c_key").unwrap();
        let c = schema.table_by_name("c").unwrap();
        let c_pk = schema.attr_ref("c", "c_key").unwrap();
        let p = &suggestion.partitioning;
        let a_on_c = p.table_state(a) == TableState::PartitionedBy(a_c.attr)
            && p.table_state(c) == TableState::PartitionedBy(c_pk.attr);
        // The suggested partitioning must at least beat the initial one.
        let r0 = advisor.reward_of(&Partitioning::initial(&schema), &freqs);
        assert!(
            suggestion.reward >= r0,
            "suggestion {} must beat s0 {}",
            suggestion.reward,
            r0
        );
        // And in the common case it finds the co-partitioning exactly.
        assert!(
            a_on_c || suggestion.reward > r0 * 0.7,
            "expected a/c co-partitioning or a clear improvement; got {}",
            p.describe(&schema)
        );
    }

    /// The tentpole equivalence: coalesced lockstep rollouts must be
    /// bit-identical to one sequential `suggest` per mix — same
    /// partitionings, same reward bits, same best-step indices.
    #[test]
    fn coalesced_suggestions_match_sequential_bitwise() {
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let sampler = MixSampler::uniform(&workload);
        let cfg = DqnConfig {
            episodes: 30,
            tmax: 6,
            batch_size: 8,
            hidden: vec![32],
            ..DqnConfig::paper()
        }
        .with_seed(17);
        let mut advisor = Advisor::train_offline(
            schema,
            workload.clone(),
            NetworkCostModel::new(CostParams::standard()),
            sampler,
            cfg,
            true,
        );
        let m = workload.slots();
        let mixes: Vec<FrequencyVector> = (0..workload.queries().len())
            .map(|i| FrequencyVector::extreme(m, lpa_workload::QueryId(i), 0.1, 1.0))
            .chain(std::iter::once(FrequencyVector::uniform(m)))
            .collect();
        let sequential: Vec<Suggestion> = mixes.iter().map(|f| advisor.suggest(f)).collect();
        let refs: Vec<&FrequencyVector> = mixes.iter().collect();
        let coalesced = advisor.suggest_coalesced(&refs);
        assert_eq!(coalesced.len(), sequential.len());
        for (c, s) in coalesced.iter().zip(&sequential) {
            assert_eq!(c.partitioning, s.partitioning);
            assert_eq!(c.reward.to_bits(), s.reward.to_bits());
            assert_eq!(c.step, s.step);
        }
        // Empty batch is a no-op, not a panic.
        assert!(advisor.suggest_coalesced(&[]).is_empty());
    }

    #[test]
    fn suggestion_step_zero_when_s0_is_best() {
        // With an untrained agent the rollout may wander, but if we ask for
        // the reward of s0 it must be included in the comparison.
        let schema = lpa_schema::microbench::schema(0.01).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let sampler = MixSampler::uniform(&workload);
        let env = AdvisorEnv::new(
            schema,
            workload.clone(),
            RewardBackend::cost_model(NetworkCostModel::new(CostParams::standard())),
            sampler,
            true,
            7,
        );
        let mut advisor = Advisor::untrained(env, DqnConfig::quick_test());
        let s = advisor.suggest(&FrequencyVector::uniform(workload.slots()));
        assert!(s.reward.is_finite());
        assert!(s.step <= DqnConfig::quick_test().tmax);
    }
}
