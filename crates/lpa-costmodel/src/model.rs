//! Cost estimation `cm(P, q)`: join-order enumeration plus per-join
//! distribution-strategy choice.

use crate::imbalance::partition_imbalance;
use crate::params::CostParams;
use crate::plan::{JoinStrategy, PlanStep, QueryPlan};
use lpa_partition::{Partitioning, TableState};
use lpa_schema::{AttrRef, Schema, TableId};
use lpa_workload::{FrequencyVector, JoinPred, Query, Workload};

/// How join orders are enumerated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinEnumeration {
    /// Try each join as the seed, then greedily extend with the cheapest
    /// adjacent join; keep the best plan. Quadratic in the join count.
    Greedy,
    /// Full DFS over join orders (exponential; only sensible for the small
    /// join graphs of OLAP queries). Used by the `ablation_join_enum`
    /// bench to validate that greedy is close to optimal.
    Exhaustive,
}

/// How one side of a join is distributed across the cluster.
#[derive(Clone, Debug)]
enum Dist {
    /// Full copy on every node.
    Replicated,
    /// Hash-distributed; the values of any attribute in the equivalence
    /// class determine the node.
    Hash(Vec<AttrRef>),
}

impl Dist {
    fn hash_attrs(&self) -> &[AttrRef] {
        match self {
            Dist::Hash(a) => a,
            Dist::Replicated => &[],
        }
    }
}

/// One side of a join (base table or running intermediate).
#[derive(Clone, Debug)]
struct Side {
    tables: u64,
    rows: f64,
    bytes: f64,
    dist: Dist,
}

/// The paper's network-centric cost model.
#[derive(Clone, Debug)]
pub struct NetworkCostModel {
    params: CostParams,
    enumeration: JoinEnumeration,
}

impl NetworkCostModel {
    pub fn new(params: CostParams) -> Self {
        Self {
            params,
            enumeration: JoinEnumeration::Greedy,
        }
    }

    /// Switch the join-order enumeration strategy (ablation support).
    pub fn with_enumeration(mut self, e: JoinEnumeration) -> Self {
        self.enumeration = e;
        self
    }

    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Estimated runtime in seconds of `query` under `partitioning`.
    pub fn query_cost(&self, schema: &Schema, query: &Query, partitioning: &Partitioning) -> f64 {
        self.plan(schema, query, partitioning).total_seconds
    }

    /// Frequency-weighted workload cost `Σ_j f_j · cm(P, q_j)`.
    pub fn workload_cost(
        &self,
        schema: &Schema,
        workload: &Workload,
        freqs: &FrequencyVector,
        partitioning: &Partitioning,
    ) -> f64 {
        workload
            .queries()
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let f = freqs.as_slice().get(i).copied().unwrap_or(0.0);
                if f == 0.0 {
                    0.0
                } else {
                    f * self.query_cost(schema, q, partitioning)
                }
            })
            .sum()
    }

    /// The DRL reward: negative workload cost (Section 3.2, "Rewards").
    pub fn reward(
        &self,
        schema: &Schema,
        workload: &Workload,
        freqs: &FrequencyVector,
        partitioning: &Partitioning,
    ) -> f64 {
        -self.workload_cost(schema, workload, freqs, partitioning)
    }

    /// Best plan found for the query under the partitioning.
    pub fn plan(&self, schema: &Schema, query: &Query, partitioning: &Partitioning) -> QueryPlan {
        let scan_seconds = self.scan_cost(schema, query, partitioning);
        if query.joins.is_empty() {
            // Single-table scan + aggregation.
            let t = query.tables[0];
            let rows = query.scanned_rows(schema, t);
            let share = self.table_share(schema, partitioning, t);
            let cpu = rows * self.params.cpu_tuple_cost * query.cpu_factor * share;
            return QueryPlan {
                start_table: None,
                scan_seconds,
                steps: Vec::new(),
                total_seconds: scan_seconds + cpu,
            };
        }

        let (start_table, best) = match self.enumeration {
            JoinEnumeration::Greedy => self.best_greedy(schema, query, partitioning),
            JoinEnumeration::Exhaustive => self.best_exhaustive(schema, query, partitioning),
        };
        let join_total: f64 = best.iter().map(|s| s.net_seconds + s.cpu_seconds).sum();
        QueryPlan {
            start_table,
            scan_seconds,
            total_seconds: scan_seconds + join_total,
            steps: best,
        }
    }

    /// Wall-clock scan time across all base tables (scans of different
    /// tables are charged sequentially, mirroring a pipeline-per-join
    /// executor).
    fn scan_cost(&self, schema: &Schema, query: &Query, p: &Partitioning) -> f64 {
        query
            .tables
            .iter()
            .map(|&t| {
                let bytes = schema.table(t).bytes() as f64;
                bytes * self.table_share(schema, p, t) / self.params.scan_bandwidth
            })
            .sum()
    }

    /// Fraction of a table's data the busiest node processes.
    fn table_share(&self, schema: &Schema, p: &Partitioning, t: TableId) -> f64 {
        match p.table_state(t) {
            // Every node holds (and scans) the full copy.
            TableState::Replicated => 1.0,
            TableState::PartitionedBy(a) => {
                partition_imbalance(schema, AttrRef::new(t, a), self.params.nodes)
            }
        }
    }

    fn base_side(&self, schema: &Schema, query: &Query, p: &Partitioning, t: TableId) -> Side {
        let rows = query.scanned_rows(schema, t);
        let bytes = rows * schema.table(t).row_bytes as f64;
        let dist = match p.table_state(t) {
            TableState::Replicated => Dist::Replicated,
            TableState::PartitionedBy(a) => Dist::Hash(vec![AttrRef::new(t, a)]),
        };
        Side {
            tables: 1u64 << t.0,
            rows,
            bytes,
            dist,
        }
    }

    /// Greedy enumeration: each join seeds one candidate plan.
    fn best_greedy(
        &self,
        schema: &Schema,
        query: &Query,
        p: &Partitioning,
    ) -> (Option<TableId>, Vec<PlanStep>) {
        let mut best: Option<(f64, TableId, Vec<PlanStep>)> = None;
        for seed in 0..query.joins.len() {
            if let Some((cost, start, steps)) = self.greedy_from(schema, query, p, seed) {
                if best.as_ref().map(|(c, _, _)| cost < *c).unwrap_or(true) {
                    best = Some((cost, start, steps));
                }
            }
        }
        match best {
            Some((_, start, steps)) => (Some(start), steps),
            None => (None, Vec::new()),
        }
    }

    fn greedy_from(
        &self,
        schema: &Schema,
        query: &Query,
        p: &Partitioning,
        seed: usize,
    ) -> Option<(f64, TableId, Vec<PlanStep>)> {
        let seed_join = query.joins.get(seed)?;
        let (ta, tb) = seed_join.tables();
        let left = self.base_side(schema, query, p, ta);
        let right = self.base_side(schema, query, p, tb);
        let (step, inter) = self.join_sides(schema, query, &left, &right, seed_join, seed, tb);
        let mut steps = vec![step];
        let mut inter = inter;
        let mut used = vec![false; query.joins.len()];
        if let Some(slot) = used.get_mut(seed) {
            *slot = true;
        }
        let mut total: f64 = steps[0].net_seconds + steps[0].cpu_seconds;

        loop {
            // Pick the cheapest usable join: exactly one side new.
            let mut choice: Option<(usize, TableId, PlanStep, Side, f64)> = None;
            let mut done = true;
            for (ji, join) in query.joins.iter().enumerate() {
                if used[ji] {
                    continue;
                }
                let (ta, tb) = join.tables();
                let a_in = inter.tables & (1 << ta.0) != 0;
                let b_in = inter.tables & (1 << tb.0) != 0;
                if a_in && b_in {
                    // Cycle closure: a residual predicate, no data movement.
                    used[ji] = true;
                    continue;
                }
                done = false;
                let new_table = if a_in {
                    tb
                } else if b_in {
                    ta
                } else {
                    continue;
                };
                let right = self.base_side(schema, query, p, new_table);
                let (step, next) =
                    self.join_sides(schema, query, &inter, &right, join, ji, new_table);
                let cost = step.net_seconds + step.cpu_seconds;
                if choice
                    .as_ref()
                    .map(|(_, _, _, _, c)| cost < *c)
                    .unwrap_or(true)
                {
                    choice = Some((ji, new_table, step, next, cost));
                }
            }
            match choice {
                Some((ji, _t, step, next, cost)) => {
                    used[ji] = true;
                    total += cost;
                    steps.push(step);
                    inter = next;
                }
                None => {
                    if done || used.iter().all(|u| *u) {
                        break;
                    }
                    // Disconnected remainder relative to the seed — the
                    // query validator guarantees connectivity, so another
                    // seed will cover this order; give up on this one.
                    return None;
                }
            }
        }
        Some((total, ta, steps))
    }

    /// Exhaustive DFS over join orders.
    fn best_exhaustive(
        &self,
        schema: &Schema,
        query: &Query,
        p: &Partitioning,
    ) -> (Option<TableId>, Vec<PlanStep>) {
        let mut best: Option<(f64, TableId, Vec<PlanStep>)> = None;
        for seed in 0..query.joins.len() {
            let (ta, tb) = query.joins[seed].tables();
            let left = self.base_side(schema, query, p, ta);
            let right = self.base_side(schema, query, p, tb);
            let (step, inter) =
                self.join_sides(schema, query, &left, &right, &query.joins[seed], seed, tb);
            let mut used = vec![false; query.joins.len()];
            used[seed] = true;
            let cost = step.net_seconds + step.cpu_seconds;
            self.dfs(
                schema,
                query,
                p,
                inter,
                &mut used,
                &mut vec![step],
                cost,
                ta,
                &mut best,
            );
        }
        match best {
            Some((_, start, steps)) => (Some(start), steps),
            None => (None, Vec::new()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        schema: &Schema,
        query: &Query,
        p: &Partitioning,
        inter: Side,
        used: &mut Vec<bool>,
        steps: &mut Vec<PlanStep>,
        cost: f64,
        start: TableId,
        best: &mut Option<(f64, TableId, Vec<PlanStep>)>,
    ) {
        if let Some((c, _, _)) = best {
            if cost >= *c {
                return; // prune
            }
        }
        let mut extended = false;
        for ji in 0..query.joins.len() {
            if used[ji] {
                continue;
            }
            let (ta, tb) = query.joins[ji].tables();
            let a_in = inter.tables & (1 << ta.0) != 0;
            let b_in = inter.tables & (1 << tb.0) != 0;
            if a_in && b_in {
                used[ji] = true;
                self.dfs(
                    schema,
                    query,
                    p,
                    inter.clone(),
                    used,
                    steps,
                    cost,
                    start,
                    best,
                );
                used[ji] = false;
                extended = true;
                continue;
            }
            let new_table = if a_in {
                tb
            } else if b_in {
                ta
            } else {
                continue;
            };
            extended = true;
            let right = self.base_side(schema, query, p, new_table);
            let (step, next) = self.join_sides(
                schema,
                query,
                &inter,
                &right,
                &query.joins[ji],
                ji,
                new_table,
            );
            let step_cost = step.net_seconds + step.cpu_seconds;
            used[ji] = true;
            steps.push(step);
            self.dfs(
                schema,
                query,
                p,
                next,
                used,
                steps,
                cost + step_cost,
                start,
                best,
            );
            steps.pop();
            used[ji] = false;
        }
        if !extended
            && used.iter().all(|u| *u)
            && best.as_ref().map(|(c, _, _)| cost < *c).unwrap_or(true)
        {
            *best = Some((cost, start, steps.clone()));
        }
    }

    /// Join `left` (intermediate or base) with base-table side `right`,
    /// choosing the cheapest distribution strategy.
    #[allow(clippy::too_many_arguments)] // private planner helper; all args are hot-path plan state
    fn join_sides(
        &self,
        schema: &Schema,
        query: &Query,
        left: &Side,
        right: &Side,
        join: &JoinPred,
        join_index: usize,
        right_table: TableId,
    ) -> (PlanStep, Side) {
        let n = self.params.nodes as f64;
        let agg_bw = self.params.net_bandwidth * n;

        // Orient each pair as (left attr, right attr).
        let oriented: Vec<(AttrRef, AttrRef)> = join
            .pairs
            .iter()
            .map(|(a, b)| {
                if b.table == right_table {
                    (*a, *b)
                } else {
                    (*b, *a)
                }
            })
            .collect();
        let primary = oriented[0];

        // Output cardinality from the primary pair.
        let d_left = (schema.attr_distinct(primary.0) as f64)
            .min(left.rows)
            .max(1.0);
        let d_right = (schema.attr_distinct(primary.1) as f64
            * query.table_selectivity(right_table))
        .max(1.0);
        let out_rows = (left.rows * right.rows / d_left.max(d_right)).max(0.0);
        let out_bytes_per_row = if left.rows > 0.0 && right.rows > 0.0 {
            left.bytes / left.rows.max(1.0) + right.bytes / right.rows.max(1.0)
        } else {
            1.0
        };

        // Candidate strategies as (strategy, net_bytes, shipped rows,
        // result dist).
        let mut candidates: Vec<(JoinStrategy, f64, f64, Dist)> = Vec::new();

        let left_hash_match = oriented
            .iter()
            .find(|(l, _)| left.dist.hash_attrs().contains(l));
        let right_hash_match = oriented
            .iter()
            .find(|(_, r)| matches!(&right.dist, Dist::Hash(attrs) if attrs.contains(r)));

        match (&left.dist, &right.dist) {
            (_, Dist::Replicated) => {
                candidates.push((JoinStrategy::ReplicatedSide, 0.0, 0.0, left.dist.clone()));
            }
            (Dist::Replicated, Dist::Hash(rattrs)) => {
                let mut attrs = rattrs.clone();
                // The join pair extends the equivalence class.
                if let Some((l, _)) = oriented.iter().find(|(_, r)| rattrs.contains(r)) {
                    if !attrs.contains(l) {
                        attrs.push(*l);
                    }
                }
                candidates.push((JoinStrategy::ReplicatedSide, 0.0, 0.0, Dist::Hash(attrs)));
            }
            (Dist::Hash(lattrs), Dist::Hash(_)) => {
                // Co-located if some pair is the partitioning of both sides.
                let co = oriented.iter().find(|(l, r)| {
                    lattrs.contains(l) && matches!(&right.dist, Dist::Hash(ra) if ra.contains(r))
                });
                if let Some((_, r)) = co {
                    let mut attrs = lattrs.clone();
                    if !attrs.contains(r) {
                        attrs.push(*r);
                    }
                    candidates.push((JoinStrategy::CoLocated, 0.0, 0.0, Dist::Hash(attrs)));
                } else {
                    // Broadcast the smaller side.
                    candidates.push((
                        JoinStrategy::Broadcast { table_side: true },
                        right.bytes * (n - 1.0),
                        right.rows * (n - 1.0),
                        left.dist.clone(),
                    ));
                    candidates.push((
                        JoinStrategy::Broadcast { table_side: false },
                        left.bytes * (n - 1.0),
                        left.rows * (n - 1.0),
                        right.dist.clone(),
                    ));
                    // Directed repartition towards an already-usable side.
                    if let Some((l, _)) = right_hash_match {
                        let mut attrs = right.dist.hash_attrs().to_vec();
                        if !attrs.contains(l) {
                            attrs.push(*l);
                        }
                        candidates.push((
                            JoinStrategy::DirectedRepartition { table_side: false },
                            left.bytes * (n - 1.0) / n,
                            left.rows * (n - 1.0) / n,
                            Dist::Hash(attrs),
                        ));
                    }
                    if let Some((_, r)) = left_hash_match {
                        let mut attrs = lattrs.clone();
                        if !attrs.contains(r) {
                            attrs.push(*r);
                        }
                        candidates.push((
                            JoinStrategy::DirectedRepartition { table_side: true },
                            right.bytes * (n - 1.0) / n,
                            right.rows * (n - 1.0) / n,
                            Dist::Hash(attrs),
                        ));
                    }
                    // Symmetric repartition on the primary pair.
                    candidates.push((
                        JoinStrategy::SymmetricRepartition,
                        (left.bytes + right.bytes) * (n - 1.0) / n,
                        (left.rows + right.rows) * (n - 1.0) / n,
                        Dist::Hash(vec![primary.0, primary.1]),
                    ));
                }
            }
        }

        // Rank strategies by their full network time: bandwidth + per-tuple
        // shipping + exchange setup.
        let net_time = |bytes: f64, rows: f64| {
            if bytes == 0.0 && rows == 0.0 {
                0.0
            } else {
                bytes / agg_bw + rows * self.params.ship_tuple_cost + self.params.shuffle_overhead
            }
        };
        // The candidate list always contains at least the broadcast and
        // symmetric-repartition strategies; a free no-op join is the
        // graceful floor if it is ever empty.
        let (strategy, net_bytes, net_rows, dist) = candidates
            .into_iter()
            .min_by(|a, b| net_time(a.1, a.2).total_cmp(&net_time(b.1, b.2)))
            .unwrap_or((JoinStrategy::CoLocated, 0.0, 0.0, Dist::Replicated));

        // Per-node work share of the join output's distribution.
        let share = match &dist {
            Dist::Replicated => 1.0,
            Dist::Hash(attrs) => attrs
                .iter()
                .map(|a| partition_imbalance(schema, *a, self.params.nodes))
                .fold(1.0_f64, f64::min),
        };
        let net_seconds = net_time(net_bytes, net_rows);
        let cpu_seconds = (left.rows + right.rows + out_rows)
            * self.params.cpu_tuple_cost
            * query.cpu_factor
            * share;

        let step = PlanStep {
            join_index,
            table: right_table,
            strategy,
            out_rows,
            net_seconds,
            cpu_seconds,
        };
        let next = Side {
            tables: left.tables | right.tables,
            rows: out_rows,
            bytes: out_rows * out_bytes_per_row,
            dist,
        };
        (step, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_partition::Action;
    use lpa_schema::EdgeId;

    fn ssb_setup() -> (Schema, Workload, NetworkCostModel) {
        let s = lpa_schema::ssb::schema(0.01).expect("schema builds");
        let w = lpa_workload::ssb::workload(&s).expect("workload builds");
        (s, w, NetworkCostModel::new(CostParams::standard()))
    }

    fn replicate_all_dims(schema: &Schema, p: &Partitioning) -> Partitioning {
        let mut out = p.clone();
        for ti in 1..schema.tables().len() {
            out = Action::Replicate { table: TableId(ti) }
                .apply(schema, &out)
                .unwrap();
        }
        out
    }

    #[test]
    fn co_partitioning_removes_network_cost() {
        let (s, w, m) = ssb_setup();
        let p0 = Partitioning::initial(&s);
        // Co-partition lineorder with customer via edge 0 and replicate the
        // other dimensions: flight-3 queries still shuffle for supplier/date.
        let co = Action::ActivateEdge(EdgeId(0)).apply(&s, &p0).unwrap();
        let q11 = &w.queries()[0]; // lineorder ⋈ date
        let cust_join = w.queries().iter().find(|q| q.name == "ssb_q3.1").unwrap();
        let plan_seed = m.plan(&s, q11, &p0);
        assert!(plan_seed.net_seconds() > 0.0, "PK partitioning shuffles");
        let plan_co = m.plan(&s, cust_join, &co);
        let plan_pk = m.plan(&s, cust_join, &p0);
        assert!(
            plan_co.total_seconds < plan_pk.total_seconds,
            "co-partitioning must help the customer join: {} vs {}",
            plan_co.total_seconds,
            plan_pk.total_seconds
        );
    }

    #[test]
    fn replicating_dimensions_makes_star_joins_local() {
        let (s, w, m) = ssb_setup();
        let p0 = Partitioning::initial(&s);
        let all_rep = replicate_all_dims(&s, &p0);
        for q in w.queries() {
            let plan = m.plan(&s, q, &all_rep);
            assert!(plan.fully_local(), "{} should be local", q.name);
            assert!(plan.net_seconds() == 0.0);
        }
    }

    #[test]
    fn broadcast_cheaper_than_symmetric_for_small_dim() {
        let (s, w, m) = ssb_setup();
        // lineorder by PK, date by PK: the date join should broadcast the
        // tiny date table rather than repartition lineorder.
        let p0 = Partitioning::initial(&s);
        let q = &w.queries()[0];
        let plan = m.plan(&s, q, &p0);
        let step = &plan.steps[0];
        assert!(
            matches!(
                step.strategy,
                JoinStrategy::Broadcast { .. } | JoinStrategy::DirectedRepartition { .. }
            ),
            "got {:?}",
            step.strategy
        );
    }

    #[test]
    fn workload_cost_weights_by_frequency() {
        let (s, w, m) = ssb_setup();
        let p = Partitioning::initial(&s);
        let uni = FrequencyVector::uniform(w.slots());
        let total = m.workload_cost(&s, &w, &uni, &p);
        let single: f64 = w.queries().iter().map(|q| m.query_cost(&s, q, &p)).sum();
        assert!((total - single).abs() < 1e-9);
        // Zeroing all but one query leaves exactly that query's cost.
        let mut counts = vec![0.0; w.queries().len()];
        counts[3] = 2.0;
        let f = FrequencyVector::from_counts(&counts, w.slots());
        let got = m.workload_cost(&s, &w, &f, &p);
        let want = m.query_cost(&s, &w.queries()[3], &p);
        assert!((got - want).abs() < 1e-9);
        assert!((m.reward(&s, &w, &f, &p) + want).abs() < 1e-9);
    }

    #[test]
    fn skewed_partition_key_costs_more() {
        let s = lpa_schema::tpcch::schema(0.003).expect("schema builds");
        let w = lpa_workload::tpcch::workload(&s).expect("workload builds");
        let m = NetworkCostModel::new(CostParams::standard());
        let order = s.table_by_name("order").unwrap();
        let customer = s.table_by_name("customer").unwrap();
        let p0 = Partitioning::initial(&s);
        let by_pk = p0.clone();
        // Partition order and customer by the skewed 10-value district.
        let o_d = s.attr_ref("order", "o_d_id").unwrap();
        let c_d = s.attr_ref("customer", "c_d_id").unwrap();
        let by_district = Action::Partition {
            table: order,
            attr: o_d.attr,
        }
        .apply(&s, &p0)
        .and_then(|p| {
            Action::Partition {
                table: customer,
                attr: c_d.attr,
            }
            .apply(&s, &p)
        })
        .unwrap();
        // Q1 (orderline scan) unaffected; Q13 (customer ⋈ order) is local
        // under district co-partitioning but suffers the straggler penalty.
        let q13 = w.queries().iter().find(|q| q.name == "ch_q13").unwrap();
        let plan_d = m.plan(&s, q13, &by_district);
        assert!(plan_d.fully_local(), "district co-partitioning is local");
        let plan_pk = m.plan(&s, q13, &by_pk);
        assert!(plan_pk.net_seconds() > 0.0);
        // The compound key is also local AND balanced — strictly better.
        let o_wd = s.attr_ref("order", "o_wd").unwrap();
        let c_wd = s.attr_ref("customer", "c_wd").unwrap();
        let by_wd = Action::Partition {
            table: order,
            attr: o_wd.attr,
        }
        .apply(&s, &p0)
        .and_then(|p| {
            Action::Partition {
                table: customer,
                attr: c_wd.attr,
            }
            .apply(&s, &p)
        })
        .unwrap();
        let plan_wd = m.plan(&s, q13, &by_wd);
        assert!(plan_wd.fully_local());
        assert!(
            plan_wd.total_seconds < plan_d.total_seconds,
            "compound key {} should beat skewed district {}",
            plan_wd.total_seconds,
            plan_d.total_seconds
        );
    }

    #[test]
    fn exp5_crossover_partition_vs_replicate_b() {
        // The Fig. 8 effect: on a fast network partitioning B wins (scan is
        // distributed); on a slow network replicating B wins (no shuffles).
        let s = lpa_schema::microbench::schema(0.2).expect("schema builds");
        let w = lpa_workload::microbench::workload(&s).expect("workload builds");
        let a = s.table_by_name("a").unwrap();
        let b = s.table_by_name("b").unwrap();
        let c = s.table_by_name("c").unwrap();
        let a_c = s.attr_ref("a", "a_c_key").unwrap();
        let base = Partitioning::initial(&s);
        // A co-partitioned with C in both variants.
        let with_ac = Action::Partition {
            table: a,
            attr: a_c.attr,
        }
        .apply(&s, &base)
        .unwrap();
        let _ = c;
        let b_part = with_ac.clone(); // B stays partitioned by its PK
        let b_repl = Action::Replicate { table: b }.apply(&s, &with_ac).unwrap();
        let freqs = FrequencyVector::uniform(w.slots());

        let fast = NetworkCostModel::new(CostParams::standard());
        let slow = NetworkCostModel::new(CostParams::slow_network());
        let fast_part = fast.workload_cost(&s, &w, &freqs, &b_part);
        let fast_repl = fast.workload_cost(&s, &w, &freqs, &b_repl);
        let slow_part = slow.workload_cost(&s, &w, &freqs, &b_part);
        let slow_repl = slow.workload_cost(&s, &w, &freqs, &b_repl);
        assert!(
            fast_part < fast_repl,
            "fast net: partition B ({fast_part}) should beat replicate ({fast_repl})"
        );
        assert!(
            slow_repl < slow_part,
            "slow net: replicate B ({slow_repl}) should beat partition ({slow_part})"
        );
    }

    #[test]
    fn exhaustive_never_worse_than_greedy() {
        let (s, w, m) = ssb_setup();
        let ex = NetworkCostModel::new(CostParams::standard())
            .with_enumeration(JoinEnumeration::Exhaustive);
        let p = Partitioning::initial(&s);
        for q in w.queries() {
            let g = m.query_cost(&s, q, &p);
            let e = ex.query_cost(&s, q, &p);
            assert!(e <= g + 1e-9, "{}: exhaustive {} > greedy {}", q.name, e, g);
        }
    }

    #[test]
    fn single_table_query_cost_scales_with_partitioning() {
        let s = lpa_schema::tpcch::schema(0.003).expect("schema builds");
        let w = lpa_workload::tpcch::workload(&s).expect("workload builds");
        let m = NetworkCostModel::new(CostParams::standard());
        let q1 = w.queries().iter().find(|q| q.name == "ch_q01").unwrap();
        let ol = s.table_by_name("orderline").unwrap();
        let p = Partitioning::initial(&s);
        let partitioned = m.query_cost(&s, q1, &p);
        let replicated = Action::Replicate { table: ol }
            .apply(&s, &p)
            .map(|p| m.query_cost(&s, q1, &p))
            .unwrap();
        assert!(
            replicated > partitioned * 2.0,
            "replicating the fact table should hurt scans: {replicated} vs {partitioned}"
        );
    }
}
