//! The paper's "simple yet generic network-centric cost model" (Sections 2
//! and 4.1), used to bootstrap the DRL agent offline and to simulate
//! partitionings at inference time.
//!
//! For a query and a partitioning it enumerates join orders, picks the
//! cheapest distribution strategy per join — co-located join, broadcast of
//! one side, directed repartitioning, or symmetric repartitioning — and
//! accumulates the network-transfer and computation costs. The model is
//! intentionally simple (that is the point of the paper's online phase),
//! but it does reflect shard-size *imbalance* of low-cardinality or skewed
//! partition keys, which the paper notes its cost model captured for the
//! TPC-CH compound-key case.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod imbalance;
pub mod model;
pub mod params;
pub mod plan;

pub use imbalance::partition_imbalance;
pub use model::NetworkCostModel;
pub use params::CostParams;
pub use plan::{JoinStrategy, PlanStep, QueryPlan};
