//! Shard-size imbalance of a hash-partitioning key.
//!
//! Partitioning a table by a low-cardinality or skewed attribute produces
//! unbalanced shards; the straggler node then dominates scan and join
//! times. The paper relies on this effect twice: Heuristic (b)'s
//! district-id partitioning backfires on System-X, and the compound
//! `(warehouse, district)` key mitigates the skew "which was reflected in
//! the simple network-centric cost model" (Section 7.2).

use lpa_schema::{AttrRef, Schema, Skew};

/// Estimated fraction of a table's rows landing on the most loaded node
/// when hash-partitioning by `attr` over `nodes` nodes.
///
/// Perfect balance gives `1/nodes`; the result is always in
/// `[1/nodes, 1.0]`. Two effects are modeled:
///
/// * **Low cardinality**: with `d` distinct values, at least
///   `ceil(d/nodes)/d` of the value mass lands on one node (hash buckets
///   are integral in values).
/// * **Zipf skew**: under `Skew::Zipf(theta)` the heaviest value carries
///   `1/(H_d(theta))` of the rows; the fullest node holds at least the
///   heaviest value's share.
pub fn partition_imbalance(schema: &Schema, attr: AttrRef, nodes: usize) -> f64 {
    assert!(nodes >= 1);
    let d = schema.attr_distinct(attr).max(1);
    let uniform_floor = 1.0 / nodes as f64;
    // Integral bucket effect for low-cardinality domains.
    let bucket_share = if d < 10_000 {
        let per_node = (d as f64 / nodes as f64).ceil();
        (per_node / d as f64).min(1.0)
    } else {
        uniform_floor
    };
    // Skew effect: the hottest value is indivisible.
    let hot_share = match schema.attribute(attr).skew {
        Skew::Uniform => 1.0 / d as f64,
        Skew::Zipf(theta) => {
            let h: f64 = (1..=d.min(100_000))
                .map(|k| 1.0 / (k as f64).powf(theta))
                .sum();
            1.0 / h
        }
    };
    bucket_share.max(hot_share).max(uniform_floor).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_cardinality_uniform_is_balanced() {
        let s = lpa_schema::ssb::schema(1.0).expect("schema builds");
        let pk = s.attr_ref("lineorder", "lo_orderkey").unwrap();
        let f = partition_imbalance(&s, pk, 4);
        assert!((f - 0.25).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn low_cardinality_is_imbalanced() {
        let s = lpa_schema::tpcch::schema(1.0).expect("schema builds");
        let d_id = s.attr_ref("customer", "c_d_id").unwrap(); // 10 values, Zipf
        let f = partition_imbalance(&s, d_id, 4);
        // ceil(10/4)/10 = 0.3 from buckets alone, more with skew.
        assert!(f >= 0.3, "got {f}");
        // The compound key (1000 values) is much better balanced.
        let wd = s.attr_ref("customer", "c_wd").unwrap();
        let g = partition_imbalance(&s, wd, 4);
        assert!(g < f, "compound {g} should beat district {f}");
    }

    #[test]
    fn bounded_by_one_and_uniform_floor() {
        let s = lpa_schema::tpcch::schema(1.0).expect("schema builds");
        for t in 0..s.tables().len() {
            let table = lpa_schema::TableId(t);
            for (a, _) in s.table(table).attributes.iter().enumerate() {
                let r = AttrRef::new(table, lpa_schema::AttrId(a));
                for nodes in [2, 4, 6, 8] {
                    let f = partition_imbalance(&s, r, nodes);
                    assert!(f <= 1.0 + 1e-12);
                    assert!(f >= 1.0 / nodes as f64 - 1e-12);
                }
            }
        }
    }

    #[test]
    fn more_nodes_never_increase_balance_beyond_domain() {
        let s = lpa_schema::tpcch::schema(1.0).expect("schema builds");
        let d_id = s.attr_ref("district", "d_id").unwrap();
        let f4 = partition_imbalance(&s, d_id, 4);
        let f100 = partition_imbalance(&s, d_id, 100);
        // With only 10 distinct values, 100 nodes can't beat 1/10 per node.
        assert!(f100 >= 0.1 - 1e-12);
        assert!(f4 >= f100);
    }
}
