//! Physical plan produced by the cost model — exposed for tests, ablation
//! benches and `EXPLAIN`-style debugging of advisor decisions.

use lpa_schema::TableId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How one join distributes its inputs (Section 4.1 lists: symmetric
/// repartitioning join, broadcast of a single table, and co-located join).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// Both inputs already partitioned on the join key — no transfer.
    CoLocated,
    /// One side is replicated everywhere — no transfer.
    ReplicatedSide,
    /// Ship the (smaller) named side to every node.
    Broadcast { table_side: bool },
    /// Re-hash one side onto the other's partitioning.
    DirectedRepartition { table_side: bool },
    /// Re-hash both sides on the join key.
    SymmetricRepartition,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CoLocated => write!(f, "co-located"),
            Self::ReplicatedSide => write!(f, "replicated side"),
            Self::Broadcast { table_side } => {
                write!(
                    f,
                    "broadcast {}",
                    if *table_side { "table" } else { "intermediate" }
                )
            }
            Self::DirectedRepartition { table_side } => write!(
                f,
                "repartition {}",
                if *table_side { "table" } else { "intermediate" }
            ),
            Self::SymmetricRepartition => write!(f, "symmetric repartition"),
        }
    }
}

/// One join step of a plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlanStep {
    /// Index into the query's join list of the predicate this step applies.
    pub join_index: usize,
    /// The base table joined into the running intermediate.
    pub table: TableId,
    pub strategy: JoinStrategy,
    /// Estimated output rows after this join.
    pub out_rows: f64,
    /// Network seconds charged for this join.
    pub net_seconds: f64,
    /// Compute seconds charged for this join.
    pub cpu_seconds: f64,
}

/// A full plan for one query under one partitioning.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The base table the pipeline starts from (left side of the first
    /// step); `None` for single-table queries.
    pub start_table: Option<TableId>,
    /// Scan seconds over all base tables.
    pub scan_seconds: f64,
    pub steps: Vec<PlanStep>,
    /// Total estimated seconds (scan + joins).
    pub total_seconds: f64,
}

impl QueryPlan {
    /// Network seconds across all steps.
    pub fn net_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.net_seconds).sum()
    }

    /// True if no join moved any data.
    pub fn fully_local(&self) -> bool {
        self.steps.iter().all(|s| {
            matches!(
                s.strategy,
                JoinStrategy::CoLocated | JoinStrategy::ReplicatedSide
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_display() {
        assert_eq!(JoinStrategy::CoLocated.to_string(), "co-located");
        assert_eq!(
            JoinStrategy::Broadcast { table_side: true }.to_string(),
            "broadcast table"
        );
    }

    #[test]
    fn fully_local_detection() {
        let mut p = QueryPlan::default();
        p.steps.push(PlanStep {
            join_index: 0,
            table: TableId(1),
            strategy: JoinStrategy::CoLocated,
            out_rows: 10.0,
            net_seconds: 0.0,
            cpu_seconds: 0.1,
        });
        assert!(p.fully_local());
        p.steps.push(PlanStep {
            join_index: 1,
            table: TableId(2),
            strategy: JoinStrategy::SymmetricRepartition,
            out_rows: 10.0,
            net_seconds: 0.5,
            cpu_seconds: 0.1,
        });
        assert!(!p.fully_local());
        assert!((p.net_seconds() - 0.5).abs() < 1e-12);
    }
}
