//! Hardware parameters of the cost model.

use serde::{Deserialize, Serialize};

/// Cluster characteristics the network-centric cost model charges against.
///
/// The defaults correspond to the paper's standard deployment: 4 nodes on a
/// 10 Gbps interconnect. Experiment 5 varies `net_bandwidth` (0.6 Gbps for
/// the slow network) and `scan_bandwidth`/`cpu_tuple_cost` (slower compute).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of database nodes (shards per partitioned table).
    pub nodes: usize,
    /// Per-link network bandwidth in bytes/second.
    pub net_bandwidth: f64,
    /// Per-node sequential scan bandwidth in bytes/second.
    pub scan_bandwidth: f64,
    /// Per-tuple join/aggregation CPU cost in seconds.
    pub cpu_tuple_cost: f64,
    /// Per-tuple cost of *shipping* a row between nodes (serialization,
    /// exchange operators). In real distributed engines this — not raw
    /// bandwidth — dominates shuffle cost, which is why co-located joins
    /// pay off so dramatically.
    pub ship_tuple_cost: f64,
    /// Fixed per-exchange-stage setup cost in seconds.
    pub shuffle_overhead: f64,
}

impl CostParams {
    /// 4 nodes, 10 Gbps network, memory-speed scans.
    ///
    /// The scan/network ratio matters for the Exp-5 crossover: with 2–5 %
    /// dimension selectivity, broadcasting the filtered dimension beats
    /// replicating it iff `selectivity < net_bandwidth / scan_bandwidth`,
    /// so memory-speed scans put the paper's 0.6 Gbps deployment on the
    /// "replicate" side and the 10 Gbps one on the "partition" side.
    pub fn standard() -> Self {
        Self {
            nodes: 4,
            net_bandwidth: 1.25e9,
            scan_bandwidth: 4.0e9,
            cpu_tuple_cost: 2.0e-8,
            ship_tuple_cost: 2.0e-7,
            shuffle_overhead: 5.0e-4,
        }
    }

    /// Same compute, 0.6 Gbps interconnect (Amazon-Redshift-basic-like,
    /// Section 7.6).
    pub fn slow_network() -> Self {
        Self {
            net_bandwidth: 0.075e9,
            ..Self::standard()
        }
    }

    /// Slower compute nodes (Fig. 8b): scan and CPU roughly 3x slower.
    pub fn slow_compute() -> Self {
        Self {
            scan_bandwidth: 0.7e9,
            cpu_tuple_cost: 6.0e-8,
            ..Self::standard()
        }
    }

    /// Slower compute nodes on the slow interconnect.
    pub fn slow_compute_slow_network() -> Self {
        Self {
            net_bandwidth: 0.075e9,
            ..Self::slow_compute()
        }
    }

    /// Override the node count.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 2, "a distributed cluster needs at least 2 nodes");
        self.nodes = nodes;
        self
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let std = CostParams::standard();
        let slow_net = CostParams::slow_network();
        let slow_cpu = CostParams::slow_compute();
        assert!(slow_net.net_bandwidth < std.net_bandwidth);
        assert_eq!(slow_net.scan_bandwidth, std.scan_bandwidth);
        assert!(slow_cpu.scan_bandwidth < std.scan_bandwidth);
        assert!(slow_cpu.cpu_tuple_cost > std.cpu_tuple_cost);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_rejected() {
        let _ = CostParams::standard().with_nodes(1);
    }
}
