//! Per-node hash-join execution over the generated data.
//!
//! The executor follows a plan's join order and exchange strategies, but
//! everything it *charges* comes from what actually happens to the rows:
//! build/probe/output counts per node, bytes received per node during
//! broadcasts and shuffles, and straggler effects (a step is as slow as its
//! most loaded node). Value skew and co-location therefore influence
//! runtimes through the data itself — this is what the online phase of the
//! advisor learns from and what the offline cost model only approximates.

use crate::datagen::Database;
use crate::engine::{splitmix64, EngineProfile};
use crate::faults::FaultState;
use crate::hardware::HardwareProfile;
use lpa_costmodel::{JoinStrategy, QueryPlan};
use lpa_par::Pool;
use lpa_partition::TableState;
use lpa_schema::{AttrRef, Schema, TableId};
use lpa_workload::Query;
use std::collections::HashMap;

/// Row count below which per-node work runs inline: thread spawning costs
/// more than the join itself for small tables. The threshold only selects
/// serial vs. parallel execution of the *same* per-node decomposition, so
/// results are bit-identical either way.
pub(crate) const PAR_MIN_ROWS: usize = 1 << 14;

/// The deterministic pool for `work` row-operations' worth of simulator
/// work (inline below [`PAR_MIN_ROWS`]).
pub(crate) fn par_pool(work: usize) -> Pool {
    if work >= PAR_MIN_ROWS {
        Pool::current()
    } else {
        Pool::with_threads(1)
    }
}

/// Per-table physical layout on the cluster.
#[derive(Clone, Debug)]
pub enum Layout {
    /// Full copy on every node.
    Replicated,
    /// `node[row]` assignment derived from the partition-key values.
    Hashed {
        attr: lpa_schema::AttrId,
        node: Vec<u8>,
    },
}

/// Compute the layout of one table under a deployment.
pub fn layout_table(
    db: &Database,
    engine: &EngineProfile,
    nodes: usize,
    table: TableId,
    state: TableState,
) -> Layout {
    match state {
        TableState::Replicated => Layout::Replicated,
        TableState::PartitionedBy(attr) => {
            let col = db.column(table, attr);
            let node = par_pool(col.len()).par_map_chunked(
                col,
                lpa_par::default_chunk_len(col.len()),
                |_, &v| engine.node_of(v, nodes) as u8,
            );
            Layout::Hashed { attr, node }
        }
    }
}

/// Result of executing one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecResult {
    /// Simulated wall-clock seconds.
    pub seconds: f64,
    /// Rows in the final join result (before aggregation).
    pub output_rows: u64,
    /// Total bytes that crossed the network.
    pub bytes_shuffled: f64,
}

/// Intermediate result: provenance rows (one base-row id per query table
/// slot) with a per-row node placement.
struct Inter {
    /// `slots[s][i]` = base-table row feeding output row `i` from query
    /// table slot `s` (`u32::MAX` when the slot is not yet joined).
    slots: Vec<Vec<u32>>,
    node: Vec<u8>,
    replicated: bool,
    bytes_per_row: f64,
}

impl Inter {
    fn len(&self) -> usize {
        // Absent slots stay empty; present slots share the same length.
        self.slots.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

/// The execution context for one query.
#[derive(Debug)]
pub struct Executor<'a> {
    pub schema: &'a Schema,
    pub db: &'a Database,
    pub engine: &'a EngineProfile,
    pub hw: &'a HardwareProfile,
    pub layouts: &'a [Layout],
    /// Active fault state. On a healthy cluster this is the nominal state
    /// (nothing down, all multipliers exactly 1.0), and every charge below
    /// is bit-identical to the fault-free arithmetic: `x * 1.0` is an exact
    /// identity for finite doubles, and the weighted maxima reduce to the
    /// unweighted ones.
    pub faults: &'a FaultState,
}

impl<'a> Executor<'a> {
    /// Execute `query` under the deployed `partitioning`, following `plan`.
    /// Returns the simulated runtime; if `budget` is given, execution is
    /// aborted once the accumulated time exceeds it and `None` is returned
    /// (the timeout optimization of Section 4.2).
    ///
    /// Routes to the columnar fast path ([`crate::columnar`]) unless
    /// [`crate::with_naive_executor`] forces this row-at-a-time reference.
    /// Allocates a fresh scratch; steady-state callers should hold an
    /// [`crate::ExecScratch`] and use [`Self::execute_with`].
    pub fn execute(
        &self,
        query: &Query,
        plan: &QueryPlan,
        budget: Option<f64>,
    ) -> Option<ExecResult> {
        let mut scratch = crate::ExecScratch::default();
        self.execute_with(query, plan, budget, &mut scratch)
    }

    /// [`Self::execute`] with a caller-provided reusable scratch.
    pub fn execute_with(
        &self,
        query: &Query,
        plan: &QueryPlan,
        budget: Option<f64>,
        scratch: &mut crate::ExecScratch,
    ) -> Option<ExecResult> {
        if crate::columnar::naive_executor_forced() {
            self.execute_naive(query, plan, budget)
        } else {
            self.execute_columnar(query, plan, budget, scratch)
        }
    }

    /// The row-at-a-time reference executor: allocating, per-node nested
    /// loops. Kept verbatim as the differential oracle for the columnar
    /// path — every charge below defines the contract the fast path must
    /// reproduce bit-for-bit.
    pub fn execute_naive(
        &self,
        query: &Query,
        plan: &QueryPlan,
        budget: Option<f64>,
    ) -> Option<ExecResult> {
        let n = self.hw.nodes;
        let mut seconds = self.engine.query_overhead;
        let mut bytes_shuffled = 0.0;

        // Charge scans of all participating tables (predicate evaluation
        // happens during the scan, so the full table is read).
        let scan_bw = if self.engine.disk_based {
            self.hw.disk_scan_bandwidth
        } else {
            self.hw.mem_scan_bandwidth
        };
        for &t in &query.tables {
            let bytes = self.schema.table(t).bytes() as f64;
            let max_share = self.max_shard_fraction(t);
            seconds += bytes * max_share / scan_bw;
        }
        if over(seconds, budget) {
            return None;
        }

        // Single-table query: scan + aggregate.
        if query.joins.is_empty() {
            let t = query.tables[0];
            let rows = self.filtered_rows(query, t).len() as f64;
            let share = self.max_shard_fraction(t);
            seconds += rows * share * self.hw.cpu_tuple_cost * query.cpu_factor;
            return Some(ExecResult {
                seconds,
                output_rows: rows as u64,
                bytes_shuffled,
            });
        }

        // A join query always has a planner-chosen start table; fall back
        // to the first scanned table rather than panicking mid-episode.
        let start = plan.start_table.unwrap_or(query.tables[0]);
        let mut inter = self.seed_inter(query, start);

        for step in &plan.steps {
            let Some(join) = query.joins.get(step.join_index) else {
                continue;
            };
            let right_table = step.table;
            // Cycle-closure steps never appear (the planner consumes them
            // silently), so each step introduces `right_table`.
            let (step_seconds, step_bytes, next) =
                self.join_step(query, &inter, right_table, join, step.strategy);
            seconds += step_seconds;
            bytes_shuffled += step_bytes;
            inter = next;
            if over(seconds, budget) {
                return None;
            }
        }

        // Final aggregation over the join result.
        let out_rows = inter.len() as f64;
        let agg_share = if inter.replicated {
            1.0
        } else {
            self.max_node_fraction(&inter.node, n)
        };
        seconds += out_rows * agg_share * self.hw.cpu_tuple_cost * query.cpu_factor;
        if over(seconds, budget) {
            return None;
        }
        Some(ExecResult {
            seconds,
            output_rows: inter.len() as u64,
            bytes_shuffled,
        })
    }

    /// Straggler multiplier of work every live node performs in full (e.g.
    /// scanning a replicated table): the step is as slow as the slowest
    /// node that is still up.
    pub(crate) fn replicated_slowdown(&self) -> f64 {
        self.faults
            .work_mult
            .iter()
            .zip(&self.faults.down)
            .filter(|(_, down)| !**down)
            .map(|(m, _)| *m)
            .fold(1.0, f64::max)
    }

    /// Fraction of a table's rows on its most loaded node, weighted by the
    /// per-node work multipliers (a straggler makes its shard "heavier").
    fn max_shard_fraction(&self, t: TableId) -> f64 {
        match &self.layouts[t.0] {
            Layout::Replicated => self.replicated_slowdown(),
            Layout::Hashed { node, .. } => {
                if node.is_empty() {
                    1.0 / self.hw.nodes as f64
                } else {
                    self.max_node_fraction(node, self.hw.nodes)
                }
            }
        }
    }

    fn max_node_fraction(&self, assignment: &[u8], nodes: usize) -> f64 {
        if assignment.is_empty() {
            return 1.0 / nodes as f64;
        }
        // Chunked partial histograms merged in chunk order. The merge is
        // integer addition, so the counts — and the fraction — are exact
        // regardless of chunking or thread count.
        let chunk = lpa_par::default_chunk_len(assignment.len());
        let n_chunks = assignment.len().div_ceil(chunk);
        let partials = par_pool(assignment.len()).par_index_map(n_chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(assignment.len());
            let mut counts = vec![0usize; nodes];
            for &a in &assignment[lo..hi] {
                counts[a as usize] += 1;
            }
            counts
        });
        let mut counts = vec![0usize; nodes];
        for p in partials {
            for (total, part) in counts.iter_mut().zip(p) {
                *total += part;
            }
        }
        // Weighted straggler maximum: counts are exact in f64 (≤ 2^53) and
        // int→float conversion is monotonic, so with all multipliers at 1.0
        // this equals the plain integer max — bit-for-bit.
        let max_weighted = counts
            .iter()
            .enumerate()
            .map(|(node, &c)| c as f64 * self.node_work_mult(node))
            .fold(0.0, f64::max);
        max_weighted / assignment.len() as f64
    }

    /// Work multiplier of a node (1.0 when the fault state does not cover
    /// it, e.g. hand-built executors in tests).
    pub(crate) fn node_work_mult(&self, node: usize) -> f64 {
        self.faults.work_mult.get(node).copied().unwrap_or(1.0)
    }

    /// Network receive-time multiplier of a node.
    pub(crate) fn node_net_mult(&self, node: usize) -> f64 {
        self.faults.net_mult.get(node).copied().unwrap_or(1.0)
    }

    /// Deterministic predicate filter: row ids of `t` surviving the query's
    /// local predicates.
    fn filtered_rows(&self, query: &Query, t: TableId) -> Vec<u32> {
        let sel = query.table_selectivity(t);
        let rows = self.db.table(t).rows;
        if sel >= 1.0 {
            return (0..rows as u32).collect();
        }
        let threshold = (sel * u64::MAX as f64) as u64;
        let tag = splitmix64(hash_str(&query.name) ^ ((t.0 as u64) << 17));
        (0..rows as u32)
            .filter(|&r| splitmix64(tag ^ r as u64) <= threshold)
            .collect()
    }

    fn seed_inter(&self, query: &Query, start: TableId) -> Inter {
        let slot = slot_of(query, start);
        let rows = self.filtered_rows(query, start);
        let mut slots = vec![Vec::new(); query.tables.len()];
        let (node, replicated) = match &self.layouts[start.0] {
            Layout::Replicated => (vec![0u8; rows.len()], true),
            Layout::Hashed { node, .. } => {
                (rows.iter().map(|&r| node[r as usize]).collect(), false)
            }
        };
        if let Some(seed_slot) = slots.get_mut(slot) {
            *seed_slot = rows;
        }
        for (s, v) in slots.iter_mut().enumerate() {
            if s != slot {
                *v = Vec::new();
            }
        }
        Inter {
            slots,
            node,
            replicated,
            bytes_per_row: self.schema.table(start).row_bytes as f64,
        }
    }

    /// Value of the intermediate's rows for an attribute of one of its
    /// already-joined tables.
    fn inter_values(&self, query: &Query, inter: &Inter, attr: AttrRef) -> Vec<u64> {
        let slot = slot_of(query, attr.table);
        let col = self.db.column(attr.table, attr.attr);
        let Some(rows) = inter.slots.get(slot) else {
            return Vec::new();
        };
        rows.iter().map(|&r| col[r as usize]).collect()
    }

    /// Execute one join step; returns (seconds, bytes over network, result).
    fn join_step(
        &self,
        query: &Query,
        inter: &Inter,
        right_table: TableId,
        join: &lpa_workload::JoinPred,
        strategy: JoinStrategy,
    ) -> (f64, f64, Inter) {
        let n = self.hw.nodes;
        let right_slot = slot_of(query, right_table);
        let right_rows = self.filtered_rows(query, right_table);
        let right_bytes_row = self.schema.table(right_table).row_bytes as f64;

        // Orient pairs as (inter side, right side).
        let oriented: Vec<(AttrRef, AttrRef)> = join
            .pairs
            .iter()
            .map(|(a, b)| {
                if b.table == right_table {
                    (*a, *b)
                } else {
                    (*b, *a)
                }
            })
            .collect();
        let primary = oriented[0];
        let left_vals = self.inter_values(query, inter, primary.0);
        let right_col = self.db.column(right_table, primary.1.attr);

        // Placement of both sides for this join.
        let right_home: Vec<u8> = match &self.layouts[right_table.0] {
            Layout::Replicated => Vec::new(),
            Layout::Hashed { node, .. } => right_rows.iter().map(|&r| node[r as usize]).collect(),
        };
        let right_replicated = matches!(self.layouts[right_table.0], Layout::Replicated);

        let mut net_bytes_per_node = vec![0.0f64; n];
        let mut total_bytes = 0.0f64;
        let mut shuffled = false;

        // Decide effective placements after the exchange.
        // `left_at[i]` / `right_at[j]`: node each row joins at; `None`
        // means "present everywhere" (replicated / broadcast side).
        let (left_at, right_at): (Option<Vec<u8>>, Option<Vec<u8>>) = match strategy {
            JoinStrategy::ReplicatedSide | JoinStrategy::CoLocated => {
                let left = if inter.replicated {
                    None
                } else {
                    Some(inter.node.clone())
                };
                let right = if right_replicated {
                    None
                } else {
                    Some(right_home.clone())
                };
                (left, right)
            }
            JoinStrategy::Broadcast { table_side: true } => {
                // Ship the right (base) side everywhere.
                shuffled = true;
                let bytes = right_rows.len() as f64 * right_bytes_row;
                for node_bytes in net_bytes_per_node.iter_mut() {
                    *node_bytes += bytes * (n as f64 - 1.0) / n as f64;
                }
                total_bytes += bytes * (n as f64 - 1.0);
                let left = if inter.replicated {
                    None
                } else {
                    Some(inter.node.clone())
                };
                (left, None)
            }
            JoinStrategy::Broadcast { table_side: false } => {
                shuffled = true;
                let bytes = inter.len() as f64 * inter.bytes_per_row;
                for node_bytes in net_bytes_per_node.iter_mut() {
                    *node_bytes += bytes * (n as f64 - 1.0) / n as f64;
                }
                total_bytes += bytes * (n as f64 - 1.0);
                let right = if right_replicated {
                    None
                } else {
                    Some(right_home.clone())
                };
                (None, right)
            }
            JoinStrategy::DirectedRepartition { table_side } => {
                shuffled = true;
                // Re-hash one side on the join attribute of the *other*
                // side's partitioning pair; matching rows co-locate because
                // their pair values are equal.
                if table_side {
                    // Move right rows to hash(right pair value).
                    let new: Vec<u8> = right_rows
                        .iter()
                        .map(|&r| self.engine.node_of(right_col[r as usize], n) as u8)
                        .collect();
                    for (j, &node) in new.iter().enumerate() {
                        let home = right_home.get(j).copied().unwrap_or(node);
                        if home != node {
                            net_bytes_per_node[node as usize] += right_bytes_row;
                            total_bytes += right_bytes_row;
                        }
                    }
                    let left = if inter.replicated {
                        None
                    } else {
                        Some(inter.node.clone())
                    };
                    (left, Some(new))
                } else {
                    // Move intermediate rows to hash(left pair value).
                    let new: Vec<u8> = left_vals
                        .iter()
                        .map(|&v| self.engine.node_of(v, n) as u8)
                        .collect();
                    for (i, &node) in new.iter().enumerate() {
                        let home = if inter.replicated {
                            node
                        } else {
                            inter.node[i]
                        };
                        if home != node {
                            net_bytes_per_node[node as usize] += inter.bytes_per_row;
                            total_bytes += inter.bytes_per_row;
                        }
                    }
                    let right = if right_replicated {
                        None
                    } else {
                        Some(right_home.clone())
                    };
                    (Some(new), right)
                }
            }
            JoinStrategy::SymmetricRepartition => {
                shuffled = true;
                let new_left: Vec<u8> = left_vals
                    .iter()
                    .map(|&v| self.engine.node_of(v, n) as u8)
                    .collect();
                for (i, &node) in new_left.iter().enumerate() {
                    let home = if inter.replicated {
                        node
                    } else {
                        inter.node[i]
                    };
                    if home != node {
                        net_bytes_per_node[node as usize] += inter.bytes_per_row;
                        total_bytes += inter.bytes_per_row;
                    }
                }
                let new_right: Vec<u8> = right_rows
                    .iter()
                    .map(|&r| self.engine.node_of(right_col[r as usize], n) as u8)
                    .collect();
                for (j, &node) in new_right.iter().enumerate() {
                    let home = right_home.get(j).copied().unwrap_or(node);
                    if home != node {
                        net_bytes_per_node[node as usize] += right_bytes_row;
                        total_bytes += right_bytes_row;
                    }
                }
                (Some(new_left), Some(new_right))
            }
        };

        // Per-node (or global, when both sides are everywhere) hash join on
        // the primary pair. Each simulated node's build/probe touches only
        // that node's rows, so the groups run as independent tasks on the
        // deterministic pool and their outputs are merged in group order —
        // every charged metric is identical for any thread count.
        let both_everywhere = left_at.is_none() && right_at.is_none();
        let groups: usize = if both_everywhere { 1 } else { n };
        let inter_len = inter.len();
        let out_width = query.tables.len();

        // Serial pre-bucketing: which right rows build at each group and
        // which intermediate rows probe there. `None` means the side is
        // present everywhere and every group sees all of it.
        let right_bucket: Option<Vec<Vec<usize>>> = right_at.as_ref().map(|at| {
            let mut buckets = vec![Vec::new(); groups];
            for (j, &node) in at.iter().enumerate() {
                buckets[node as usize].push(j);
            }
            buckets
        });
        let left_bucket: Option<Vec<Vec<u32>>> = left_at.as_ref().map(|at| {
            let mut buckets = vec![Vec::new(); groups];
            for (i, &node) in at.iter().enumerate() {
                buckets[node as usize].push(i as u32);
            }
            buckets
        });
        // Replicated intermediate against a partitioned right side: the
        // rows are present on every node and probe each node's shard.
        let all_left: Vec<u32> = if left_bucket.is_none() {
            (0..inter_len as u32).collect()
        } else {
            Vec::new()
        };

        struct GroupJoin {
            build_rows: usize,
            probe_rows: usize,
            out_rows: usize,
            out_slots: Vec<Vec<u32>>,
        }

        let pool = par_pool(right_rows.len() + inter_len);
        let group_results: Vec<GroupJoin> = pool.par_index_map(groups, |g| {
            // Build: hash this group's share of the right side, in row-id
            // order (same per-key match order as a serial build).
            let mut build: HashMap<u64, Vec<u32>> = HashMap::new();
            match &right_bucket {
                Some(buckets) => {
                    for &j in &buckets[g] {
                        let r = right_rows[j];
                        build.entry(right_col[r as usize]).or_default().push(r);
                    }
                }
                None => {
                    for &r in &right_rows {
                        build.entry(right_col[r as usize]).or_default().push(r);
                    }
                }
            }
            let build_rows: usize = build.values().map(|v| v.len()).sum();

            // Probe with this group's intermediate rows, index-ascending.
            let probe_list: &[u32] = match &left_bucket {
                Some(buckets) => &buckets[g],
                None => &all_left,
            };
            let mut out_slots: Vec<Vec<u32>> = vec![Vec::new(); out_width];
            let mut out_rows = 0usize;
            for &iu in probe_list {
                let i = iu as usize;
                if let Some(matches) = build.get(&left_vals[i]) {
                    for &r in matches {
                        for (s, out) in out_slots.iter_mut().enumerate() {
                            // Absent slots stay empty so later steps can
                            // tell which tables the intermediate carries.
                            if s == right_slot {
                                out.push(r);
                            } else if !inter.slots[s].is_empty() {
                                out.push(inter.slots[s][i]);
                            }
                        }
                        out_rows += 1;
                    }
                }
            }
            GroupJoin {
                build_rows,
                probe_rows: probe_list.len(),
                out_rows,
                out_slots,
            }
        });

        // Group-ordered merge: node 0's output rows first, then node 1's,
        // and so on. All charged metrics (counts, stragglers, byte sums of
        // a constant per row) are insensitive to row order, so this is
        // equivalent to interleaving by probe index.
        let mut out_slots: Vec<Vec<u32>> = vec![Vec::new(); out_width];
        let mut out_node: Vec<u8> = Vec::new();
        let mut per_node_build = vec![0usize; groups];
        let mut per_node_probe = vec![0usize; groups];
        let mut per_node_out = vec![0usize; groups];
        for (g, gr) in group_results.into_iter().enumerate() {
            per_node_build[g] = gr.build_rows;
            per_node_probe[g] = gr.probe_rows;
            per_node_out[g] = gr.out_rows;
            for (merged, mut part) in out_slots.iter_mut().zip(gr.out_slots) {
                merged.append(&mut part);
            }
            out_node.resize(out_node.len() + gr.out_rows, g as u8);
        }

        // Time accounting: network (straggler), build+probe+output CPU
        // (straggler), exchange overhead.
        let mut seconds = 0.0;
        if shuffled {
            seconds += self.engine.shuffle_overhead;
            // A degraded link inflates the receive time of its node; with
            // all multipliers at 1.0 this is the plain byte maximum.
            let max_in = net_bytes_per_node
                .iter()
                .enumerate()
                .map(|(node, &b)| b * self.node_net_mult(node))
                .fold(0.0, f64::max);
            seconds += max_in / self.hw.net_bandwidth;
        }
        // A single-group join (both sides everywhere) runs on one node's
        // worth of compute but produces a replicated result; it executes on
        // the first live node, so it inherits that node's multiplier.
        let max_work = (0..groups)
            .map(|g| {
                let node = if both_everywhere {
                    self.faults.first_up()
                } else {
                    g
                };
                (per_node_build[g] + per_node_probe[g] + per_node_out[g]) as f64
                    * self.node_work_mult(node)
            })
            .fold(0.0, f64::max);
        seconds += max_work * self.hw.cpu_tuple_cost * query.cpu_factor;

        let result_replicated = both_everywhere;
        let next = Inter {
            slots: out_slots,
            node: out_node,
            replicated: result_replicated,
            bytes_per_row: inter.bytes_per_row + right_bytes_row,
        };
        (seconds, total_bytes, next)
    }
}

pub(crate) fn over(seconds: f64, budget: Option<f64>) -> bool {
    budget.map(|b| seconds > b).unwrap_or(false)
}

/// Slot index of `t` in the query's scan list; slot 0 if the planner ever
/// hands us a foreign table (deterministic, and visibly wrong in traces
/// rather than a mid-episode abort).
pub(crate) fn slot_of(query: &Query, t: TableId) -> usize {
    query.tables.iter().position(|x| *x == t).unwrap_or(0)
}

pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
