//! Engine profiles: the behavioural differences between the two systems
//! the paper evaluates on.

use serde::{Deserialize, Serialize};

/// Which DBMS the simulator imitates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EngineKind {
    /// Postgres-XL-like: disk-based storage, optimizer cost estimates are
    /// accessible (EXPLAIN), partitioning only by plain columns.
    PgXlLike,
    /// System-X-like: in-memory storage, **no access to optimizer cost
    /// estimates** (the minimum-optimizer baseline cannot run, as in the
    /// paper), compound partition keys supported, and a cheaper naive
    /// modulo distribution hash that is extra-sensitive to skewed
    /// low-cardinality keys.
    SystemXLike,
}

/// Tunable engine behaviour.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct EngineProfile {
    pub kind: EngineKind,
    /// Whether table scans hit disk (true) or memory (false).
    pub disk_based: bool,
    /// Whether the engine exposes optimizer cost estimates to tools.
    pub optimizer_access: bool,
    /// Whether compound (multi-column) partition keys are supported.
    pub supports_compound_keys: bool,
    /// Fixed per-query overhead in seconds (parse/plan/coordinate).
    pub query_overhead: f64,
    /// Fixed per-shuffle-stage overhead in seconds (exchange setup).
    pub shuffle_overhead: f64,
    /// Per-tuple cost of shipping a row between nodes (serialization and
    /// exchange-operator work) — the dominant shuffle cost in practice.
    pub ship_tuple_cost: f64,
    /// Multiplier on repartitioning time (disk engines rewrite tables).
    pub repartition_penalty: f64,
}

impl EngineProfile {
    pub fn pgxl() -> Self {
        Self {
            kind: EngineKind::PgXlLike,
            disk_based: true,
            optimizer_access: true,
            supports_compound_keys: false,
            query_overhead: 0.01,
            shuffle_overhead: 0.002,
            ship_tuple_cost: 1.2e-6,
            repartition_penalty: 250.0,
        }
    }

    pub fn system_x() -> Self {
        Self {
            kind: EngineKind::SystemXLike,
            disk_based: false,
            optimizer_access: false,
            supports_compound_keys: true,
            query_overhead: 0.002,
            shuffle_overhead: 0.0005,
            ship_tuple_cost: 1.5e-7,
            repartition_penalty: 40.0,
        }
    }

    /// Node assignment for a partition-key value. Postgres-XL mixes the
    /// value through a hash; System-X uses naive modulo, so consecutive or
    /// low-cardinality skewed keys shard badly.
    pub fn node_of(&self, value: u64, nodes: usize) -> usize {
        match self.kind {
            EngineKind::PgXlLike => (splitmix64(value) % nodes as u64) as usize,
            EngineKind::SystemXLike => (value % nodes as u64) as usize,
        }
    }

    /// Engine name as printed by the experiment harness.
    pub fn name(&self) -> &'static str {
        match self.kind {
            EngineKind::PgXlLike => "Postgres-XL (simulated)",
            EngineKind::SystemXLike => "System-X (simulated)",
        }
    }
}

/// SplitMix64 finalizer — the deterministic mixing function used across
/// the simulator (data generation and Postgres-XL-style distribution).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_constraints() {
        let pg = EngineProfile::pgxl();
        let sx = EngineProfile::system_x();
        assert!(pg.optimizer_access && !sx.optimizer_access);
        assert!(!pg.supports_compound_keys && sx.supports_compound_keys);
        assert!(pg.disk_based && !sx.disk_based);
    }

    #[test]
    fn splitmix_spreads_consecutive_values() {
        let pg = EngineProfile::pgxl();
        let mut counts = [0usize; 4];
        for v in 0..10_000u64 {
            counts[pg.node_of(v, 4)] += 1;
        }
        for c in counts {
            assert!((2200..=2800).contains(&c), "balanced: {counts:?}");
        }
    }

    #[test]
    fn modulo_hash_is_skewed_for_low_cardinality() {
        // 10 district values over 4 nodes: System-X's modulo puts values
        // {0,4,8},{1,5,9},{2,6},{3,7} — nodes 0/1 get 3 values, 2/3 get 2.
        let sx = EngineProfile::system_x();
        let mut counts = [0usize; 4];
        for v in 0..10u64 {
            counts[sx.node_of(v, 4)] += 1;
        }
        assert_eq!(counts.iter().max(), Some(&3));
        assert_eq!(counts.iter().min(), Some(&2));
    }

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }
}
