//! The engine's own query optimizer: plan selection and — where the engine
//! exposes them — cost estimates.
//!
//! Real optimizer cost models are "notoriously inaccurate" (Leis et al.,
//! cited as reference 16 in the paper), and that inaccuracy is the paper's central
//! argument against purely cost-based partitioning advisors. We model it
//! as deterministic, query-specific multiplicative *cardinality estimation
//! errors* whose magnitude grows with the number of joins, applied on top
//! of the same plan machinery the advisor's simple cost model uses. The
//! errors shift when table statistics change (bulk updates bump the stats
//! epoch), which is what makes the minimum-optimizer baseline's plans flip
//! in Fig. 4b.

use crate::engine::{splitmix64, EngineProfile};
use crate::hardware::HardwareProfile;
use lpa_costmodel::{CostParams, NetworkCostModel, QueryPlan};
use lpa_partition::Partitioning;
use lpa_schema::Schema;
use lpa_workload::Query;

/// Plan generator + cost estimator of one engine deployment.
#[derive(Clone, Debug)]
pub struct OptimizerEstimator {
    engine: EngineProfile,
    model: NetworkCostModel,
    /// Magnitude of selectivity misestimation (log-space half-range for a
    /// single-join query; grows with join count).
    error_scale: f64,
}

impl OptimizerEstimator {
    pub fn new(engine: EngineProfile, hw: HardwareProfile) -> Self {
        let params = CostParams {
            nodes: hw.nodes,
            net_bandwidth: hw.net_bandwidth,
            scan_bandwidth: if engine.disk_based {
                hw.disk_scan_bandwidth
            } else {
                hw.mem_scan_bandwidth
            },
            cpu_tuple_cost: hw.cpu_tuple_cost,
            ship_tuple_cost: engine.ship_tuple_cost,
            shuffle_overhead: engine.shuffle_overhead,
        };
        Self {
            engine,
            model: NetworkCostModel::new(params),
            error_scale: 0.8,
        }
    }

    /// Tune the misestimation magnitude (0 disables errors; for tests).
    pub fn with_error_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 0.0);
        self.error_scale = scale;
        self
    }

    /// The plan the engine would execute for `query` under `partitioning`
    /// given the statistics of `stats_epoch`.
    pub fn plan(
        &self,
        schema: &Schema,
        query: &Query,
        partitioning: &Partitioning,
        stats_epoch: u64,
    ) -> QueryPlan {
        let distorted = self.distort(query, stats_epoch);
        self.model.plan(schema, &distorted, partitioning)
    }

    /// The optimizer's cost estimate for the query — what classical
    /// partitioning advisors minimize. `None` when the engine does not
    /// expose estimates (System-X).
    pub fn estimate_cost(
        &self,
        schema: &Schema,
        query: &Query,
        partitioning: &Partitioning,
        stats_epoch: u64,
    ) -> Option<f64> {
        if !self.engine.optimizer_access {
            return None;
        }
        Some(
            self.plan(schema, query, partitioning, stats_epoch)
                .total_seconds,
        )
    }

    /// Apply deterministic per-(query, table, epoch) selectivity errors.
    /// Error magnitude grows with join count, following the observation
    /// that estimation errors compound through joins.
    fn distort(&self, query: &Query, stats_epoch: u64) -> Query {
        if self.error_scale == 0.0 {
            return query.clone();
        }
        let mut q = query.clone();
        let half_range = self.error_scale * (1.0 + 0.5 * query.joins.len() as f64);
        let qtag = splitmix64(fnv(&query.name) ^ stats_epoch.wrapping_mul(0x9E37));
        for (i, t) in q.tables.clone().iter().enumerate() {
            let u = splitmix64(qtag ^ ((t.0 as u64) << 7)) as f64 / u64::MAX as f64;
            let log_err = (2.0 * u - 1.0) * half_range;
            q.selectivity[i] = (q.selectivity[i] * log_err.exp()).clamp(1e-9, 1.0);
        }
        q
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Schema, lpa_workload::Workload, OptimizerEstimator) {
        let s = lpa_schema::ssb::schema(0.01).expect("schema builds");
        let w = lpa_workload::ssb::workload(&s).expect("workload builds");
        let o = OptimizerEstimator::new(EngineProfile::pgxl(), HardwareProfile::standard());
        (s, w, o)
    }

    #[test]
    fn system_x_hides_estimates() {
        let s = lpa_schema::ssb::schema(0.01).expect("schema builds");
        let w = lpa_workload::ssb::workload(&s).expect("workload builds");
        let o = OptimizerEstimator::new(EngineProfile::system_x(), HardwareProfile::standard());
        let p = Partitioning::initial(&s);
        assert!(o.estimate_cost(&s, &w.queries()[0], &p, 0).is_none());
    }

    #[test]
    fn estimates_are_deterministic_but_epoch_sensitive() {
        let (s, w, o) = setup();
        let p = Partitioning::initial(&s);
        let q = &w.queries()[5];
        let a = o.estimate_cost(&s, q, &p, 0).unwrap();
        let b = o.estimate_cost(&s, q, &p, 0).unwrap();
        assert_eq!(a, b);
        let c = o.estimate_cost(&s, q, &p, 1).unwrap();
        assert_ne!(a, c, "new statistics should change estimates");
    }

    #[test]
    fn zero_error_scale_matches_truth() {
        let (s, w, o) = setup();
        let o = o.with_error_scale(0.0);
        let p = Partitioning::initial(&s);
        let engine = EngineProfile::pgxl();
        let truth = NetworkCostModel::new(CostParams {
            nodes: 4,
            net_bandwidth: HardwareProfile::standard().net_bandwidth,
            scan_bandwidth: HardwareProfile::standard().disk_scan_bandwidth,
            cpu_tuple_cost: HardwareProfile::standard().cpu_tuple_cost,
            ship_tuple_cost: engine.ship_tuple_cost,
            shuffle_overhead: engine.shuffle_overhead,
        });
        for q in w.queries() {
            let est = o.estimate_cost(&s, q, &p, 3).unwrap();
            let t = truth.query_cost(&s, q, &p);
            assert!((est - t).abs() < 1e-9, "{}: {est} vs {t}", q.name);
        }
    }

    #[test]
    fn errors_scale_with_join_count() {
        let (s, w, o) = setup();
        let p = Partitioning::initial(&s);
        // Relative misestimation of a 4-join query should generally exceed
        // that of a 1-join query (averaged over epochs).
        let exact = OptimizerEstimator::new(EngineProfile::pgxl(), HardwareProfile::standard())
            .with_error_scale(0.0);
        let rel_err = |q: &Query| {
            (0..20)
                .map(|e| {
                    let est = o.estimate_cost(&s, q, &p, e).unwrap();
                    let t = exact.estimate_cost(&s, q, &p, e).unwrap();
                    (est / t).ln().abs()
                })
                .sum::<f64>()
                / 20.0
        };
        let small = rel_err(&w.queries()[0]); // 1 join
        let big = rel_err(w.queries().iter().find(|q| q.name == "ssb_q4.1").unwrap());
        assert!(
            big > small * 0.8,
            "multi-join error {big} should be at least comparable to {small}"
        );
    }
}
