//! Deterministic fault injection: the chaos layer of the simulated cluster.
//!
//! A [`FaultPlan`] is a *pure function* of a seed and the simulated clock —
//! no wall time, no hidden state (lint L003 applies to this file). Time is
//! divided into fixed-width windows; for every `(window, node)` pair the
//! plan derives, from [`lpa_par::derive_stream`]-mixed hashes, whether the
//! node is crashed, straggling (a work multiplier ≥ 1), or behind a
//! degraded link (a receive-time multiplier ≥ 1), and whether query
//! executions inside the window may fail transiently. Because the decision
//! depends only on `(seed, window, node)`, replaying the same simulated
//! history produces the same faults — the chaos differential suite relies
//! on this to compare training runs bit-for-bit.
//!
//! The neutral plan ([`FaultPlan::none`]) derives nothing: every query of a
//! fault-free cluster takes the exact code path it took before the chaos
//! layer existed, so runtimes, rewards, and trained weights stay
//! bit-identical (see `tests/chaos.rs`).

use lpa_par::derive_stream;
use serde::{Deserialize, Serialize};

/// Why a query execution failed (see [`crate::QueryOutcome::Failed`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FailReason {
    /// A node holding an unreplicated shard of a scanned table is down and
    /// no replica can serve the data.
    NodeDown { node: usize },
    /// A transient error (lost connection, killed backend) aborted the
    /// execution; an immediate retry may succeed.
    Transient,
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeDown { node } => write!(f, "node {node} down"),
            Self::Transient => write!(f, "transient error"),
        }
    }
}

/// Salts separating the per-fault-type hash streams.
const SALT_CRASH: u64 = 0xC4A5_0001;
const SALT_STRAGGLE: u64 = 0x57A6_0002;
const SALT_LINK: u64 = 0x11F0_0003;
const SALT_TRANSIENT: u64 = 0x7E4A_0004;

/// A deterministic schedule of cluster faults.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// `(window, node)` — except `transient_rate`, which is evaluated per query
/// execution. A plan with every rate at zero is *inert*: it never allocates
/// a fault state and the cluster behaves exactly as if no plan existed.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed; all fault streams derive from it.
    pub seed: u64,
    /// Width of one schedule window in simulated seconds.
    pub window_seconds: f64,
    /// Per-(window, node) probability of the node being crashed.
    pub crash_rate: f64,
    /// Per-(window, node) probability of a straggler slowdown.
    pub straggle_rate: f64,
    /// Work multiplier of a straggling node (≥ 1).
    pub straggle_factor: f64,
    /// Per-(window, node) probability of a degraded network link.
    pub link_degrade_rate: f64,
    /// Receive-time multiplier of a degraded link (≥ 1).
    pub link_degrade_factor: f64,
    /// Per-execution probability of a transient query error while any
    /// window of the plan is active.
    pub transient_rate: f64,
}

impl FaultPlan {
    /// The inert plan: no faults, ever. A cluster under this plan is
    /// bit-identical to one constructed before the chaos layer existed.
    pub fn none() -> Self {
        Self {
            seed: 0,
            window_seconds: 1.0,
            crash_rate: 0.0,
            straggle_rate: 0.0,
            straggle_factor: 1.0,
            link_degrade_rate: 0.0,
            link_degrade_factor: 1.0,
            transient_rate: 0.0,
        }
    }

    /// The standard fault storm used by the chaos CI leg: frequent
    /// crashes, stragglers, degraded links, and transient errors.
    pub fn storm(seed: u64) -> Self {
        Self {
            seed,
            window_seconds: 0.05,
            crash_rate: 0.35,
            straggle_rate: 0.3,
            straggle_factor: 3.0,
            link_degrade_rate: 0.25,
            link_degrade_factor: 4.0,
            transient_rate: 0.08,
        }
    }

    /// The same plan with its root seed re-derived through `stream` — the
    /// fleet's per-tenant salt. Two tenants handed `plan.salted(i)` and
    /// `plan.salted(j)` draw from decorrelated fault schedules, so chaos
    /// landing on tenant *i* is bit-neutral for tenant *j* even though
    /// both were configured from the same storm template. Inert plans stay
    /// inert (seed is irrelevant when every rate is zero).
    pub fn salted(&self, stream: u64) -> Self {
        Self {
            seed: derive_stream(self.seed, stream),
            ..*self
        }
    }

    /// True when the plan can never produce a fault.
    pub fn is_inert(&self) -> bool {
        self.crash_rate == 0.0
            && self.straggle_rate == 0.0
            && self.link_degrade_rate == 0.0
            && self.transient_rate == 0.0
    }

    /// The same plan rescaled to a cluster whose simulated clock runs
    /// `fraction` times as fast (e.g. a [`crate::Cluster::sampled`]
    /// sample): window widths shrink proportionally so the *per-query*
    /// fault density is preserved.
    pub fn rescaled(&self, fraction: f64) -> Self {
        let fraction = if fraction > 0.0 { fraction } else { 1.0 };
        Self {
            window_seconds: (self.window_seconds * fraction).max(f64::MIN_POSITIVE),
            ..*self
        }
    }

    /// Schedule window covering simulated second `clock`.
    pub fn window_of(&self, clock: f64) -> u64 {
        if self.window_seconds <= 0.0 || !clock.is_finite() || clock <= 0.0 {
            return 0;
        }
        (clock / self.window_seconds) as u64
    }

    /// Uniform draw in `[0, 1)` from the plan's stream for a fault type
    /// (`salt`), window, and entity (node or query sequence number).
    fn draw(&self, salt: u64, window: u64, entity: u64) -> f64 {
        let stream = derive_stream(self.seed ^ salt, window);
        let h = derive_stream(stream, entity);
        // 53 high-quality mantissa bits → exact double in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The active fault state at simulated second `clock` on an
    /// `nodes`-node cluster. Inert plans return the nominal state.
    pub fn state_at(&self, clock: f64, nodes: usize) -> FaultState {
        let mut state = FaultState::nominal(nodes);
        if self.is_inert() {
            return state;
        }
        let window = self.window_of(clock);
        state.window = window;
        state.transient_rate = self.transient_rate;
        for node in 0..nodes {
            if self.draw(SALT_CRASH, window, node as u64) < self.crash_rate {
                state.down[node] = true;
            }
            if self.draw(SALT_STRAGGLE, window, node as u64) < self.straggle_rate {
                state.work_mult[node] = self.straggle_factor.max(1.0);
            }
            if self.draw(SALT_LINK, window, node as u64) < self.link_degrade_rate {
                state.net_mult[node] = self.link_degrade_factor.max(1.0);
            }
        }
        // Never take the whole cluster down: a deterministic survivor
        // (rotating with the window) keeps replicated data reachable.
        if state.down.iter().all(|d| *d) && nodes > 0 {
            state.down[(window % nodes as u64) as usize] = false;
        }
        state
    }

    /// Whether query execution number `sequence` fails transiently at
    /// `clock`. Pure in `(seed, window, sequence)`, so a *retry* — which
    /// advances the clock past backoff and bumps the sequence number —
    /// re-rolls deterministically.
    pub fn transient_failure(&self, clock: f64, sequence: u64) -> bool {
        if self.transient_rate <= 0.0 {
            return false;
        }
        self.draw(SALT_TRANSIENT, self.window_of(clock), sequence) < self.transient_rate
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The faults active at one instant of simulated time.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultState {
    /// Per-node crash flags.
    pub down: Vec<bool>,
    /// Per-node work multipliers (CPU + scan; ≥ 1, 1 = nominal).
    pub work_mult: Vec<f64>,
    /// Per-node network receive-time multipliers (≥ 1, 1 = nominal).
    pub net_mult: Vec<f64>,
    /// Transient-error probability per execution in this window.
    pub transient_rate: f64,
    /// The schedule window this state was derived for.
    pub window: u64,
}

impl FaultState {
    /// The healthy state: nothing down, all multipliers 1.
    pub fn nominal(nodes: usize) -> Self {
        Self {
            down: vec![false; nodes],
            work_mult: vec![1.0; nodes],
            net_mult: vec![1.0; nodes],
            transient_rate: 0.0,
            window: 0,
        }
    }

    /// Any fault active — a degraded epoch for measurement purposes.
    pub fn any_fault(&self) -> bool {
        self.down.iter().any(|d| *d)
            || self.work_mult.iter().any(|m| *m != 1.0)
            || self.net_mult.iter().any(|m| *m != 1.0)
    }

    pub fn nodes_down(&self) -> usize {
        self.down.iter().filter(|d| **d).count()
    }

    pub fn stragglers(&self) -> usize {
        self.work_mult.iter().filter(|m| **m > 1.0).count()
    }

    pub fn degraded_links(&self) -> usize {
        self.net_mult.iter().filter(|m| **m > 1.0).count()
    }

    /// First node that is up — the survivor replicated work fails over to.
    /// Falls back to node 0 if everything is down (the plan prevents this,
    /// but a hand-built state must not panic, L001).
    pub fn first_up(&self) -> usize {
        self.down.iter().position(|d| !*d).unwrap_or(0)
    }
}

/// Wall-less counters of fault-layer activity. The cluster fills the
/// execution-side counters; the online reward backend adds the
/// training-side ones (retries, fallbacks, invalidations) and merges both
/// views for `EpisodeStats` and `WindowReport` consumers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct FaultAccounting {
    /// Query executions that returned [`crate::QueryOutcome::Failed`].
    pub queries_failed: u64,
    /// Failures caused by an unreachable unreplicated shard.
    pub node_down_failures: u64,
    /// Failures caused by transient errors.
    pub transient_failures: u64,
    /// Completions that survived node loss by reading replicas.
    pub failovers: u64,
    /// Completions measured while any fault was active (degraded epochs).
    pub degraded_completions: u64,
    /// Queries cut off by a caller-supplied timeout (cluster-level view;
    /// the online backend's ledger additionally tracks reward-bound
    /// timeouts).
    pub timeouts: u64,
    /// Measurement retries issued by the online backend.
    pub retries: u64,
    /// Measurements that ultimately fell back to the cost model.
    pub fallbacks: u64,
    /// Degraded cache entries invalidated after recovery.
    pub cache_invalidations: u64,
}

impl FaultAccounting {
    /// Field-wise sum of two accounting views (cluster + backend).
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            queries_failed: self.queries_failed + other.queries_failed,
            node_down_failures: self.node_down_failures + other.node_down_failures,
            transient_failures: self.transient_failures + other.transient_failures,
            failovers: self.failovers + other.failovers,
            degraded_completions: self.degraded_completions + other.degraded_completions,
            timeouts: self.timeouts + other.timeouts,
            retries: self.retries + other.retries,
            fallbacks: self.fallbacks + other.fallbacks,
            cache_invalidations: self.cache_invalidations + other.cache_invalidations,
        }
    }
}

/// A snapshot of cluster health for service-level reporting.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClusterHealth {
    pub nodes: usize,
    pub nodes_down: usize,
    pub stragglers: usize,
    pub degraded_links: usize,
    /// Cumulative fault-layer counters of the cluster.
    pub accounting: FaultAccounting,
}

impl ClusterHealth {
    /// No fault currently active (historical counters may be non-zero).
    pub fn healthy(&self) -> bool {
        self.nodes_down == 0 && self.stragglers == 0 && self.degraded_links == 0
    }

    /// Completions whose measurements were taken under active faults —
    /// the count a service operator should treat as suspect.
    pub fn degraded_measurements(&self) -> u64 {
        self.accounting.degraded_completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        for clock in [0.0, 1.0, 17.3, 1e6] {
            let s = plan.state_at(clock, 4);
            assert_eq!(s, FaultState::nominal(4));
            assert!(!s.any_fault());
            assert!(!plan.transient_failure(clock, 42));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::storm(77);
        let b = FaultPlan::storm(77);
        for w in 0..200 {
            let clock = w as f64 * a.window_seconds + 1e-3;
            assert_eq!(a.state_at(clock, 4), b.state_at(clock, 4));
            assert_eq!(
                a.transient_failure(clock, w as u64),
                b.transient_failure(clock, w as u64)
            );
        }
    }

    #[test]
    fn salted_plans_diverge_per_stream_but_stay_pure() {
        let base = FaultPlan::storm(0xF1EE7);
        let a = base.salted(3);
        let b = base.salted(4);
        assert_eq!(a, base.salted(3), "salting must be pure in the stream");
        let diverged = (0..200).any(|w| {
            let clock = w as f64 * base.window_seconds + 1e-3;
            a.state_at(clock, 4) != b.state_at(clock, 4)
        });
        assert!(diverged, "distinct salts must yield distinct schedules");
        assert!(FaultPlan::none().salted(9).is_inert());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::storm(1);
        let b = FaultPlan::storm(2);
        let diverged = (0..200).any(|w| {
            let clock = w as f64 * a.window_seconds + 1e-3;
            a.state_at(clock, 4) != b.state_at(clock, 4)
        });
        assert!(diverged, "distinct seeds must yield distinct schedules");
    }

    #[test]
    fn storm_produces_every_fault_type() {
        let plan = FaultPlan::storm(0xC405);
        let mut crashes = 0;
        let mut stragglers = 0;
        let mut links = 0;
        let mut transients = 0;
        for w in 0..400u64 {
            let clock = w as f64 * plan.window_seconds + 1e-3;
            let s = plan.state_at(clock, 4);
            crashes += s.nodes_down();
            stragglers += s.stragglers();
            links += s.degraded_links();
            transients += usize::from(plan.transient_failure(clock, w));
        }
        assert!(crashes > 0, "no crashes scheduled");
        assert!(stragglers > 0, "no stragglers scheduled");
        assert!(links > 0, "no degraded links scheduled");
        assert!(transients > 0, "no transient errors scheduled");
    }

    #[test]
    fn one_node_always_survives() {
        let mut plan = FaultPlan::storm(9);
        plan.crash_rate = 1.0; // every node crashes every window
        for w in 0..50u64 {
            let clock = w as f64 * plan.window_seconds + 1e-3;
            let s = plan.state_at(clock, 4);
            assert!(s.nodes_down() < 4, "window {w} lost the whole cluster");
            assert!(!s.down[s.first_up()]);
        }
    }

    #[test]
    fn rescaled_preserves_rates_and_shrinks_windows() {
        let plan = FaultPlan::storm(3);
        let sampled = plan.rescaled(0.25);
        assert_eq!(sampled.crash_rate, plan.crash_rate);
        assert_eq!(sampled.transient_rate, plan.transient_rate);
        assert!((sampled.window_seconds - plan.window_seconds * 0.25).abs() < 1e-15);
        // Inert plans stay inert.
        assert!(FaultPlan::none().rescaled(0.25).is_inert());
    }

    #[test]
    fn accounting_merges_fieldwise() {
        let a = FaultAccounting {
            queries_failed: 2,
            retries: 5,
            ..FaultAccounting::default()
        };
        let b = FaultAccounting {
            queries_failed: 1,
            fallbacks: 3,
            ..FaultAccounting::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.queries_failed, 3);
        assert_eq!(m.retries, 5);
        assert_eq!(m.fallbacks, 3);
    }

    #[test]
    fn health_summarizes_state() {
        let h = ClusterHealth {
            nodes: 4,
            nodes_down: 1,
            stragglers: 0,
            degraded_links: 2,
            accounting: FaultAccounting {
                degraded_completions: 7,
                ..FaultAccounting::default()
            },
        };
        assert!(!h.healthy());
        assert_eq!(h.degraded_measurements(), 7);
    }
}
