//! The cluster façade: deployment, query execution, the simulated clock,
//! sampling and bulk updates.

use crate::datagen::Database;
use crate::engine::EngineProfile;
use crate::executor::{layout_table, Executor, Layout};
use crate::faults::{ClusterHealth, FailReason, FaultAccounting, FaultPlan, FaultState};
use crate::hardware::HardwareProfile;
use crate::optimizer::OptimizerEstimator;
use lpa_partition::Partitioning;
use lpa_schema::{Schema, TableId};
use lpa_workload::{FrequencyVector, Query, Workload};

/// Configuration of one simulated deployment.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    pub engine: EngineProfile,
    pub hardware: HardwareProfile,
    /// Data-generation seed.
    pub seed: u64,
}

impl ClusterConfig {
    pub fn new(engine: EngineProfile, hardware: HardwareProfile) -> Self {
        Self {
            engine,
            hardware,
            seed: 0x5EED,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of one query execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryOutcome {
    Completed {
        seconds: f64,
        output_rows: u64,
        /// True when any fault was active during execution — the measured
        /// runtime is real but not representative of a healthy cluster.
        degraded: bool,
    },
    /// Aborted by the caller-supplied timeout; `limit` seconds were spent.
    TimedOut { limit: f64 },
    /// Aborted by the fault layer; `seconds` were spent before the failure
    /// was detected.
    Failed { reason: FailReason, seconds: f64 },
}

impl QueryOutcome {
    /// Seconds charged to the clock.
    pub fn seconds(&self) -> f64 {
        match self {
            Self::Completed { seconds, .. } => *seconds,
            Self::TimedOut { limit } => *limit,
            Self::Failed { seconds, .. } => *seconds,
        }
    }

    pub fn completed(&self) -> Option<f64> {
        match self {
            Self::Completed { seconds, .. } => Some(*seconds),
            Self::TimedOut { .. } => None,
            Self::Failed { .. } => None,
        }
    }

    /// True when the execution produced a healthy, representative
    /// measurement (completed with no active fault).
    pub fn is_clean(&self) -> bool {
        match self {
            Self::Completed { degraded, .. } => !degraded,
            Self::TimedOut { .. } => false,
            Self::Failed { .. } => false,
        }
    }

    /// The failure reason, when the fault layer aborted the execution.
    pub fn failure(&self) -> Option<FailReason> {
        match self {
            Self::Completed { .. } => None,
            Self::TimedOut { .. } => None,
            Self::Failed { reason, .. } => Some(*reason),
        }
    }
}

/// The checkpointable portion of a [`Cluster`]: captured by
/// [`Cluster::resume_state`] and re-applied by
/// [`Cluster::restore_resume_state`] onto a cluster rebuilt from the same
/// base schema + config.
#[derive(Clone, Debug)]
pub struct ClusterResumeState {
    pub deployed: Partitioning,
    pub clock_seconds: f64,
    pub stats_epoch: u64,
    pub growth: Vec<f64>,
    pub queries_executed: u64,
    pub tables_repartitioned: u64,
    pub faults: FaultPlan,
    pub fault_accounting: FaultAccounting,
}

/// A simulated distributed database cluster holding generated data sharded
/// by the currently deployed partitioning.
#[derive(Debug)]
pub struct Cluster {
    base_schema: Schema,
    schema: Schema,
    config: ClusterConfig,
    db: Database,
    deployed: Partitioning,
    layouts: Vec<Layout>,
    optimizer: OptimizerEstimator,
    clock_seconds: f64,
    stats_epoch: u64,
    /// Per-table growth multipliers accumulated by bulk updates.
    growth: Vec<f64>,
    queries_executed: u64,
    tables_repartitioned: u64,
    /// Deterministic fault schedule (inert by default).
    faults: FaultPlan,
    fault_accounting: FaultAccounting,
    /// Reusable columnar-executor buffers (transient — excluded from
    /// resume state; contents never outlive one `run_query`).
    exec_scratch: crate::ExecScratch,
}

impl Cluster {
    /// Generate data for `schema` and deploy the initial partitioning.
    pub fn new(schema: Schema, config: ClusterConfig) -> Self {
        let n_tables = schema.tables().len();
        let db = Database::generate(&schema, config.seed);
        let deployed = Partitioning::initial(&schema);
        let layouts = Self::compute_layouts(&schema, &db, &config, &deployed);
        let optimizer = OptimizerEstimator::new(config.engine, config.hardware);
        Self {
            base_schema: schema.clone(),
            schema,
            config,
            db,
            deployed,
            layouts,
            optimizer,
            clock_seconds: 0.0,
            stats_epoch: 0,
            growth: vec![1.0; n_tables],
            queries_executed: 0,
            tables_repartitioned: 0,
            faults: FaultPlan::none(),
            fault_accounting: FaultAccounting::default(),
            exec_scratch: crate::ExecScratch::default(),
        }
    }

    /// The same cluster under a fault schedule (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Install a fault schedule on a running cluster.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The fault state active at the current simulated clock.
    pub fn fault_state(&self) -> FaultState {
        self.faults
            .state_at(self.clock_seconds, self.config.hardware.nodes)
    }

    /// Cumulative fault-layer counters (execution-side view).
    pub fn fault_accounting(&self) -> FaultAccounting {
        self.fault_accounting
    }

    /// Snapshot of cluster health at the current simulated clock.
    pub fn health(&self) -> ClusterHealth {
        let state = self.fault_state();
        ClusterHealth {
            nodes: self.config.hardware.nodes,
            nodes_down: state.nodes_down(),
            stragglers: state.stragglers(),
            degraded_links: state.degraded_links(),
            accounting: self.fault_accounting,
        }
    }

    fn compute_layouts(
        schema: &Schema,
        db: &Database,
        config: &ClusterConfig,
        p: &Partitioning,
    ) -> Vec<Layout> {
        (0..schema.tables().len())
            .map(|t| {
                layout_table(
                    db,
                    &config.engine,
                    config.hardware.nodes,
                    TableId(t),
                    p.table_state(TableId(t)),
                )
            })
            .collect()
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn engine(&self) -> &EngineProfile {
        &self.config.engine
    }

    pub fn deployed(&self) -> &Partitioning {
        &self.deployed
    }

    /// Simulated wall-clock seconds spent so far (queries + repartitioning).
    pub fn clock(&self) -> f64 {
        self.clock_seconds
    }

    /// Charge extra simulated time (e.g. coordination overhead in training
    /// loops).
    pub fn advance_clock(&mut self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.clock_seconds += seconds;
    }

    /// Number of queries actually executed (the runtime cache avoids most).
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }

    /// Number of single-table repartitionings performed.
    pub fn tables_repartitioned(&self) -> u64 {
        self.tables_repartitioned
    }

    /// Statistics epoch (bumped by bulk updates; plans can change).
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Deploy a new partitioning: repartition every table whose physical
    /// state changes, charging the movement time. Returns seconds spent.
    pub fn deploy(&mut self, target: &Partitioning) -> f64 {
        let changed = self.deployed.diff_tables(target);
        let mut seconds = 0.0;
        for t in changed {
            seconds += self.repartition_time(t, target);
            self.layouts[t.0] = layout_table(
                &self.db,
                &self.config.engine,
                self.config.hardware.nodes,
                t,
                target.table_state(t),
            );
            self.tables_repartitioned += 1;
        }
        self.deployed = target.clone();
        self.clock_seconds += seconds;
        seconds
    }

    /// Estimated cost of repartitioning from one partitioning to another
    /// without performing it (used by training-time ledgers).
    pub fn repartition_cost(&self, from: &Partitioning, to: &Partitioning) -> f64 {
        from.diff_tables(to)
            .into_iter()
            .map(|t| self.repartition_time(t, to))
            .sum()
    }

    fn repartition_time(&self, t: TableId, target: &Partitioning) -> f64 {
        let bytes = self.schema.table(t).bytes() as f64;
        let n = self.config.hardware.nodes as f64;
        let move_factor = match target.table_state(t) {
            lpa_partition::TableState::Replicated => n - 1.0,
            lpa_partition::TableState::PartitionedBy(_) => (n - 1.0) / n,
        };
        let transfer = bytes * move_factor / self.config.hardware.aggregate_net();
        // Disk-based engines rewrite the table on both ends.
        let rewrite = bytes * self.config.engine.repartition_penalty
            / if self.config.engine.disk_based {
                self.config.hardware.disk_scan_bandwidth
            } else {
                self.config.hardware.mem_scan_bandwidth
            };
        transfer + rewrite / n
    }

    /// Execute one query against the deployed partitioning, charging the
    /// clock. With a timeout, execution aborts once the budget is spent.
    /// Faults scheduled for the current simulated instant apply: transient
    /// errors and unreachable unreplicated shards abort with
    /// [`QueryOutcome::Failed`]; stragglers and degraded links inflate the
    /// charged time and mark the completion degraded.
    pub fn run_query(&mut self, query: &Query, timeout: Option<f64>) -> QueryOutcome {
        let faults = self.fault_state();
        self.queries_executed += 1;

        // Transient error: the connection dies before any real work; only
        // the per-query overhead is charged. Deterministic in (seed,
        // window, execution number), so a retry after backoff re-rolls.
        if self
            .faults
            .transient_failure(self.clock_seconds, self.queries_executed)
        {
            let seconds = self.config.engine.query_overhead;
            self.clock_seconds += seconds;
            self.fault_accounting.queries_failed += 1;
            self.fault_accounting.transient_failures += 1;
            return QueryOutcome::Failed {
                reason: FailReason::Transient,
                seconds,
            };
        }

        // Replica-aware failover: a crashed node takes its unreplicated
        // shards with it, so any query touching a partitioned table fails
        // until recovery; queries over replicated tables read the copies
        // on surviving nodes.
        if faults.nodes_down() > 0 {
            if let Some(node) = self.unreachable_shard(query, &faults) {
                let seconds = self.config.engine.query_overhead;
                self.clock_seconds += seconds;
                self.fault_accounting.queries_failed += 1;
                self.fault_accounting.node_down_failures += 1;
                return QueryOutcome::Failed {
                    reason: FailReason::NodeDown { node },
                    seconds,
                };
            }
        }

        let plan = self
            .optimizer
            .plan(&self.schema, query, &self.deployed, self.stats_epoch);
        let exec = Executor {
            schema: &self.schema,
            db: &self.db,
            engine: &self.config.engine,
            hw: &self.config.hardware,
            layouts: &self.layouts,
            faults: &faults,
        };
        match exec.execute_with(query, &plan, timeout, &mut self.exec_scratch) {
            Some(r) => {
                self.clock_seconds += r.seconds;
                let degraded = faults.any_fault();
                if degraded {
                    self.fault_accounting.degraded_completions += 1;
                }
                if faults.nodes_down() > 0 {
                    self.fault_accounting.failovers += 1;
                }
                QueryOutcome::Completed {
                    seconds: r.seconds,
                    output_rows: r.output_rows,
                    degraded,
                }
            }
            None => {
                // Execution only aborts when a timeout was set; a missing
                // limit degrades to an instant timeout rather than a panic.
                let limit = timeout.unwrap_or(0.0);
                self.clock_seconds += limit;
                self.fault_accounting.timeouts += 1;
                QueryOutcome::TimedOut { limit }
            }
        }
    }

    /// First down node whose loss makes the query unservable: any scanned
    /// table that is partitioned (not replicated) has exactly one copy of
    /// each shard, so a single down node cuts it.
    fn unreachable_shard(&self, query: &Query, faults: &FaultState) -> Option<usize> {
        let node = faults.down.iter().position(|d| *d)?;
        for t in &query.tables {
            if matches!(self.layouts[t.0], Layout::Hashed { .. }) {
                return Some(node);
            }
        }
        None
    }

    /// Run the whole workload once, returning the frequency-weighted total
    /// runtime `Σ_j f_j · c(P, q_j)`.
    pub fn run_workload(&mut self, workload: &Workload, freqs: &FrequencyVector) -> f64 {
        workload
            .queries()
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let f = freqs.as_slice().get(i).copied().unwrap_or(0.0);
                if f == 0.0 {
                    0.0
                } else {
                    f * self.run_query(q, None).seconds()
                }
            })
            .sum()
    }

    /// Optimizer cost estimate for a candidate partitioning (the classical
    /// baseline's objective). `None` on engines without optimizer access.
    pub fn optimizer_estimate(&self, query: &Query, candidate: &Partitioning) -> Option<f64> {
        self.optimizer
            .estimate_cost(&self.schema, query, candidate, self.stats_epoch)
    }

    /// Bulk-load `fraction` more data into every table (statistics change,
    /// the deployed partitioning is preserved).
    pub fn bulk_update(&mut self, fraction: f64) {
        let all: Vec<TableId> = (0..self.base_schema.tables().len()).map(TableId).collect();
        self.bulk_update_tables(fraction, &all);
    }

    /// Bulk-load `fraction` more data into the listed tables only — the
    /// Fig. 4b experiment grows just the transactional tables, matching
    /// TPC-H's refresh functions (which insert new orders and lineitems,
    /// not new customers).
    pub fn bulk_update_tables(&mut self, fraction: f64, tables: &[TableId]) {
        assert!(fraction >= 0.0);
        for t in tables {
            self.growth[t.0] += fraction;
        }
        self.schema = self.base_schema.clone().scaled_per_table(&self.growth);
        self.db = Database::generate(&self.schema, self.config.seed);
        self.layouts = Self::compute_layouts(&self.schema, &self.db, &self.config, &self.deployed);
        self.stats_epoch += 1;
    }

    /// The mutable state a checkpoint must carry to resume this cluster
    /// bit-identically. Everything else (generated rows, layouts, the
    /// optimizer) is a pure function of `(base schema, config, growth,
    /// deployed)` and is regenerated on restore.
    pub fn resume_state(&self) -> ClusterResumeState {
        ClusterResumeState {
            deployed: self.deployed.clone(),
            clock_seconds: self.clock_seconds,
            stats_epoch: self.stats_epoch,
            growth: self.growth.clone(),
            queries_executed: self.queries_executed,
            tables_repartitioned: self.tables_repartitioned,
            faults: self.faults,
            fault_accounting: self.fault_accounting,
        }
    }

    /// Apply checkpointed state onto a cluster freshly built over the same
    /// base schema and config. Regenerates data, layouts and statistics;
    /// `Err` (never panics: this is the recovery path) when the state does
    /// not fit the schema.
    pub fn restore_resume_state(&mut self, st: ClusterResumeState) -> Result<(), String> {
        if st.growth.len() != self.base_schema.tables().len() {
            return Err(format!(
                "growth vector has {} entries for {} tables",
                st.growth.len(),
                self.base_schema.tables().len()
            ));
        }
        self.growth = st.growth;
        self.schema = self.base_schema.clone().scaled_per_table(&self.growth);
        st.deployed.check(&self.schema)?;
        self.db = Database::generate(&self.schema, self.config.seed);
        self.deployed = st.deployed;
        self.layouts = Self::compute_layouts(&self.schema, &self.db, &self.config, &self.deployed);
        self.clock_seconds = st.clock_seconds;
        self.stats_epoch = st.stats_epoch;
        self.queries_executed = st.queries_executed;
        self.tables_repartitioned = st.tables_repartitioned;
        self.faults = st.faults;
        self.fault_accounting = st.fault_accounting;
        Ok(())
    }

    /// A fresh cluster over a sample of the data (`fraction` of the rows),
    /// used for online training (Section 4.2, Sampling). Join integrity is
    /// preserved by sampling parents and children together.
    pub fn sampled(&self, fraction: f64) -> Cluster {
        assert!(fraction > 0.0 && fraction <= 1.0);
        let factors: Vec<f64> = self.growth.iter().map(|g| g * fraction).collect();
        let mut sample = Cluster::new(
            self.base_schema.clone().scaled_per_table(&factors),
            self.config,
        );
        // The sample inherits the fault schedule, rescaled to its faster
        // clock so per-query fault density is preserved rather than
        // silently dropped.
        sample.faults = self.faults.rescaled(fraction);
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_partition::Action;

    fn micro_cluster() -> (Cluster, Workload) {
        let schema = lpa_schema::microbench::schema(0.003).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let c = Cluster::new(
            schema,
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        (c, w)
    }

    #[test]
    fn query_runs_and_charges_clock() {
        let (mut c, w) = micro_cluster();
        let before = c.clock();
        let out = c.run_query(&w.queries()[0], None);
        let secs = out.completed().expect("no timeout");
        assert!(secs > 0.0);
        assert!((c.clock() - before - secs).abs() < 1e-12);
        assert_eq!(c.queries_executed(), 1);
    }

    #[test]
    fn join_produces_expected_cardinality() {
        // a ⋈ b with 3% filter on b: expect about 3% of a's rows.
        let (mut c, w) = micro_cluster();
        let a_rows = c.schema().table(lpa_schema::microbench::tables::A).rows as f64;
        let out = c.run_query(&w.queries()[0], None);
        match out {
            QueryOutcome::Completed { output_rows, .. } => {
                let expected = a_rows * 0.03;
                assert!(
                    (output_rows as f64) > expected * 0.5 && (output_rows as f64) < expected * 1.8,
                    "got {output_rows}, expected ≈{expected}"
                );
            }
            QueryOutcome::TimedOut { .. } | QueryOutcome::Failed { .. } => {
                panic!("expected completion")
            }
        }
    }

    #[test]
    fn co_partitioning_reduces_measured_runtime() {
        let (mut c, w) = micro_cluster();
        let schema = c.schema().clone();
        let q_ac = &w.queries()[1]; // a ⋈ c
        let base = c.run_query(q_ac, None).completed().unwrap();
        // Co-partition a with c.
        let e_ac = schema
            .edge_between(
                schema.attr_ref("a", "a_c_key").unwrap(),
                schema.attr_ref("c", "c_key").unwrap(),
            )
            .unwrap();
        let co = Action::ActivateEdge(e_ac)
            .apply(&schema, &Partitioning::initial(&schema))
            .unwrap();
        let rep_secs = c.deploy(&co);
        assert!(rep_secs > 0.0, "repartitioning costs time");
        let local = c.run_query(q_ac, None).completed().unwrap();
        assert!(
            local < base,
            "co-partitioned join {local} should beat shuffled {base}"
        );
    }

    #[test]
    fn replication_kills_shuffle_bytes() {
        let (mut c, w) = micro_cluster();
        let schema = c.schema().clone();
        let b = schema.table_by_name("b").unwrap();
        let repl = Action::Replicate { table: b }
            .apply(&schema, &Partitioning::initial(&schema))
            .unwrap();
        c.deploy(&repl);
        let q_ab = &w.queries()[0];
        let out = c.run_query(q_ab, None).completed().unwrap();
        assert!(out > 0.0);
        // Compare against the partitioned variant on a fresh cluster.
        let (mut c2, _) = micro_cluster();
        let shuffled = c2.run_query(q_ab, None).completed().unwrap();
        // Both complete; exact ordering depends on the hardware profile,
        // but the replicated run must not shuffle b.
        let _ = shuffled;
    }

    #[test]
    fn timeouts_abort() {
        let (mut c, w) = micro_cluster();
        let out = c.run_query(&w.queries()[0], Some(1e-9));
        assert!(matches!(out, QueryOutcome::TimedOut { .. }));
        assert!(out.completed().is_none());
        // Cluster-level accounting sees the abort (service reports used to
        // under-count because only the online backend tracked timeouts).
        assert_eq!(c.fault_accounting().timeouts, 1);
        c.run_query(&w.queries()[0], Some(1e-9));
        assert_eq!(c.fault_accounting().timeouts, 2);
    }

    #[test]
    fn sampled_cluster_inherits_rescaled_fault_plan() {
        let (mut c, _) = micro_cluster();
        let plan = crate::faults::FaultPlan::storm(21);
        c.set_fault_plan(plan);
        let sample = c.sampled(0.25);
        let carried = sample.fault_plan();
        assert_eq!(carried.seed, plan.seed);
        assert_eq!(carried.crash_rate, plan.crash_rate);
        assert!(
            (carried.window_seconds - plan.window_seconds * 0.25).abs() < 1e-15,
            "sample windows must shrink with the sample's clock"
        );
        // Regression: before the chaos layer, `sampled` dropped all state
        // it did not explicitly copy — an inert plan must stay inert too.
        let inert = Cluster::new(c.schema().clone(), *c.config()).sampled(0.5);
        assert!(inert.fault_plan().is_inert());
    }

    #[test]
    fn replicated_tables_survive_node_loss_partitioned_fail() {
        let (mut c, w) = micro_cluster();
        let schema = c.schema().clone();
        // Crash every node the plan can (one deterministic survivor stays).
        let mut plan = crate::faults::FaultPlan::storm(5);
        plan.crash_rate = 1.0;
        plan.transient_rate = 0.0;
        c.set_fault_plan(plan);
        assert!(c.fault_state().nodes_down() > 0);

        // All tables partitioned (initial deployment): the query fails.
        let q = &w.queries()[0];
        let out = c.run_query(q, None);
        assert!(
            matches!(
                out.failure(),
                Some(crate::faults::FailReason::NodeDown { .. })
            ),
            "partitioned tables must be unservable while a node is down, got {out:?}"
        );
        assert!(c.fault_accounting().node_down_failures >= 1);

        // Replicate every table the query touches: it now fails over.
        let mut target = Partitioning::initial(&schema);
        for t in 0..schema.tables().len() {
            target = lpa_partition::Action::Replicate { table: TableId(t) }
                .apply(&schema, &target)
                .unwrap_or(target);
        }
        c.deploy(&target);
        let out = c.run_query(q, None);
        match out {
            QueryOutcome::Completed {
                seconds, degraded, ..
            } => {
                assert!(seconds > 0.0);
                assert!(degraded, "completion under faults must be flagged");
            }
            QueryOutcome::TimedOut { .. } | QueryOutcome::Failed { .. } => {
                panic!("replicated query should fail over, got {out:?}")
            }
        }
        assert!(c.fault_accounting().failovers >= 1);
        assert!(c.health().degraded_measurements() >= 1);
    }

    #[test]
    fn straggler_inflates_runtime_deterministically() {
        let (mut healthy, w) = micro_cluster();
        let q = &w.queries()[0];
        let base = healthy.run_query(q, None).seconds();

        let (mut slow, _) = micro_cluster();
        let mut plan = crate::faults::FaultPlan::storm(11);
        plan.crash_rate = 0.0;
        plan.transient_rate = 0.0;
        plan.link_degrade_rate = 0.0;
        plan.straggle_rate = 1.0;
        plan.straggle_factor = 8.0;
        slow.set_fault_plan(plan);
        let out = slow.run_query(q, None);
        let degraded_secs = out.seconds();
        assert!(
            degraded_secs > base,
            "straggling nodes must slow the query: {degraded_secs} vs {base}"
        );
        assert!(!out.is_clean());

        // Same plan, same clock → same inflated runtime.
        let (mut slow2, _) = micro_cluster();
        slow2.set_fault_plan(plan);
        assert_eq!(slow2.run_query(q, None).seconds(), degraded_secs);
    }

    #[test]
    fn deploy_is_idempotent_and_lazy() {
        let (mut c, _) = micro_cluster();
        let p = c.deployed().clone();
        let secs = c.deploy(&p);
        assert_eq!(secs, 0.0, "no table changed, nothing to move");
        assert_eq!(c.tables_repartitioned(), 0);
    }

    #[test]
    fn bulk_update_grows_tables_and_bumps_epoch() {
        let (mut c, w) = micro_cluster();
        let rows_before = c.schema().table(TableId(0)).rows;
        let t_before = c.run_query(&w.queries()[0], None).seconds();
        c.bulk_update(0.6);
        assert_eq!(c.stats_epoch(), 1);
        assert!(c.schema().table(TableId(0)).rows > rows_before);
        let t_after = c.run_query(&w.queries()[0], None).seconds();
        assert!(t_after > t_before, "more data, longer runtime");
    }

    #[test]
    fn sampled_cluster_is_smaller_and_faster() {
        let (c, w) = micro_cluster();
        let mut sample = c.sampled(0.2);
        assert!(sample.schema().table(TableId(0)).rows < c.schema().table(TableId(0)).rows);
        let out = sample.run_query(&w.queries()[0], None);
        assert!(out.completed().unwrap() > 0.0);
    }

    #[test]
    fn district_copartitioning_makes_tpcch_key_join_local() {
        // End-to-end check of the inheritance machinery: co-partitioning
        // order and customer by district makes the key join local (zero
        // shuffled bytes for that join) even though the join is on c_key.
        let schema = lpa_schema::tpcch::schema(0.0015).expect("schema builds");
        let w = lpa_workload::tpcch::workload(&schema).expect("workload builds");
        let q13 = w.queries().iter().find(|q| q.name == "ch_q13").unwrap();
        let mut c = Cluster::new(
            schema.clone(),
            ClusterConfig::new(EngineProfile::pgxl(), HardwareProfile::standard()),
        );
        let pk_time = c.run_query(q13, None).completed().unwrap();
        let e = schema
            .edge_between(
                schema.attr_ref("customer", "c_d_id").unwrap(),
                schema.attr_ref("order", "o_d_id").unwrap(),
            )
            .unwrap();
        let co = Action::ActivateEdge(e)
            .apply(&schema, &Partitioning::initial(&schema))
            .unwrap();
        c.deploy(&co);
        let co_time = c.run_query(q13, None).completed().unwrap();
        // District partitioning is local but skewed; it should still beat
        // the full shuffle on a disk-based engine.
        assert!(
            co_time < pk_time,
            "local-but-skewed {co_time} vs shuffle {pk_time}"
        );
    }
}
