//! Safe-deployment guardrails: canary windows, observed-regression
//! rollback, repartitioning budgets.
//!
//! The advisor deploys whenever its *learned model predicts* improvement —
//! a circular trust (the model judging its own suggestion) that Hilprecht
//! et al. flag as the core risk of DRL advisors. This module breaks the
//! circle with *observed* evidence: every suggested partitioning is staged
//! through a canary window whose measured, fault-aware runtimes are
//! compared against a pre-deploy baseline, and the deployment is rolled
//! back — migration cost charged on the simulated clock like any
//! repartitioning — the moment observation contradicts prediction.
//!
//! The state machine (DESIGN.md §15):
//!
//! ```text
//! Baseline ──stage──▶ Canary ──clean windows, no regression──▶ Committed ─▶ Baseline
//!    ▲                  │ │
//!    │                  │ └──inconclusive (faults) ──▶ extend (bounded)
//!    └──────rollback────┴──observed regression / evidence exhausted
//! ```
//!
//! Decisions are pure functions of `(config, baseline stats, observed
//! stats)` — no wall clocks, no unseeded randomness — so a canary
//! interrupted by a crash and resumed from a checkpoint reaches the same
//! verdict as an uninterrupted run, bit for bit.
//!
//! This module owns **all** calls to [`Cluster::deploy`]: lint rule L015
//! rejects `.deploy(` anywhere else in library code, so the only paths
//! that can change a production layout are [`Guardrail::end_window`] (the
//! guarded control loop) and [`direct_deploy`] (the auditable bootstrap /
//! evaluation bypass below).

use crate::cluster::{Cluster, QueryOutcome};
use lpa_partition::{Partitioning, TableState};
use lpa_workload::{FrequencyVector, Workload};

/// Guardrail knobs. `Copy` on purpose: configs travel into checkpoints and
/// per-tenant fleet state by value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardrailConfig {
    /// Clean (conclusive) observation windows a canary must survive before
    /// the verdict. `0` disables canarying entirely — suggestions that
    /// pass the economic gates deploy and commit immediately, reproducing
    /// the unguarded legacy behavior (the experiment control).
    pub canary_windows: u32,
    /// Commit only if `mean observed ≤ baseline × (1 + threshold)`;
    /// anything slower is an observed regression and rolls back.
    pub regression_threshold: f64,
    /// A window is *conclusive* only if no query failed and at most this
    /// fraction of measurements was fault-degraded. The default `0.0`
    /// accepts only storm-free evidence.
    pub max_degraded_fraction: f64,
    /// Inconclusive (fault-degraded) canary windows tolerated before the
    /// guardrail stops waiting for clean evidence and rolls back.
    pub max_extensions: u32,
    /// Hysteresis: after a verdict (commit *or* rollback) no new canary
    /// may start for this many windows, so flapping workloads cannot
    /// trigger repartitioning storms.
    pub cooldown_windows: u64,
    /// Budget horizon: at most [`Self::budget_deploys`] canaries may start
    /// within any `budget_window` consecutive windows.
    pub budget_window: u64,
    /// Max canaries started per tenant per [`Self::budget_window`].
    pub budget_deploys: u32,
    /// Expected full-workload executions per decision window — converts a
    /// per-run predicted benefit into a per-window benefit.
    pub runs_per_window: f64,
    /// Stage only if `benefit × runs_per_window × amortization_windows >
    /// repartitioning cost` (the paper's "does repartitioning pay off in
    /// the long run").
    pub amortization_windows: f64,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        Self {
            canary_windows: 2,
            regression_threshold: 0.05,
            max_degraded_fraction: 0.0,
            max_extensions: 4,
            cooldown_windows: 2,
            budget_window: 16,
            budget_deploys: 2,
            runs_per_window: 20.0,
            amortization_windows: 4.0,
        }
    }
}

impl GuardrailConfig {
    /// A guardrail that guards nothing: any predicted improvement deploys
    /// immediately, no canary, no cool-down, no budget — the legacy deploy
    /// path, kept callable as the control arm of guardrail experiments.
    pub fn inert() -> Self {
        Self {
            canary_windows: 0,
            regression_threshold: f64::INFINITY,
            max_degraded_fraction: 1.0,
            max_extensions: 0,
            cooldown_windows: 0,
            budget_window: 1,
            budget_deploys: u32::MAX,
            runs_per_window: 1.0,
            amortization_windows: f64::INFINITY,
        }
    }
}

/// Schema-free summary of a [`Partitioning`] — what journal entries carry,
/// so a deployment journal can be replayed without the tenant's schema.
/// `tables[i]` is `0` for a replicated table, `attr index + 1` for a
/// hash-partitioned one; `edges` are the co-partitioning flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LayoutDigest {
    pub tables: Vec<u64>,
    pub edges: Vec<bool>,
}

impl LayoutDigest {
    pub fn of(p: &Partitioning) -> Self {
        Self {
            tables: p
                .table_states()
                .iter()
                .map(|s| match s {
                    TableState::Replicated => 0,
                    TableState::PartitionedBy(a) => a.0 as u64 + 1,
                })
                .collect(),
            edges: p.edge_flags().to_vec(),
        }
    }
}

/// Fault-aware runtime evidence from one observation window: the
/// frequency-weighted runtime of every completed query plus how much of
/// the window the fault layer touched.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowObservation {
    /// `Σ_j f_j · c(P, q_j)` over completed queries.
    pub weighted_seconds: f64,
    /// Completions with no active fault (representative measurements).
    pub clean: u64,
    /// Completions measured while a fault was active.
    pub degraded: u64,
    /// Queries the fault layer (or a timeout) aborted.
    pub failed: u64,
}

impl WindowObservation {
    pub fn total(&self) -> u64 {
        self.clean + self.degraded + self.failed
    }

    /// Whether this window is usable evidence: nothing failed and the
    /// degraded fraction stays within the configured tolerance.
    pub fn conclusive(&self, max_degraded_fraction: f64) -> bool {
        self.failed == 0
            && (self.total() == 0
                || self.degraded as f64 <= max_degraded_fraction * self.total() as f64)
    }
}

/// Run every query with a positive frequency once, charging the simulated
/// clock, and fold the outcomes into a [`WindowObservation`].
pub fn observe_window(
    cluster: &mut Cluster,
    workload: &Workload,
    freqs: &FrequencyVector,
) -> WindowObservation {
    let mut obs = WindowObservation::default();
    for (i, query) in workload.queries().iter().enumerate() {
        let f = freqs.as_slice().get(i).copied().unwrap_or(0.0);
        if f == 0.0 {
            continue;
        }
        match cluster.run_query(query, None) {
            QueryOutcome::Completed {
                seconds, degraded, ..
            } => {
                obs.weighted_seconds += f * seconds;
                if degraded {
                    obs.degraded += 1;
                } else {
                    obs.clean += 1;
                }
            }
            QueryOutcome::TimedOut { .. } | QueryOutcome::Failed { .. } => obs.failed += 1,
        }
    }
    obs
}

/// Why a canary was rolled back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollbackReason {
    /// Observed mean runtime exceeded the baseline by more than the
    /// regression threshold.
    ObservedRegression,
    /// The fault layer degraded too many windows: the extension budget ran
    /// out before enough clean evidence accumulated, and an unproven
    /// layout is not kept on faith.
    DegradedEvidence,
}

/// Why a candidate was not staged this window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Hysteresis: a verdict landed less than `cooldown_windows` ago.
    CoolDown,
    /// The tenant spent its `budget_deploys` for the current horizon.
    TenantBudget,
    /// The fleet-wide aggregate deploy budget is exhausted.
    FleetBudget,
    /// The pre-deploy baseline window itself was fault-degraded — staging
    /// deferred until the evidence would mean something.
    DegradedBaseline,
}

/// One entry of the deployment audit trail. Everything in here is plain
/// data (layouts as [`LayoutDigest`]) so `lpa-store` can frame, persist
/// and replay events without schema access.
#[derive(Clone, Debug, PartialEq)]
pub enum GuardrailEvent {
    /// The candidate did not pay for its own migration (or predicted no
    /// improvement); nothing staged.
    KeptCurrent {
        window: u64,
        benefit_per_run: f64,
        repartition_cost: f64,
    },
    /// The candidate paid off on paper but a guardrail said no.
    StageRejected { window: u64, reason: RejectReason },
    /// Candidate deployed, canary opened (baseline measured on the old
    /// layout immediately before the deploy).
    CanaryStarted {
        window: u64,
        candidate: LayoutDigest,
        previous: LayoutDigest,
        baseline_seconds: f64,
        benefit_per_run: f64,
        repartition_cost: f64,
    },
    /// One canary observation window closed.
    CanaryObserved {
        window: u64,
        observed: WindowObservation,
    },
    /// The window was inconclusive; the canary waits for cleaner evidence.
    CanaryExtended { window: u64, inconclusive: u32 },
    /// Observed evidence confirmed the prediction; the layout stays.
    Committed {
        window: u64,
        mean_observed: f64,
        baseline_seconds: f64,
    },
    /// Observed evidence contradicted the prediction; the previous layout
    /// was restored, migration cost charged.
    RolledBack {
        window: u64,
        reason: RollbackReason,
        mean_observed: f64,
        baseline_seconds: f64,
        rollback_seconds: f64,
        restored: LayoutDigest,
    },
}

impl GuardrailEvent {
    /// The decision window the event belongs to.
    pub fn window(&self) -> u64 {
        match self {
            Self::KeptCurrent { window, .. }
            | Self::StageRejected { window, .. }
            | Self::CanaryStarted { window, .. }
            | Self::CanaryObserved { window, .. }
            | Self::CanaryExtended { window, .. }
            | Self::Committed { window, .. }
            | Self::RolledBack { window, .. } => *window,
        }
    }
}

/// The guardrail ledger: every decision counted, flowing into
/// `WindowReport` / `FleetReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GuardrailAccounting {
    /// Decision windows the guardrail closed.
    pub windows: u64,
    pub canaries_started: u64,
    pub commits: u64,
    pub rollbacks_regression: u64,
    pub rollbacks_degraded: u64,
    /// Inconclusive canary windows that extended the canary.
    pub extensions: u64,
    /// Candidates that failed the economic (amortization) gate.
    pub kept_current: u64,
    pub rejected_cooldown: u64,
    pub rejected_budget: u64,
    pub rejected_fleet_budget: u64,
    /// Stages deferred because the baseline window itself was degraded.
    pub deferred_degraded_baseline: u64,
    /// Simulated seconds spent migrating *to* candidates.
    pub deploy_seconds: f64,
    /// Simulated seconds spent migrating *back* after rollbacks.
    pub rollback_seconds: f64,
}

impl GuardrailAccounting {
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks_regression + self.rollbacks_degraded
    }

    /// Fold another ledger into this one (fleet-wide aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.windows += other.windows;
        self.canaries_started += other.canaries_started;
        self.commits += other.commits;
        self.rollbacks_regression += other.rollbacks_regression;
        self.rollbacks_degraded += other.rollbacks_degraded;
        self.extensions += other.extensions;
        self.kept_current += other.kept_current;
        self.rejected_cooldown += other.rejected_cooldown;
        self.rejected_budget += other.rejected_budget;
        self.rejected_fleet_budget += other.rejected_fleet_budget;
        self.deferred_degraded_baseline += other.deferred_degraded_baseline;
        self.deploy_seconds += other.deploy_seconds;
        self.rollback_seconds += other.rollback_seconds;
    }
}

/// An open canary: the candidate is deployed, the old layout and the
/// pre-deploy baseline are retained, evidence accumulates.
#[derive(Clone, Debug, PartialEq)]
pub struct CanaryState {
    /// Layout to restore on rollback.
    pub previous: Partitioning,
    pub candidate: Partitioning,
    /// Mix pinned at stage time: the canary re-measures the workload the
    /// baseline measured, so mix drift cannot masquerade as regression.
    pub pinned_mix: FrequencyVector,
    pub baseline: WindowObservation,
    pub benefit_per_run: f64,
    pub repartition_cost: f64,
    pub opened_window: u64,
    pub clean_windows: u32,
    pub observed_sum: f64,
    pub inconclusive_windows: u32,
}

/// What one more observation window does to an open canary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CanaryStep {
    /// Inconclusive window absorbed; the canary extends.
    Extended,
    /// Clean window absorbed; more evidence still required.
    AwaitMore,
    Verdict(CanaryVerdict),
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CanaryVerdict {
    Commit {
        mean_observed: f64,
    },
    Rollback {
        reason: RollbackReason,
        mean_observed: f64,
    },
}

impl CanaryState {
    fn mean_observed(&self) -> f64 {
        if self.clean_windows == 0 {
            0.0
        } else {
            self.observed_sum / self.clean_windows as f64
        }
    }

    /// Absorb one observation window. **Pure** in `(cfg, prior state,
    /// obs)`: no clocks, no randomness, no cluster access — the property
    /// the resume-bit-identity argument rests on, and what the verdict
    /// property tests drive directly.
    pub fn absorb(&mut self, cfg: &GuardrailConfig, obs: WindowObservation) -> CanaryStep {
        if !obs.conclusive(cfg.max_degraded_fraction) {
            self.inconclusive_windows += 1;
            if self.inconclusive_windows > cfg.max_extensions {
                return CanaryStep::Verdict(CanaryVerdict::Rollback {
                    reason: RollbackReason::DegradedEvidence,
                    mean_observed: self.mean_observed(),
                });
            }
            return CanaryStep::Extended;
        }
        self.clean_windows += 1;
        self.observed_sum += obs.weighted_seconds;
        if self.clean_windows < cfg.canary_windows {
            return CanaryStep::AwaitMore;
        }
        let mean = self.mean_observed();
        if mean > self.baseline.weighted_seconds * (1.0 + cfg.regression_threshold) {
            CanaryStep::Verdict(CanaryVerdict::Rollback {
                reason: RollbackReason::ObservedRegression,
                mean_observed: mean,
            })
        } else {
            CanaryStep::Verdict(CanaryVerdict::Commit {
                mean_observed: mean,
            })
        }
    }
}

/// A candidate the advisor wants deployed, with its predicted per-run
/// benefit (current predicted cost − suggested predicted cost).
#[derive(Clone, Debug)]
pub struct CandidateDeploy {
    pub partitioning: Partitioning,
    pub benefit_per_run: f64,
}

/// Checkpointable guardrail state (everything except the config, which the
/// owning service/fleet carries) — captured into snapshots so a resumed
/// canary continues bit-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GuardrailResumeState {
    pub window: u64,
    pub cooldown_until: u64,
    pub recent_stages: Vec<u64>,
    pub canary: Option<CanaryState>,
    pub accounting: GuardrailAccounting,
}

/// The guardrail: one per production cluster (one per tenant in a fleet).
/// Owns the deploy decision end to end.
#[derive(Debug)]
pub struct Guardrail {
    cfg: GuardrailConfig,
    /// Decision windows closed so far (1-based after the first).
    window: u64,
    /// New canaries allowed only when `window > cooldown_until`.
    cooldown_until: u64,
    /// Windows of canaries started inside the current budget horizon.
    recent_stages: Vec<u64>,
    canary: Option<CanaryState>,
    accounting: GuardrailAccounting,
}

impl Guardrail {
    pub fn new(cfg: GuardrailConfig) -> Self {
        Self {
            cfg,
            window: 0,
            cooldown_until: 0,
            recent_stages: Vec::new(),
            canary: None,
            accounting: GuardrailAccounting::default(),
        }
    }

    pub fn config(&self) -> &GuardrailConfig {
        &self.cfg
    }

    pub fn accounting(&self) -> GuardrailAccounting {
        self.accounting
    }

    pub fn canary_open(&self) -> bool {
        self.canary.is_some()
    }

    pub fn canary(&self) -> Option<&CanaryState> {
        self.canary.as_ref()
    }

    /// Decision windows closed so far.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Capture the checkpointable state (crash recovery).
    pub fn resume_state(&self) -> GuardrailResumeState {
        GuardrailResumeState {
            window: self.window,
            cooldown_until: self.cooldown_until,
            recent_stages: self.recent_stages.clone(),
            canary: self.canary.clone(),
            accounting: self.accounting,
        }
    }

    /// Rebuild from a checkpoint; the config comes from the owning
    /// service/fleet config (it is not part of the mutable state).
    pub fn restore(cfg: GuardrailConfig, state: GuardrailResumeState) -> Self {
        Self {
            cfg,
            window: state.window,
            cooldown_until: state.cooldown_until,
            recent_stages: state.recent_stages,
            canary: state.canary,
            accounting: state.accounting,
        }
    }

    /// Close one decision window: judge an open canary against fresh
    /// observations, or consider staging `candidate` through the full
    /// gate sequence (economics → hysteresis → tenant budget → fleet
    /// budget → clean baseline). `fleet_budget_ok` is the fleet-wide
    /// aggregate budget verdict; standalone services pass `true`.
    ///
    /// This method (plus the rollback inside it) is the only production
    /// path to [`Cluster::deploy`].
    pub fn end_window(
        &mut self,
        cluster: &mut Cluster,
        workload: &Workload,
        mix: &FrequencyVector,
        candidate: Option<CandidateDeploy>,
        fleet_budget_ok: bool,
    ) -> Vec<GuardrailEvent> {
        self.window += 1;
        let window = self.window;
        self.accounting.windows += 1;
        let mut events = Vec::new();
        if self.canary.is_some() {
            self.judge_open_canary(cluster, workload, window, &mut events);
        } else if let Some(cand) = candidate {
            self.consider(
                cluster,
                workload,
                mix,
                window,
                cand,
                fleet_budget_ok,
                &mut events,
            );
        }
        events
    }

    fn judge_open_canary(
        &mut self,
        cluster: &mut Cluster,
        workload: &Workload,
        window: u64,
        events: &mut Vec<GuardrailEvent>,
    ) {
        let Some(mut state) = self.canary.take() else {
            return;
        };
        let obs = observe_window(cluster, workload, &state.pinned_mix);
        events.push(GuardrailEvent::CanaryObserved {
            window,
            observed: obs,
        });
        match state.absorb(&self.cfg, obs) {
            CanaryStep::Extended => {
                self.accounting.extensions += 1;
                events.push(GuardrailEvent::CanaryExtended {
                    window,
                    inconclusive: state.inconclusive_windows,
                });
                self.canary = Some(state);
            }
            CanaryStep::AwaitMore => self.canary = Some(state),
            CanaryStep::Verdict(CanaryVerdict::Commit { mean_observed }) => {
                self.accounting.commits += 1;
                self.cooldown_until = window + self.cfg.cooldown_windows;
                events.push(GuardrailEvent::Committed {
                    window,
                    mean_observed,
                    baseline_seconds: state.baseline.weighted_seconds,
                });
            }
            CanaryStep::Verdict(CanaryVerdict::Rollback {
                reason,
                mean_observed,
            }) => {
                let rollback_seconds = cluster.deploy(&state.previous);
                self.accounting.rollback_seconds += rollback_seconds;
                match reason {
                    RollbackReason::ObservedRegression => {
                        self.accounting.rollbacks_regression += 1;
                    }
                    RollbackReason::DegradedEvidence => self.accounting.rollbacks_degraded += 1,
                }
                self.cooldown_until = window + self.cfg.cooldown_windows;
                events.push(GuardrailEvent::RolledBack {
                    window,
                    reason,
                    mean_observed,
                    baseline_seconds: state.baseline.weighted_seconds,
                    rollback_seconds,
                    restored: LayoutDigest::of(&state.previous),
                });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn consider(
        &mut self,
        cluster: &mut Cluster,
        workload: &Workload,
        mix: &FrequencyVector,
        window: u64,
        cand: CandidateDeploy,
        fleet_budget_ok: bool,
        events: &mut Vec<GuardrailEvent>,
    ) {
        let current = cluster.deployed().clone();
        let repartition_cost = cluster.repartition_cost(&current, &cand.partitioning);
        let benefit = cand.benefit_per_run;
        if benefit <= 0.0
            || benefit * self.cfg.runs_per_window * self.cfg.amortization_windows
                <= repartition_cost
        {
            self.accounting.kept_current += 1;
            events.push(GuardrailEvent::KeptCurrent {
                window,
                benefit_per_run: benefit,
                repartition_cost,
            });
            return;
        }
        if window <= self.cooldown_until {
            self.accounting.rejected_cooldown += 1;
            events.push(GuardrailEvent::StageRejected {
                window,
                reason: RejectReason::CoolDown,
            });
            return;
        }
        self.recent_stages
            .retain(|w| *w + self.cfg.budget_window > window);
        if self.recent_stages.len() as u64 >= self.cfg.budget_deploys as u64 {
            self.accounting.rejected_budget += 1;
            events.push(GuardrailEvent::StageRejected {
                window,
                reason: RejectReason::TenantBudget,
            });
            return;
        }
        if !fleet_budget_ok {
            self.accounting.rejected_fleet_budget += 1;
            events.push(GuardrailEvent::StageRejected {
                window,
                reason: RejectReason::FleetBudget,
            });
            return;
        }
        if self.cfg.canary_windows == 0 {
            // Inert mode: deploy-and-commit without observed evidence —
            // the legacy behavior, kept as the experiment control arm.
            let deploy_seconds = cluster.deploy(&cand.partitioning);
            self.accounting.deploy_seconds += deploy_seconds;
            self.accounting.canaries_started += 1;
            self.accounting.commits += 1;
            self.recent_stages.push(window);
            self.cooldown_until = window + self.cfg.cooldown_windows;
            events.push(GuardrailEvent::CanaryStarted {
                window,
                candidate: LayoutDigest::of(&cand.partitioning),
                previous: LayoutDigest::of(&current),
                baseline_seconds: 0.0,
                benefit_per_run: benefit,
                repartition_cost,
            });
            events.push(GuardrailEvent::Committed {
                window,
                mean_observed: 0.0,
                baseline_seconds: 0.0,
            });
            return;
        }
        // Baseline on the *old* layout, measured right before the deploy
        // so the comparison is apples to apples on the same fault schedule
        // neighborhood. A degraded baseline defers the stage: evidence
        // gathered against a stormy baseline would be meaningless.
        let baseline = observe_window(cluster, workload, mix);
        if !baseline.conclusive(self.cfg.max_degraded_fraction) {
            self.accounting.deferred_degraded_baseline += 1;
            events.push(GuardrailEvent::StageRejected {
                window,
                reason: RejectReason::DegradedBaseline,
            });
            return;
        }
        let deploy_seconds = cluster.deploy(&cand.partitioning);
        self.accounting.deploy_seconds += deploy_seconds;
        self.accounting.canaries_started += 1;
        self.recent_stages.push(window);
        events.push(GuardrailEvent::CanaryStarted {
            window,
            candidate: LayoutDigest::of(&cand.partitioning),
            previous: LayoutDigest::of(&current),
            baseline_seconds: baseline.weighted_seconds,
            benefit_per_run: benefit,
            repartition_cost,
        });
        self.canary = Some(CanaryState {
            previous: current,
            candidate: cand.partitioning,
            pinned_mix: mix.clone(),
            baseline,
            benefit_per_run: benefit,
            repartition_cost,
            opened_window: window,
            clean_windows: 0,
            observed_sum: 0.0,
            inconclusive_windows: 0,
        });
    }
}

/// The single sanctioned guardrail bypass: deploy without canary
/// protection, returning the seconds charged. For simulator bootstrap and
/// evaluation harnesses that sweep candidate layouts *outside* any
/// production control loop (offline scale-factor calibration, benchmark
/// candidate evaluation) — contexts where there is no traffic to canary
/// against and nothing to roll back to. Production paths go through
/// [`Guardrail::end_window`]; lint rule L015 forbids `.deploy(` anywhere
/// else, so every bypass in the tree is auditable from this one function's
/// callers.
pub fn direct_deploy(cluster: &mut Cluster, target: &Partitioning) -> f64 {
    cluster.deploy(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::engine::EngineProfile;
    use crate::hardware::HardwareProfile;

    fn micro() -> (Cluster, Workload, FrequencyVector) {
        let schema = lpa_schema::microbench::schema(0.01).unwrap();
        let workload = lpa_workload::microbench::workload(&schema).unwrap();
        let cluster = Cluster::new(
            schema,
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        let mix = workload.uniform_frequencies();
        (cluster, workload, mix)
    }

    /// A layout that differs from the deployed one: flip the first
    /// partitioned table to replicated (or vice versa).
    fn flipped(cluster: &Cluster) -> Partitioning {
        let deployed = cluster.deployed();
        let mut tables = deployed.table_states().to_vec();
        tables[0] = match tables[0] {
            TableState::Replicated => TableState::PartitionedBy(lpa_schema::AttrId(0)),
            TableState::PartitionedBy(_) => TableState::Replicated,
        };
        Partitioning::from_states(cluster.schema(), tables)
    }

    fn stage(g: &mut Guardrail, cluster: &mut Cluster, w: &Workload, mix: &FrequencyVector) {
        let cand = CandidateDeploy {
            partitioning: flipped(cluster),
            benefit_per_run: 1e6, // forces the economic gate open
        };
        let events = g.end_window(cluster, w, mix, Some(cand), true);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, GuardrailEvent::CanaryStarted { .. })),
            "stage must open a canary: {events:?}"
        );
    }

    #[test]
    fn clean_canary_commits_and_keeps_candidate() {
        let (mut cluster, workload, mix) = micro();
        let mut g = Guardrail::new(GuardrailConfig {
            canary_windows: 2,
            regression_threshold: f64::INFINITY, // evidence can't regress
            ..GuardrailConfig::default()
        });
        let candidate = flipped(&cluster);
        stage(&mut g, &mut cluster, &workload, &mix);
        assert!(g.canary_open());
        let e1 = g.end_window(&mut cluster, &workload, &mix, None, true);
        assert!(g.canary_open(), "one clean window is not enough: {e1:?}");
        let e2 = g.end_window(&mut cluster, &workload, &mix, None, true);
        assert!(
            e2.iter()
                .any(|e| matches!(e, GuardrailEvent::Committed { .. })),
            "{e2:?}"
        );
        assert!(!g.canary_open());
        assert_eq!(cluster.deployed(), &candidate, "commit keeps the candidate");
        assert_eq!(g.accounting().commits, 1);
        assert_eq!(g.accounting().rollbacks(), 0);
    }

    #[test]
    fn observed_regression_rolls_back_and_charges_the_clock() {
        let (mut cluster, workload, mix) = micro();
        let mut g = Guardrail::new(GuardrailConfig {
            canary_windows: 1,
            regression_threshold: -1.0, // any observed runtime reads as regression
            ..GuardrailConfig::default()
        });
        let before = cluster.deployed().clone();
        stage(&mut g, &mut cluster, &workload, &mix);
        let clock_before_verdict = cluster.clock();
        let events = g.end_window(&mut cluster, &workload, &mix, None, true);
        let rolled = events
            .iter()
            .find_map(|e| match e {
                GuardrailEvent::RolledBack {
                    reason,
                    rollback_seconds,
                    ..
                } => Some((*reason, *rollback_seconds)),
                _ => None,
            })
            .expect("verdict window must roll back");
        assert_eq!(rolled.0, RollbackReason::ObservedRegression);
        assert!(rolled.1 > 0.0, "rollback migration must cost time");
        assert_eq!(cluster.deployed(), &before, "previous layout restored");
        assert!(cluster.clock() > clock_before_verdict + rolled.1 - 1e-9);
        assert_eq!(g.accounting().rollbacks_regression, 1);
    }

    #[test]
    fn degraded_evidence_extends_then_rolls_back_bounded() {
        let (mut cluster, workload, mix) = micro();
        // A permanent storm: every window is inconclusive.
        let mut plan = crate::faults::FaultPlan::storm(7);
        plan.crash_rate = 1.0;
        let mut g = Guardrail::new(GuardrailConfig {
            canary_windows: 1,
            max_extensions: 2,
            ..GuardrailConfig::default()
        });
        let before = cluster.deployed().clone();
        stage(&mut g, &mut cluster, &workload, &mix);
        cluster.set_fault_plan(plan); // storm starts after the stage
        let mut rolled = None;
        for _ in 0..8 {
            for e in g.end_window(&mut cluster, &workload, &mix, None, true) {
                if let GuardrailEvent::RolledBack { reason, .. } = e {
                    rolled = Some(reason);
                }
            }
            if rolled.is_some() {
                break;
            }
        }
        assert_eq!(rolled, Some(RollbackReason::DegradedEvidence));
        assert_eq!(g.accounting().extensions, 2, "extensions are bounded");
        assert_eq!(cluster.deployed(), &before);
    }

    #[test]
    fn cooldown_and_budget_reject_stages() {
        let (mut cluster, workload, mix) = micro();
        let mut g = Guardrail::new(GuardrailConfig {
            canary_windows: 0, // verdicts land instantly
            cooldown_windows: 3,
            budget_window: 100,
            budget_deploys: 2,
            ..GuardrailConfig::inert()
        });
        let cand = CandidateDeploy {
            partitioning: flipped(&cluster),
            benefit_per_run: 1e6,
        };
        let first = g.end_window(&mut cluster, &workload, &mix, Some(cand), true);
        assert!(first
            .iter()
            .any(|e| matches!(e, GuardrailEvent::Committed { .. })));
        // Inside the cool-down: rejected with the right reason.
        let cand = CandidateDeploy {
            partitioning: flipped(&cluster),
            benefit_per_run: 1e6,
        };
        let second = g.end_window(&mut cluster, &workload, &mix, Some(cand), true);
        assert_eq!(
            second,
            vec![GuardrailEvent::StageRejected {
                window: 2,
                reason: RejectReason::CoolDown
            }]
        );
        // Drain the cool-down, stage again (2nd of 2 budgeted), then the
        // 3rd attempt hits the tenant budget.
        for _ in 0..3 {
            g.end_window(&mut cluster, &workload, &mix, None, true);
        }
        let cand = CandidateDeploy {
            partitioning: flipped(&cluster),
            benefit_per_run: 1e6,
        };
        let third = g.end_window(&mut cluster, &workload, &mix, Some(cand), true);
        assert!(third
            .iter()
            .any(|e| matches!(e, GuardrailEvent::Committed { .. })));
        for _ in 0..3 {
            g.end_window(&mut cluster, &workload, &mix, None, true);
        }
        let cand = CandidateDeploy {
            partitioning: flipped(&cluster),
            benefit_per_run: 1e6,
        };
        let fourth = g.end_window(&mut cluster, &workload, &mix, Some(cand), true);
        assert!(
            fourth.iter().any(|e| matches!(
                e,
                GuardrailEvent::StageRejected {
                    reason: RejectReason::TenantBudget,
                    ..
                }
            )),
            "{fourth:?}"
        );
        assert_eq!(g.accounting().rejected_cooldown, 1);
        assert_eq!(g.accounting().rejected_budget, 1);
    }

    #[test]
    fn fleet_budget_rejection_is_counted() {
        let (mut cluster, workload, mix) = micro();
        let mut g = Guardrail::new(GuardrailConfig::inert());
        let cand = CandidateDeploy {
            partitioning: flipped(&cluster),
            benefit_per_run: 1e6,
        };
        let events = g.end_window(&mut cluster, &workload, &mix, Some(cand), false);
        assert_eq!(
            events,
            vec![GuardrailEvent::StageRejected {
                window: 1,
                reason: RejectReason::FleetBudget
            }]
        );
        assert_eq!(g.accounting().rejected_fleet_budget, 1);
    }

    #[test]
    fn resume_state_round_trips_mid_canary() {
        let (mut cluster, workload, mix) = micro();
        let mut g = Guardrail::new(GuardrailConfig {
            canary_windows: 3,
            regression_threshold: f64::INFINITY,
            ..GuardrailConfig::default()
        });
        stage(&mut g, &mut cluster, &workload, &mix);
        g.end_window(&mut cluster, &workload, &mix, None, true);
        let state = g.resume_state();
        assert!(state.canary.is_some(), "canary must be open at capture");
        let mut restored = Guardrail::restore(*g.config(), state.clone());
        assert_eq!(restored.resume_state(), state);
        // Both finish the canary over bit-identical clusters → same verdict.
        let mut cluster2 = {
            let (mut c, _, _) = micro();
            c.restore_resume_state(cluster.resume_state()).unwrap();
            c
        };
        let a = g.end_window(&mut cluster, &workload, &mix, None, true);
        let b = restored.end_window(&mut cluster2, &workload, &mix, None, true);
        assert_eq!(a, b);
        let a = g.end_window(&mut cluster, &workload, &mix, None, true);
        let b = restored.end_window(&mut cluster2, &workload, &mix, None, true);
        assert_eq!(a, b, "verdict window must agree after restore");
        assert_eq!(g.accounting(), restored.accounting());
    }

    #[test]
    fn inert_guardrail_reproduces_legacy_deploy_on_predicted_improvement() {
        let (mut cluster, workload, mix) = micro();
        let mut g = Guardrail::new(GuardrailConfig::inert());
        let candidate = flipped(&cluster);
        let cand = CandidateDeploy {
            partitioning: candidate.clone(),
            benefit_per_run: 1e-12, // any positive predicted benefit deploys
        };
        g.end_window(&mut cluster, &workload, &mix, Some(cand), true);
        assert_eq!(cluster.deployed(), &candidate);
        assert_eq!(g.accounting().commits, 1);
        // Zero/negative predicted benefit never deploys.
        let cand = CandidateDeploy {
            partitioning: flipped(&cluster),
            benefit_per_run: 0.0,
        };
        let events = g.end_window(&mut cluster, &workload, &mix, Some(cand), true);
        assert!(matches!(events[0], GuardrailEvent::KeptCurrent { .. }));
        assert_eq!(cluster.deployed(), &candidate);
    }
}
