//! Deterministic synthetic data generation.
//!
//! Every attribute value is a *pure function* of `(seed, table, attribute,
//! row)`, which gives three properties the experiments rely on:
//!
//! * **Referential integrity** — foreign keys index real parent rows, so
//!   joins produce realistic cardinalities;
//! * **Denormalization consistency** — `Inherited` columns copy the value
//!   of the referenced parent row (an order's district IS its customer's
//!   district), so co-partitioning on denormalized columns really makes
//!   key joins local;
//! * **Reproducibility** — regenerating at a larger scale (bulk updates,
//!   Fig. 4b) or a smaller scale (the online phase's sampled database)
//!   uses the same machinery.

use crate::engine::splitmix64;
use lpa_schema::{AttrId, AttrKind, Domain, Schema, Skew, TableId};
use std::collections::HashMap;

/// Materialized columns of one table (`columns[attr][row]`).
#[derive(Clone, Debug)]
pub struct TableData {
    pub columns: Vec<Vec<u64>>,
    pub rows: usize,
}

/// A fully generated database for one schema instance.
#[derive(Clone, Debug)]
pub struct Database {
    pub seed: u64,
    tables: Vec<TableData>,
}

impl Database {
    /// Generate all tables of `schema` at its configured row counts.
    pub fn generate(schema: &Schema, seed: u64) -> Self {
        let mut gen = Generator::new(schema, seed);
        for t in 0..schema.tables().len() {
            for a in 0..schema.table(TableId(t)).attributes.len() {
                gen.materialize(TableId(t), AttrId(a));
            }
        }
        Self {
            seed,
            tables: gen.finish(),
        }
    }

    pub fn table(&self, t: TableId) -> &TableData {
        &self.tables[t.0]
    }

    pub fn tables(&self) -> &[TableData] {
        &self.tables
    }

    /// Column accessor.
    pub fn column(&self, t: TableId, a: AttrId) -> &[u64] {
        &self.tables[t.0].columns[a.0]
    }
}

/// Recursive column materializer with memoization.
struct Generator<'a> {
    schema: &'a Schema,
    seed: u64,
    columns: Vec<Vec<Option<Vec<u64>>>>,
    zipf_cdfs: HashMap<(u64, u64), Vec<f64>>,
}

impl<'a> Generator<'a> {
    fn new(schema: &'a Schema, seed: u64) -> Self {
        let columns = schema
            .tables()
            .iter()
            .map(|t| vec![None; t.attributes.len()])
            .collect();
        Self {
            schema,
            seed,
            columns,
            zipf_cdfs: HashMap::new(),
        }
    }

    fn finish(self) -> Vec<TableData> {
        self.columns
            .into_iter()
            .enumerate()
            .map(|(t, cols)| {
                let rows = self.schema.tables()[t].rows as usize;
                TableData {
                    // Columns no query ever touched stay unmaterialized;
                    // zero-fill them so the layout is total and
                    // deterministic either way.
                    columns: cols
                        .into_iter()
                        .map(|c| c.unwrap_or_else(|| vec![0u64; rows]))
                        .collect(),
                    rows,
                }
            })
            .collect()
    }

    fn materialize(&mut self, t: TableId, a: AttrId) {
        if self.columns[t.0][a.0].is_some() {
            return;
        }
        let table = self.schema.table(t);
        let rows = table.rows as usize;
        let attr = &table.attributes[a.0];
        let tag = splitmix64((t.0 as u64) << 32 | a.0 as u64).wrapping_add(self.seed);

        // Compound columns combine their (materialized) components.
        if let AttrKind::Compound(parts) = &attr.kind {
            let parts = parts.clone();
            for p in &parts {
                self.materialize(t, *p);
            }
            let mut out = vec![0u64; rows];
            for p in &parts {
                // materialize(t, p) above guarantees Some; skip defensively.
                let Some(col) = self.columns[t.0][p.0].as_ref() else {
                    continue;
                };
                for (o, v) in out.iter_mut().zip(col) {
                    *o = combine(*o, *v);
                }
            }
            self.columns[t.0][a.0] = Some(out);
            return;
        }

        let col: Vec<u64> = match attr.domain {
            Domain::PrimaryKey => (0..rows as u64).collect(),
            Domain::ForeignKey(parent) => {
                let d = self.schema.table(parent).rows.max(1);
                self.sample_domain(tag, rows, d, attr.skew)
            }
            Domain::Fixed(d) => self.sample_domain(tag, rows, d.max(1), attr.skew),
            Domain::Inherited { via, parent_attr } => {
                self.materialize(t, via);
                match table.attributes[via.0].domain {
                    Domain::ForeignKey(parent) => {
                        self.materialize(parent, parent_attr);
                        let fk = self.columns[t.0][via.0].clone().unwrap_or_default();
                        let parent_col = self.columns[parent.0][parent_attr.0]
                            .as_deref()
                            .unwrap_or(&[]);
                        fk.iter()
                            .map(|&r| parent_col.get(r as usize).copied().unwrap_or(0))
                            .collect()
                    }
                    // Schema validation rejects `Inherited` via a non-FK
                    // attribute; degrade to a constant column rather than
                    // aborting generation mid-episode.
                    _ => vec![0u64; rows],
                }
            }
        };
        self.columns[t.0][a.0] = Some(col);
    }

    fn sample_domain(&mut self, tag: u64, rows: usize, d: u64, skew: Skew) -> Vec<u64> {
        match skew {
            Skew::Uniform => (0..rows as u64).map(|r| splitmix64(tag ^ r) % d).collect(),
            Skew::Zipf(theta) => {
                let cdf = self.zipf_cdf(d, theta);
                (0..rows as u64)
                    .map(|r| {
                        let u = splitmix64(tag ^ r) as f64 / u64::MAX as f64;
                        zipf_index(cdf, u)
                    })
                    .collect()
            }
        }
    }

    fn zipf_cdf(&mut self, d: u64, theta: f64) -> &Vec<f64> {
        let key = (d, theta.to_bits());
        self.zipf_cdfs.entry(key).or_insert_with(|| {
            let d = d.min(1_000_000) as usize;
            let mut cdf = Vec::with_capacity(d);
            let mut acc = 0.0;
            for k in 1..=d {
                acc += 1.0 / (k as f64).powf(theta);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            cdf
        })
    }
}

/// Combine compound-key components (shared with the executor so compound
/// values match across tables).
pub fn combine(a: u64, b: u64) -> u64 {
    a.wrapping_mul(1_000_003).wrapping_add(b)
}

/// Map a uniform `u ∈ [0,1)` through a CDF.
fn zipf_index(cdf: &[f64], u: f64) -> u64 {
    match cdf.binary_search_by(|c| c.total_cmp(&u)) {
        Ok(i) | Err(i) => (i.min(cdf.len() - 1)) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpcch_db() -> (Schema, Database) {
        let s = lpa_schema::tpcch::schema(0.002).expect("schema builds");
        let db = Database::generate(&s, 7);
        (s, db)
    }

    #[test]
    fn primary_keys_are_dense() {
        let (s, db) = tpcch_db();
        let cust = s.table_by_name("customer").unwrap();
        let col = db.column(cust, AttrId(0));
        assert_eq!(col.len(), s.table(cust).rows as usize);
        assert_eq!(col[0], 0);
        assert_eq!(col[col.len() - 1], (col.len() - 1) as u64);
    }

    #[test]
    fn foreign_keys_reference_real_parents() {
        let (s, db) = tpcch_db();
        let order = s.table_by_name("order").unwrap();
        let cust = s.table_by_name("customer").unwrap();
        let o_c = s.attr_ref("order", "o_c_key").unwrap();
        let parent_rows = s.table(cust).rows;
        for &v in db.column(order, o_c.attr) {
            assert!(v < parent_rows);
        }
    }

    #[test]
    fn inherited_columns_match_parent_rows() {
        // order.o_d_id must equal customer.c_d_id of the referenced row —
        // this is what makes district co-partitioning give local joins.
        let (s, db) = tpcch_db();
        let order = s.table_by_name("order").unwrap();
        let cust = s.table_by_name("customer").unwrap();
        let o_c = s.attr_ref("order", "o_c_key").unwrap().attr;
        let o_d = s.attr_ref("order", "o_d_id").unwrap().attr;
        let c_d = s.attr_ref("customer", "c_d_id").unwrap().attr;
        let fk = db.column(order, o_c);
        let od = db.column(order, o_d);
        let cd = db.column(cust, c_d);
        for (i, &c) in fk.iter().enumerate() {
            assert_eq!(od[i], cd[c as usize], "row {i}");
        }
    }

    #[test]
    fn compound_columns_combine_components() {
        let (s, db) = tpcch_db();
        let cust = s.table_by_name("customer").unwrap();
        let c_w = s.attr_ref("customer", "c_w_id").unwrap().attr;
        let c_d = s.attr_ref("customer", "c_d_id").unwrap().attr;
        let c_wd = s.attr_ref("customer", "c_wd").unwrap().attr;
        let w = db.column(cust, c_w);
        let d = db.column(cust, c_d);
        let wd = db.column(cust, c_wd);
        for i in 0..w.len() {
            assert_eq!(wd[i], combine(combine(0, w[i]), d[i]));
        }
    }

    #[test]
    fn zipf_columns_are_skewed() {
        let (s, db) = tpcch_db();
        let cust = s.table_by_name("customer").unwrap();
        let c_d = s.attr_ref("customer", "c_d_id").unwrap().attr;
        let col = db.column(cust, c_d);
        let mut counts = [0usize; 10];
        for &v in col {
            counts[v as usize] += 1;
        }
        // Value 0 is the hottest under Zipf.
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max);
        assert!(
            counts[0] as f64 > 1.5 * col.len() as f64 / 10.0,
            "hot district should exceed uniform share: {counts:?}"
        );
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let s = lpa_schema::microbench::schema(0.001).expect("schema builds");
        let a = Database::generate(&s, 1);
        let b = Database::generate(&s, 1);
        let c = Database::generate(&s, 2);
        let t = lpa_schema::microbench::tables::A;
        assert_eq!(a.column(t, AttrId(1)), b.column(t, AttrId(1)));
        assert_ne!(a.column(t, AttrId(1)), c.column(t, AttrId(1)));
    }

    #[test]
    fn rescaled_generation_extends_prefix_for_fixed_domains() {
        // Fixed-domain columns are pure functions of the row index, so a
        // bulk-loaded database keeps existing values for existing rows.
        let s1 = lpa_schema::tpcch::schema(0.002).expect("schema builds");
        let s2 = lpa_schema::tpcch::schema(0.003).expect("schema builds");
        let d1 = Database::generate(&s1, 7);
        let d2 = Database::generate(&s2, 7);
        let cust = s1.table_by_name("customer").unwrap();
        let c_d = s1.attr_ref("customer", "c_d_id").unwrap().attr;
        let a = d1.column(cust, c_d);
        let b = d2.column(cust, c_d);
        assert!(b.len() > a.len());
        assert_eq!(&b[..a.len()], a);
    }
}
