//! Distributed-DBMS execution simulator.
//!
//! This crate stands in for the paper's CloudLab clusters running
//! Postgres-XL and "System-X" (a commercial in-memory DBMS). It is a real
//! (if miniature) distributed execution engine, not a formula:
//!
//! * [`datagen`] generates actual rows for every table from deterministic
//!   value functions (dense primary keys, foreign keys, Zipf-skewed
//!   low-cardinality columns, values inherited through foreign keys,
//!   compound keys);
//! * [`cluster::Cluster`] shards those rows over N simulated nodes
//!   according to a deployed [`Partitioning`](lpa_partition::Partitioning),
//!   charges repartitioning time when the deployment changes, and executes
//!   queries;
//! * [`executor`] runs each query's join tree as per-node hash joins with
//!   real broadcasts and shuffles over the generated keys — locality,
//!   value skew and straggler effects *emerge* from the data instead of
//!   being assumed;
//! * [`engine`] captures the differences between the two systems under
//!   test (disk vs memory storage, shuffle overheads, hash function,
//!   compound-key support, whether optimizer cost estimates are
//!   accessible);
//! * [`optimizer`] provides the engine's own — deliberately imperfect —
//!   cost estimates, which both pick the execution plans and feed the
//!   "minimum optimizer cost" baseline;
//! * [`hardware`] holds the deployment knobs varied in Experiment 5
//!   (10 Gbps vs 0.6 Gbps interconnect, standard vs slower compute).
//!
//! Because all times are *simulated* seconds derived from actually-measured
//! data volumes, experiments are deterministic and the training-time ledger
//! of Table 2 can be reproduced exactly.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cluster;
pub mod columnar;
pub mod datagen;
pub mod engine;
pub mod executor;
pub mod faults;
pub mod guardrail;
pub mod hardware;
pub mod optimizer;

pub use cluster::{Cluster, ClusterConfig, ClusterResumeState, QueryOutcome};
pub use columnar::{naive_executor_forced, with_naive_executor, ExecScratch};
pub use datagen::{Database, TableData};
pub use engine::{EngineKind, EngineProfile};
pub use faults::{ClusterHealth, FailReason, FaultAccounting, FaultPlan, FaultState};
pub use guardrail::{
    direct_deploy, observe_window, CanaryState, CanaryStep, CanaryVerdict, CandidateDeploy,
    Guardrail, GuardrailAccounting, GuardrailConfig, GuardrailEvent, GuardrailResumeState,
    LayoutDigest, RejectReason, RollbackReason, WindowObservation,
};
pub use hardware::HardwareProfile;
pub use optimizer::OptimizerEstimator;
