//! Deployment hardware profiles (Experiment 5 varies these).

use serde::{Deserialize, Serialize};

/// Hardware characteristics of one cluster deployment.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Number of database nodes.
    pub nodes: usize,
    /// Per-link network bandwidth, bytes/second.
    pub net_bandwidth: f64,
    /// Per-node memory scan bandwidth, bytes/second.
    pub mem_scan_bandwidth: f64,
    /// Per-node disk scan bandwidth, bytes/second (disk-based engines).
    pub disk_scan_bandwidth: f64,
    /// Per-tuple CPU cost for join/aggregation work, seconds.
    pub cpu_tuple_cost: f64,
}

impl HardwareProfile {
    /// The paper's CloudLab nodes: Xeon Silver, 10 Gbps interconnect.
    pub fn standard() -> Self {
        Self {
            nodes: 4,
            net_bandwidth: 1.25e9,
            mem_scan_bandwidth: 4.0e9,
            disk_scan_bandwidth: 0.5e9,
            cpu_tuple_cost: 2.0e-8,
        }
    }

    /// Standard compute on a 0.6 Gbps interconnect (basic Redshift-like).
    pub fn slow_network() -> Self {
        Self {
            net_bandwidth: 0.075e9,
            ..Self::standard()
        }
    }

    /// The less powerful AMD nodes of Fig. 8b: slower scans and CPU.
    pub fn slow_compute() -> Self {
        Self {
            mem_scan_bandwidth: 2.0e9,
            disk_scan_bandwidth: 0.35e9,
            cpu_tuple_cost: 6.0e-8,
            ..Self::standard()
        }
    }

    /// Slower compute on the 0.6 Gbps interconnect.
    pub fn slow_compute_slow_network() -> Self {
        Self {
            net_bandwidth: 0.075e9,
            ..Self::slow_compute()
        }
    }

    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 2, "a distributed cluster needs at least 2 nodes");
        self.nodes = nodes;
        self
    }

    /// Aggregate cluster network bandwidth.
    pub fn aggregate_net(&self) -> f64 {
        self.net_bandwidth * self.nodes as f64
    }
}

impl Default for HardwareProfile {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_ordered() {
        let std = HardwareProfile::standard();
        assert!(HardwareProfile::slow_network().net_bandwidth < std.net_bandwidth);
        assert!(HardwareProfile::slow_compute().cpu_tuple_cost > std.cpu_tuple_cost);
        assert!(std.disk_scan_bandwidth < std.mem_scan_bandwidth);
        assert_eq!(std.with_nodes(6).nodes, 6);
    }
}
