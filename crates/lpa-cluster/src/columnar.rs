//! Columnar (struct-of-arrays) executor accounting — the allocation-free
//! fast path behind [`Executor::execute`].
//!
//! [`Executor::execute_naive`] keeps the row-at-a-time reference semantics:
//! it allocates fresh `Vec`s for filtered rows, placements, buckets, and
//! per-group join outputs on every step. This module re-expresses the same
//! computation over reusable columns held in an [`ExecScratch`]:
//!
//! * per-node work / net / runtime accounting lives in flat columns
//!   (`net_bytes`, `per_node_*`), with fault multipliers applied as column
//!   passes in node-index order — exactly the naive fold order;
//! * shard histograms accumulate into a flattened `chunks × nodes` partial
//!   buffer via `lpa_par` index-ordered chunks and merge in chunk order
//!   (integer adds — exact for any thread count);
//! * join buckets use a two-pass CSR layout (count, prefix-sum, scatter in
//!   ascending row order) instead of per-node `Vec<Vec<_>>`;
//! * the per-group hash join keeps per-key build rows in insertion order
//!   through an arena chain (`build_row` / `build_next`), and the serial
//!   group loop writes output provenance straight into the merged columns —
//!   byte-identical to the naive path's group-ordered merge, minus the
//!   copy.
//!
//! Bit-exactness contract (DESIGN.md §13): every `f64` accumulation below
//! is the same expression, in the same order, as `execute_naive`; only
//! allocation and intermediate representation differ. The differential
//! harness ([`with_naive_executor`], plus the property/chaos suites) proves
//! `execute` == `execute_naive` bit-for-bit across fault storms and thread
//! counts.
//!
//! This file is hot-path scoped under lint rule L013: no `Vec::new` /
//! `vec![]` / `collect()` outside `#[cfg(test)]` — steady-state execution
//! must not allocate.

use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::executor::{hash_str, over, par_pool, slot_of, ExecResult, Executor, Layout};
use lpa_costmodel::{JoinStrategy, QueryPlan};
use lpa_schema::TableId;
use lpa_workload::Query;

thread_local! {
    static FORCE_NAIVE_EXEC: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with [`Executor::execute`] forced onto the row-at-a-time
/// reference path. Used by differential harnesses; composes with
/// `lpa_nn::with_naive_kernels` and `lpa_partition::with_full_encode`.
pub fn with_naive_executor<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_NAIVE_EXEC.with(|c| c.set(self.0));
        }
    }
    let _reset = Reset(FORCE_NAIVE_EXEC.with(|c| c.replace(true)));
    f()
}

/// True while inside [`with_naive_executor`] on this thread.
pub fn naive_executor_forced() -> bool {
    FORCE_NAIVE_EXEC.with(|c| c.get())
}

/// Columnar intermediate result: the same provenance contract as the
/// naive executor's `Inter`, with arena-backed columns that survive across
/// steps and queries.
#[derive(Clone, Debug, Default)]
struct ColInter {
    /// `slots[s][i]` = base-table row feeding output row `i` from query
    /// table slot `s` (absent slots stay empty).
    slots: Vec<Vec<u32>>,
    node: Vec<u8>,
    replicated: bool,
    bytes_per_row: f64,
}

impl ColInter {
    fn reset(&mut self, width: usize) {
        self.slots.truncate(width);
        for s in self.slots.iter_mut() {
            s.clear();
        }
        self.slots.resize_with(width, Default::default);
        self.node.clear();
        self.replicated = false;
        self.bytes_per_row = 0.0;
    }

    fn len(&self) -> usize {
        self.slots.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

/// Reusable buffers for the columnar executor. One per cluster (or per
/// caller); every query and join step reuses the same arenas, so
/// steady-state execution performs no heap allocation once the buffers
/// have grown to the workload's high-water mark.
#[derive(Clone, Debug, Default)]
pub struct ExecScratch {
    /// Predicate-surviving row ids of the table currently being scanned.
    filtered: Vec<u32>,
    /// Join-key value per intermediate row (primary pair, left side).
    left_vals: Vec<u64>,
    /// Home node per filtered right row (empty when replicated).
    right_home: Vec<u8>,
    /// Post-exchange placements (directed / symmetric repartition).
    new_left: Vec<u8>,
    new_right: Vec<u8>,
    /// Per-node bytes received this step (column pass per strategy).
    net_bytes: Vec<f64>,
    /// Flattened `chunks × nodes` histogram partials and their merge.
    hist_partials: Vec<usize>,
    hist_counts: Vec<usize>,
    /// CSR buckets: per-group offsets + row indices in ascending order.
    right_off: Vec<usize>,
    right_items: Vec<u32>,
    left_off: Vec<usize>,
    left_items: Vec<u32>,
    bucket_cursor: Vec<usize>,
    /// Chained hash-join arena: per-key insertion-ordered build rows.
    join_keys: HashMap<u64, (u32, u32)>,
    build_row: Vec<u32>,
    build_next: Vec<u32>,
    /// Per-group work columns for the straggler maxima.
    per_node_build: Vec<usize>,
    per_node_probe: Vec<usize>,
    per_node_out: Vec<usize>,
    /// Double-buffered intermediates (swapped after each join step).
    cur: ColInter,
    next: ColInter,
}

impl Executor<'_> {
    /// The columnar fast path behind [`Executor::execute`]. Bit-identical
    /// to [`Executor::execute_naive`] by construction (see module docs) and
    /// by the differential suites.
    pub(crate) fn execute_columnar(
        &self,
        query: &Query,
        plan: &QueryPlan,
        budget: Option<f64>,
        scratch: &mut ExecScratch,
    ) -> Option<ExecResult> {
        let n = self.hw.nodes;
        let mut seconds = self.engine.query_overhead;
        let mut bytes_shuffled = 0.0;

        let scan_bw = if self.engine.disk_based {
            self.hw.disk_scan_bandwidth
        } else {
            self.hw.mem_scan_bandwidth
        };
        for &t in &query.tables {
            let bytes = self.schema.table(t).bytes() as f64;
            let max_share = self.max_shard_fraction_col(t, scratch);
            seconds += bytes * max_share / scan_bw;
        }
        if over(seconds, budget) {
            return None;
        }

        if query.joins.is_empty() {
            let t = query.tables[0];
            self.filtered_rows_into(query, t, &mut scratch.filtered);
            let rows = scratch.filtered.len() as f64;
            let share = self.max_shard_fraction_col(t, scratch);
            seconds += rows * share * self.hw.cpu_tuple_cost * query.cpu_factor;
            return Some(ExecResult {
                seconds,
                output_rows: rows as u64,
                bytes_shuffled,
            });
        }

        let start = plan.start_table.unwrap_or(query.tables[0]);
        self.seed_inter_col(query, start, scratch);

        for step in &plan.steps {
            let Some(join) = query.joins.get(step.join_index) else {
                continue;
            };
            let (step_seconds, step_bytes) =
                self.join_step_col(query, step.table, join, step.strategy, scratch);
            seconds += step_seconds;
            bytes_shuffled += step_bytes;
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
            if over(seconds, budget) {
                return None;
            }
        }

        let out_rows = scratch.cur.len() as f64;
        let agg_share = if scratch.cur.replicated {
            1.0
        } else {
            // Split borrow: the histogram buffers are disjoint from `cur`.
            let (node, hist_partials, hist_counts) = (
                &scratch.cur.node,
                &mut scratch.hist_partials,
                &mut scratch.hist_counts,
            );
            self.max_node_fraction_col(node, n, hist_partials, hist_counts)
        };
        seconds += out_rows * agg_share * self.hw.cpu_tuple_cost * query.cpu_factor;
        if over(seconds, budget) {
            return None;
        }
        Some(ExecResult {
            seconds,
            output_rows: scratch.cur.len() as u64,
            bytes_shuffled,
        })
    }

    /// Columnar twin of the naive `max_shard_fraction`.
    fn max_shard_fraction_col(&self, t: TableId, scratch: &mut ExecScratch) -> f64 {
        match &self.layouts[t.0] {
            Layout::Replicated => self.replicated_slowdown(),
            Layout::Hashed { node, .. } => {
                if node.is_empty() {
                    1.0 / self.hw.nodes as f64
                } else {
                    self.max_node_fraction_col(
                        node,
                        self.hw.nodes,
                        &mut scratch.hist_partials,
                        &mut scratch.hist_counts,
                    )
                }
            }
        }
    }

    /// Columnar twin of the naive `max_node_fraction`: the same chunked
    /// histogram, accumulated into one flattened `chunks × nodes` buffer
    /// via index-ordered chunks and merged in chunk order. Integer adds —
    /// the counts (and so the weighted maximum) are exact and identical.
    fn max_node_fraction_col(
        &self,
        assignment: &[u8],
        nodes: usize,
        partials: &mut Vec<usize>,
        counts: &mut Vec<usize>,
    ) -> f64 {
        if assignment.is_empty() {
            return 1.0 / nodes as f64;
        }
        let chunk = lpa_par::default_chunk_len(assignment.len());
        let n_chunks = assignment.len().div_ceil(chunk);
        partials.clear();
        partials.resize(n_chunks * nodes, 0);
        par_pool(assignment.len()).par_chunks_mut(partials, nodes, |c, part| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(assignment.len());
            for &a in &assignment[lo..hi] {
                part[a as usize] += 1;
            }
        });
        counts.clear();
        counts.resize(nodes, 0);
        for part in partials.chunks_exact(nodes) {
            for (total, p) in counts.iter_mut().zip(part) {
                *total += p;
            }
        }
        let max_weighted = counts
            .iter()
            .enumerate()
            .map(|(node, &c)| c as f64 * self.node_work_mult(node))
            .fold(0.0, f64::max);
        max_weighted / assignment.len() as f64
    }

    /// Columnar twin of the naive `filtered_rows`: same ids, same order,
    /// written into a reused buffer.
    fn filtered_rows_into(&self, query: &Query, t: TableId, out: &mut Vec<u32>) {
        out.clear();
        let sel = query.table_selectivity(t);
        let rows = self.db.table(t).rows;
        if sel >= 1.0 {
            out.extend(0..rows as u32);
            return;
        }
        let threshold = (sel * u64::MAX as f64) as u64;
        let tag = crate::engine::splitmix64(hash_str(&query.name) ^ ((t.0 as u64) << 17));
        for r in 0..rows as u32 {
            if crate::engine::splitmix64(tag ^ r as u64) <= threshold {
                out.push(r);
            }
        }
    }

    /// Columnar twin of the naive `seed_inter`.
    fn seed_inter_col(&self, query: &Query, start: TableId, scratch: &mut ExecScratch) {
        let slot = slot_of(query, start);
        self.filtered_rows_into(query, start, &mut scratch.filtered);
        let cur = &mut scratch.cur;
        cur.reset(query.tables.len());
        match &self.layouts[start.0] {
            Layout::Replicated => {
                cur.node.resize(scratch.filtered.len(), 0);
                cur.replicated = true;
            }
            Layout::Hashed { node, .. } => {
                for &r in &scratch.filtered {
                    cur.node.push(node[r as usize]);
                }
                cur.replicated = false;
            }
        }
        if let Some(seed_slot) = cur.slots.get_mut(slot) {
            seed_slot.extend_from_slice(&scratch.filtered);
        }
        cur.bytes_per_row = self.schema.table(start).row_bytes as f64;
    }

    /// Columnar twin of the naive `join_step`: reads `scratch.cur`, writes
    /// `scratch.next` (the caller swaps). Returns (seconds, total bytes).
    fn join_step_col(
        &self,
        query: &Query,
        right_table: TableId,
        join: &lpa_workload::JoinPred,
        strategy: JoinStrategy,
        scratch: &mut ExecScratch,
    ) -> (f64, f64) {
        let ExecScratch {
            filtered,
            left_vals,
            right_home,
            new_left,
            new_right,
            net_bytes,
            right_off,
            right_items,
            left_off,
            left_items,
            bucket_cursor,
            join_keys,
            build_row,
            build_next,
            per_node_build,
            per_node_probe,
            per_node_out,
            cur,
            next,
            ..
        } = scratch;
        let inter: &ColInter = cur;

        let n = self.hw.nodes;
        let right_slot = slot_of(query, right_table);
        self.filtered_rows_into(query, right_table, filtered);
        let right_rows: &[u32] = filtered;
        let right_bytes_row = self.schema.table(right_table).row_bytes as f64;

        // Orient the primary pair as (inter side, right side) — the naive
        // path orients every pair but only ever reads the first.
        let (a, b) = join.pairs[0];
        let primary = if b.table == right_table {
            (a, b)
        } else {
            (b, a)
        };
        left_vals.clear();
        if let Some(rows) = inter.slots.get(slot_of(query, primary.0.table)) {
            let col = self.db.column(primary.0.table, primary.0.attr);
            for &r in rows {
                left_vals.push(col[r as usize]);
            }
        }
        let right_col = self.db.column(right_table, primary.1.attr);

        right_home.clear();
        let right_replicated = matches!(self.layouts[right_table.0], Layout::Replicated);
        if let Layout::Hashed { node, .. } = &self.layouts[right_table.0] {
            for &r in right_rows {
                right_home.push(node[r as usize]);
            }
        }

        net_bytes.clear();
        net_bytes.resize(n, 0.0);
        let mut total_bytes = 0.0f64;
        let mut shuffled = false;

        // Effective placements after the exchange; `None` = present
        // everywhere. Same accumulation expressions, in the same order, as
        // the naive strategy arms — only the `Vec` clones are gone.
        let (left_at, right_at): (Option<&[u8]>, Option<&[u8]>) = match strategy {
            JoinStrategy::ReplicatedSide | JoinStrategy::CoLocated => {
                let left = if inter.replicated {
                    None
                } else {
                    Some(inter.node.as_slice())
                };
                let right = if right_replicated {
                    None
                } else {
                    Some(right_home.as_slice())
                };
                (left, right)
            }
            JoinStrategy::Broadcast { table_side: true } => {
                shuffled = true;
                let bytes = right_rows.len() as f64 * right_bytes_row;
                for node_bytes in net_bytes.iter_mut() {
                    *node_bytes += bytes * (n as f64 - 1.0) / n as f64;
                }
                total_bytes += bytes * (n as f64 - 1.0);
                let left = if inter.replicated {
                    None
                } else {
                    Some(inter.node.as_slice())
                };
                (left, None)
            }
            JoinStrategy::Broadcast { table_side: false } => {
                shuffled = true;
                let bytes = inter.len() as f64 * inter.bytes_per_row;
                for node_bytes in net_bytes.iter_mut() {
                    *node_bytes += bytes * (n as f64 - 1.0) / n as f64;
                }
                total_bytes += bytes * (n as f64 - 1.0);
                let right = if right_replicated {
                    None
                } else {
                    Some(right_home.as_slice())
                };
                (None, right)
            }
            JoinStrategy::DirectedRepartition { table_side } => {
                shuffled = true;
                if table_side {
                    new_right.clear();
                    for &r in right_rows {
                        new_right.push(self.engine.node_of(right_col[r as usize], n) as u8);
                    }
                    for (j, &node) in new_right.iter().enumerate() {
                        let home = right_home.get(j).copied().unwrap_or(node);
                        if home != node {
                            net_bytes[node as usize] += right_bytes_row;
                            total_bytes += right_bytes_row;
                        }
                    }
                    let left = if inter.replicated {
                        None
                    } else {
                        Some(inter.node.as_slice())
                    };
                    (left, Some(new_right.as_slice()))
                } else {
                    new_left.clear();
                    for &v in left_vals.iter() {
                        new_left.push(self.engine.node_of(v, n) as u8);
                    }
                    for (i, &node) in new_left.iter().enumerate() {
                        let home = if inter.replicated {
                            node
                        } else {
                            inter.node[i]
                        };
                        if home != node {
                            net_bytes[node as usize] += inter.bytes_per_row;
                            total_bytes += inter.bytes_per_row;
                        }
                    }
                    let right = if right_replicated {
                        None
                    } else {
                        Some(right_home.as_slice())
                    };
                    (Some(new_left.as_slice()), right)
                }
            }
            JoinStrategy::SymmetricRepartition => {
                shuffled = true;
                new_left.clear();
                for &v in left_vals.iter() {
                    new_left.push(self.engine.node_of(v, n) as u8);
                }
                for (i, &node) in new_left.iter().enumerate() {
                    let home = if inter.replicated {
                        node
                    } else {
                        inter.node[i]
                    };
                    if home != node {
                        net_bytes[node as usize] += inter.bytes_per_row;
                        total_bytes += inter.bytes_per_row;
                    }
                }
                new_right.clear();
                for &r in right_rows {
                    new_right.push(self.engine.node_of(right_col[r as usize], n) as u8);
                }
                for (j, &node) in new_right.iter().enumerate() {
                    let home = right_home.get(j).copied().unwrap_or(node);
                    if home != node {
                        net_bytes[node as usize] += right_bytes_row;
                        total_bytes += right_bytes_row;
                    }
                }
                (Some(new_left.as_slice()), Some(new_right.as_slice()))
            }
        };

        let both_everywhere = left_at.is_none() && right_at.is_none();
        let groups: usize = if both_everywhere { 1 } else { n };
        let inter_len = inter.len();
        let out_width = query.tables.len();

        // CSR bucketing: count → exclusive prefix sum → scatter in
        // ascending row order. Within each bucket the indices come out
        // ascending — the same per-group order as the naive
        // `buckets[node].push(…)` loops.
        csr_bucket(right_at, right_off, right_items, bucket_cursor, groups);
        csr_bucket(left_at, left_off, left_items, bucket_cursor, groups);

        next.reset(out_width);
        per_node_build.clear();
        per_node_build.resize(groups, 0);
        per_node_probe.clear();
        per_node_probe.resize(groups, 0);
        per_node_out.clear();
        per_node_out.resize(groups, 0);

        // Serial group loop, group index ascending: output provenance goes
        // straight into the merged columns, which is exactly the naive
        // path's group-ordered merge (node 0's rows first, then node 1's).
        for g in 0..groups {
            join_keys.clear();
            build_row.clear();
            build_next.clear();
            let mut insert = |r: u32, key: u64| {
                let idx = build_row.len() as u32;
                build_row.push(r);
                build_next.push(u32::MAX);
                match join_keys.entry(key) {
                    Entry::Occupied(mut e) => {
                        let (_, tail) = e.get_mut();
                        if let Some(slot) = build_next.get_mut(*tail as usize) {
                            *slot = idx;
                        }
                        *tail = idx;
                    }
                    Entry::Vacant(e) => {
                        e.insert((idx, idx));
                    }
                }
            };
            if right_at.is_some() {
                for &j in &right_items[right_off[g]..right_off[g + 1]] {
                    let r = right_rows[j as usize];
                    insert(r, right_col[r as usize]);
                }
            } else {
                for &r in right_rows {
                    insert(r, right_col[r as usize]);
                }
            }
            per_node_build[g] = build_row.len();

            // Probe index-ascending; per-key matches walk the insertion-
            // ordered chain — the same match order as the naive per-key
            // `Vec`s.
            let probe_list: &[u32] = if left_at.is_some() {
                &left_items[left_off[g]..left_off[g + 1]]
            } else {
                &[]
            };
            let mut out_rows_g = 0usize;
            let mut probe = |i: usize| {
                if let Some(&(head, _)) = join_keys.get(&left_vals[i]) {
                    let mut idx = head;
                    loop {
                        let r = build_row[idx as usize];
                        for (s, out) in next.slots.iter_mut().enumerate() {
                            if s == right_slot {
                                out.push(r);
                            } else if !inter.slots[s].is_empty() {
                                out.push(inter.slots[s][i]);
                            }
                        }
                        out_rows_g += 1;
                        let nx = build_next[idx as usize];
                        if nx == u32::MAX {
                            break;
                        }
                        idx = nx;
                    }
                }
            };
            if left_at.is_some() {
                per_node_probe[g] = probe_list.len();
                for &iu in probe_list {
                    probe(iu as usize);
                }
            } else {
                per_node_probe[g] = inter_len;
                for i in 0..inter_len {
                    probe(i);
                }
            }
            per_node_out[g] = out_rows_g;
            next.node.resize(next.node.len() + out_rows_g, g as u8);
        }

        // Time accounting: identical expressions and fold order to the
        // naive path (node-index-ascending column passes).
        let mut seconds = 0.0;
        if shuffled {
            seconds += self.engine.shuffle_overhead;
            let max_in = net_bytes
                .iter()
                .enumerate()
                .map(|(node, &b)| b * self.node_net_mult(node))
                .fold(0.0, f64::max);
            seconds += max_in / self.hw.net_bandwidth;
        }
        let max_work = (0..groups)
            .map(|g| {
                let node = if both_everywhere {
                    self.faults.first_up()
                } else {
                    g
                };
                (per_node_build[g] + per_node_probe[g] + per_node_out[g]) as f64
                    * self.node_work_mult(node)
            })
            .fold(0.0, f64::max);
        seconds += max_work * self.hw.cpu_tuple_cost * query.cpu_factor;

        next.replicated = both_everywhere;
        next.bytes_per_row = inter.bytes_per_row + right_bytes_row;
        (seconds, total_bytes)
    }
}

/// Two-pass CSR bucketing of `at` (node per row) into `groups` buckets:
/// `items[off[g]..off[g+1]]` lists the row indices placed at group `g`, in
/// ascending order. A `None` placement means "present everywhere" — the
/// offsets are left covering an empty list and callers use the full range.
fn csr_bucket(
    at: Option<&[u8]>,
    off: &mut Vec<usize>,
    items: &mut Vec<u32>,
    cursor: &mut Vec<usize>,
    groups: usize,
) {
    off.clear();
    off.resize(groups + 1, 0);
    items.clear();
    let Some(at) = at else {
        return;
    };
    for &node in at {
        off[node as usize + 1] += 1;
    }
    for g in 0..groups {
        off[g + 1] += off[g];
    }
    cursor.clear();
    cursor.extend_from_slice(&off[..groups]);
    items.resize(at.len(), 0);
    for (i, &node) in at.iter().enumerate() {
        let Some(c) = cursor.get_mut(node as usize) else {
            continue;
        };
        if let Some(slot) = items.get_mut(*c) {
            *slot = i as u32;
        }
        *c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_bucket_matches_push_order() {
        let at = [2u8, 0, 1, 0, 2, 2, 1];
        let mut off = Vec::new();
        let mut items = Vec::new();
        let mut cursor = Vec::new();
        csr_bucket(Some(&at), &mut off, &mut items, &mut cursor, 3);
        // Reference: per-bucket push loops in ascending index order.
        let mut want: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for (i, &node) in at.iter().enumerate() {
            want[node as usize].push(i as u32);
        }
        for g in 0..3 {
            assert_eq!(&items[off[g]..off[g + 1]], want[g].as_slice(), "group {g}");
        }
        // Everywhere-side: empty offsets, empty items.
        csr_bucket(None, &mut off, &mut items, &mut cursor, 3);
        assert!(items.is_empty());
        assert_eq!(off, vec![0; 4]);
    }

    #[test]
    fn naive_executor_guard_restores() {
        assert!(!naive_executor_forced());
        with_naive_executor(|| assert!(naive_executor_forced()));
        assert!(!naive_executor_forced());
    }
}
