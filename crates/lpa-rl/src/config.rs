//! DQN hyperparameters (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Loss used for the Q-update. The paper trains with the squared error;
/// Huber is the standard DQN stabilization offered as an extension.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum QLoss {
    Mse,
    /// Huber loss with the given threshold.
    Huber(f32),
}

/// All DQN knobs. [`DqnConfig::paper`] reproduces Table 1 exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Target-network soft-update coefficient τ.
    pub tau: f32,
    /// Experience replay capacity.
    pub buffer_size: usize,
    /// Minibatch size for experience replay.
    pub batch_size: usize,
    /// Initial exploration probability ε.
    pub epsilon_start: f64,
    /// Per-episode multiplicative ε decay.
    pub epsilon_decay: f64,
    /// Exploration floor.
    pub epsilon_min: f64,
    /// Reward discount γ.
    pub gamma: f64,
    /// Steps per episode (t_max ≥ number of tables).
    pub tmax: usize,
    /// Training episodes (600 for SSB, 1200 for TPC-DS / TPC-CH).
    pub episodes: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Train the Q-network every `train_every` environment steps.
    pub train_every: usize,
    /// RNG seed (networks, exploration, replay sampling).
    pub seed: u64,
    /// Q-update loss (the paper uses the squared error).
    pub loss: QLoss,
    /// Double-DQN target computation (extension; the paper uses vanilla
    /// DQN): the online network picks `argmax_a'`, the target network
    /// evaluates it — reducing maximization bias.
    pub double_dqn: bool,
}

impl DqnConfig {
    /// Table 1: lr 5·10⁻⁴, τ 10⁻³, buffer 10 000, batch 32, ε-decay 0.997,
    /// t_max 100, 600 episodes, layout 128-64, γ 0.99.
    pub fn paper() -> Self {
        Self {
            learning_rate: 5e-4,
            tau: 1e-3,
            buffer_size: 10_000,
            batch_size: 32,
            epsilon_start: 1.0,
            epsilon_decay: 0.997,
            epsilon_min: 0.01,
            gamma: 0.99,
            tmax: 100,
            episodes: 600,
            hidden: vec![128, 64],
            train_every: 1,
            seed: 0,
            loss: QLoss::Mse,
            double_dqn: false,
        }
    }

    /// Table 1 with the 1200-episode budget used for the larger schemas
    /// (TPC-DS, TPC-CH).
    pub fn paper_large() -> Self {
        Self {
            episodes: 1200,
            ..Self::paper()
        }
    }

    /// A scaled-down configuration for the simulator-sized problem
    /// instances run by the experiment harness. Keeps the Table-1
    /// *relative* settings but shrinks episodes/steps so a full experiment
    /// suite completes in minutes instead of hours. Two knobs scale with
    /// the shorter episodes: the discount γ (the paper's 0.99 implies a
    /// ~100-step horizon matching its t_max = 100; shorter episodes get a
    /// proportionally shorter horizon) and the learning rate (fewer SGD
    /// steps overall).
    pub fn simulation(episodes: usize, tmax: usize) -> Self {
        Self {
            episodes,
            tmax,
            gamma: 1.0 - 1.0 / tmax as f64,
            learning_rate: 1e-3,
            // Reach a comparable final ε despite fewer episodes.
            epsilon_decay: 0.03f64.powf(1.0 / episodes as f64),
            ..Self::paper()
        }
    }

    /// Tiny settings for unit tests.
    pub fn quick_test() -> Self {
        Self {
            buffer_size: 256,
            batch_size: 8,
            tmax: 8,
            episodes: 12,
            hidden: vec![32, 16],
            epsilon_decay: 0.8,
            ..Self::paper()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_episodes(mut self, episodes: usize) -> Self {
        self.episodes = episodes;
        self
    }

    /// Enable the Huber-loss extension.
    pub fn with_huber(mut self, delta: f32) -> Self {
        self.loss = QLoss::Huber(delta);
        self
    }

    /// Enable the Double-DQN extension.
    pub fn with_double_dqn(mut self) -> Self {
        self.double_dqn = true;
        self
    }

    /// The ε value after `n` episodes of decay (used to warm-start the
    /// online phase at the ε reached halfway through offline training,
    /// Section 4.2).
    pub fn epsilon_after(&self, n: usize) -> f64 {
        (self.epsilon_start * self.epsilon_decay.powi(n as i32)).max(self.epsilon_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table1() {
        let c = DqnConfig::paper();
        assert_eq!(c.learning_rate, 5e-4);
        assert_eq!(c.tau, 1e-3);
        assert_eq!(c.buffer_size, 10_000);
        assert_eq!(c.batch_size, 32);
        assert_eq!(c.epsilon_decay, 0.997);
        assert_eq!(c.tmax, 100);
        assert_eq!(c.episodes, 600);
        assert_eq!(c.hidden, vec![128, 64]);
        assert_eq!(c.gamma, 0.99);
        assert_eq!(DqnConfig::paper_large().episodes, 1200);
    }

    #[test]
    fn epsilon_warm_start() {
        let c = DqnConfig::paper();
        let half = c.epsilon_after(600);
        assert!(half < 0.2 && half > 0.1, "0.997^600 ≈ 0.165, got {half}");
        assert_eq!(c.epsilon_after(100_000), c.epsilon_min);
    }

    #[test]
    fn simulation_decay_reaches_comparable_floor() {
        let c = DqnConfig::simulation(100, 20);
        let end = c.epsilon_after(100);
        assert!((end - 0.03).abs() < 0.01, "got {end}");
    }
}
