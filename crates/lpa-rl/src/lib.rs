//! Generic Deep-Q-Learning (Algorithm 1 of the paper).
//!
//! The crate is deliberately problem-agnostic: an [`QEnvironment`] exposes
//! states, valid actions, a transition function with rewards, and a
//! fixed-length encoding of `(state, action)` pairs; [`DqnAgent`] owns the
//! Q-network, the target network (soft `τ` updates), the experience replay
//! buffer and ε-greedy exploration with per-episode decay; [`train()`] runs
//! the episodic training loop.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod agent;
pub mod buffer;
pub mod config;
pub mod env;
pub mod lockstep;
pub mod profile;
pub mod train;

pub use agent::{greedy_argmax, AgentSnapshot, DqnAgent};
pub use buffer::{ReplayBuffer, Transition};
pub use config::{DqnConfig, QLoss};
pub use env::{EnvCounters, QEnvironment};
pub use lockstep::train_lockstep;
pub use train::{rollout, train, train_from, EpisodeStats, Trajectory};
