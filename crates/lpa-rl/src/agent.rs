//! The DQN agent: Q-network, target network, replay, ε-greedy policy.

use crate::buffer::{ReplayBuffer, Transition};
use crate::config::{DqnConfig, QLoss};
use crate::env::QEnvironment;
use lpa_nn::{Adam, Matrix, Mlp, MlpScratch, Pool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Greedy argmax over parallel Q-value / action slices, replicating the
/// agent's tie-breaking exactly: under `total_cmp`, the *last* maximum
/// wins. Batched inference paths (committee coalescing) must route
/// through this same helper so a tie never picks a different action than
/// the sequential path would.
pub fn greedy_argmax<A: Clone>(qs: &[f32], actions: &[A]) -> Option<A> {
    qs.iter()
        .zip(actions.iter())
        .max_by(|a, b| a.0.total_cmp(b.0))
        .map(|(_, a)| a.clone())
}

/// Reusable buffers for the agent's hot paths (action selection and the
/// replay-minibatch train step): network scratch plus the encoded input
/// matrices and Q-value vectors. Purely transient — never checkpointed,
/// never affects results.
#[derive(Debug, Default)]
struct AgentScratch {
    mlp: MlpScratch,
    /// Encoded candidate actions for one state (action selection).
    input: Matrix,
    q_out: Vec<f32>,
    /// Encoded next-state candidate actions for a whole minibatch.
    next_inputs: Matrix,
    next_q: Vec<f32>,
    next_q_online: Vec<f32>,
    /// Encoded (state, action) training rows.
    inputs: Matrix,
    targets: Vec<f32>,
    ranges: Vec<(usize, usize)>,
}

/// A Deep-Q agent over some environment type.
#[derive(Debug)]
pub struct DqnAgent<E: QEnvironment> {
    q: Mlp,
    target: Mlp,
    opt: Adam,
    cfg: DqnConfig,
    epsilon: f64,
    buffer: ReplayBuffer<E::State, E::Action>,
    rng: StdRng,
    scratch: AgentScratch,
}

impl<E: QEnvironment> DqnAgent<E> {
    pub fn new(input_dim: usize, cfg: DqnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![input_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let q = Mlp::new(&dims, &mut rng);
        // Independent random target initialization (Algorithm 1, line 2).
        let target = Mlp::new(&dims, &mut rng);
        let opt = Adam::new(cfg.learning_rate, q.layers());
        Self {
            target,
            epsilon: cfg.epsilon_start,
            buffer: ReplayBuffer::new(cfg.buffer_size),
            rng,
            q,
            opt,
            cfg,
            scratch: AgentScratch::default(),
        }
    }

    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Warm-start exploration (online phase starts at the ε reached after
    /// half the offline episodes, Section 4.2).
    pub fn set_epsilon(&mut self, eps: f64) {
        self.epsilon = eps.clamp(0.0, 1.0);
    }

    pub fn q_network(&self) -> &Mlp {
        &self.q
    }

    /// Batch Q-values for every action in `actions` at `state`. The whole
    /// batch shares one state, so the rows are filled by
    /// [`QEnvironment::encode_batch`] (state prefix encoded once).
    /// Allocating compat path — the agent's own hot paths go through the
    /// scratch-reusing [`Self::fill_q_values`].
    pub fn q_values(&self, env: &E, state: &E::State, actions: &[E::Action]) -> Vec<f32> {
        assert!(!actions.is_empty());
        let dim = env.input_dim();
        let mut batch = Matrix::zeros(actions.len(), dim);
        env.encode_batch(state, actions, batch.data_mut());
        self.q.predict_batch(&batch)
    }

    /// [`Self::q_values`] into the agent's scratch buffers — no per-call
    /// allocation. Results land in `scratch.q_out`.
    fn fill_q_values(&mut self, pool: Pool, env: &E, state: &E::State, actions: &[E::Action]) {
        let dim = env.input_dim();
        let s = &mut self.scratch;
        // Zeroed, not just reshaped: encoders may fill rows sparsely over
        // the zero background the old `Matrix::zeros` provided.
        s.input.resize_zeroed(actions.len(), dim);
        env.encode_batch(state, actions, s.input.data_mut());
        self.q
            .predict_batch_into(pool, &s.input, &mut s.mlp, &mut s.q_out);
    }

    /// Q-network forward over pre-encoded input rows, reusing the agent's
    /// scratch — the batched-inference entry point for callers (committee
    /// coalescing) that assemble their own row batches.
    pub fn q_forward_batch(&mut self, pool: Pool, inputs: &Matrix, out: &mut Vec<f32>) {
        self.q
            .predict_batch_into(pool, inputs, &mut self.scratch.mlp, out);
    }

    /// ε-greedy action selection (greedy when `explore` is false).
    pub fn select_action(&mut self, env: &E, state: &E::State, explore: bool) -> E::Action {
        let actions = env.actions(state);
        assert!(!actions.is_empty(), "environment has no valid actions");
        if explore && self.rng.gen::<f64>() < self.epsilon {
            let i = self.rng.gen_range(0..actions.len());
            if let Some(a) = actions.get(i) {
                return a.clone();
            }
        }
        let pool = Pool::current();
        self.fill_q_values(pool, env, state, &actions);
        greedy_argmax(&self.scratch.q_out, &actions).unwrap_or_else(|| actions[0].clone())
    }

    /// Store a transition in the replay buffer.
    pub fn remember(&mut self, t: Transition<E::State, E::Action>) {
        self.buffer.push(t);
    }

    /// Drop all stored transitions. Called when the reward source changes
    /// (offline → online): cost-model rewards and measured runtimes live on
    /// different scales, and replaying stale transitions would poison the
    /// Q-targets.
    pub fn clear_buffer(&mut self) {
        self.buffer = ReplayBuffer::new(self.cfg.buffer_size);
    }

    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// One minibatch update (Algorithm 1, lines 10–11) plus a target-network
    /// soft update (line 13). Returns the batch loss, or `None` if the
    /// buffer is still smaller than the batch size.
    ///
    /// The `max_a' Q_target(s', a')` terms for the whole minibatch are
    /// evaluated in a single batched forward pass — the dominant cost of a
    /// training step.
    pub fn train_step(&mut self, env: &E) -> Option<f32> {
        if self.buffer.len() < self.cfg.batch_size {
            return None;
        }
        // The ambient pool is resolved once per train step and passed
        // through every kernel below — no per-matmul environment lookups.
        let pool = Pool::current();
        let dim = env.input_dim();
        // Sampled transitions stay borrowed from the buffer — the later
        // network/optimizer accesses touch disjoint fields, so nothing
        // needs to be cloned out.
        let batch = self.buffer.sample(&mut self.rng, self.cfg.batch_size);

        // Encode every next-state candidate action into one big matrix,
        // one batched (prefix-reused) encode per transition, reusing the
        // scratch matrices across steps (zeroed — encoders may fill rows
        // sparsely over the zero background `Matrix::zeros` used to give).
        let s = &mut self.scratch;
        s.ranges.clear();
        let mut total = 0usize;
        let per_sample_actions: Vec<Vec<E::Action>> = batch
            .iter()
            .map(|t| {
                let a = env.actions(&t.next_state);
                s.ranges.push((total, total + a.len()));
                total += a.len();
                a
            })
            .collect();
        s.next_inputs.resize_zeroed(total.max(1), dim);
        let mut row = 0;
        for (t, actions) in batch.iter().zip(&per_sample_actions) {
            let span = &mut s.next_inputs.data_mut()[row * dim..(row + actions.len()) * dim];
            env.encode_batch(&t.next_state, actions, span);
            row += actions.len();
        }
        // The dominant cost of a training step: one batched target-net
        // forward over every candidate row.
        if total > 0 {
            self.target
                .predict_batch_into(pool, &s.next_inputs, &mut s.mlp, &mut s.next_q);
        } else {
            s.next_q.clear();
        }
        // Double DQN: the online network selects the next action, the
        // target network evaluates it.
        let use_online = self.cfg.double_dqn && total > 0;
        if use_online {
            self.q
                .predict_batch_into(pool, &s.next_inputs, &mut s.mlp, &mut s.next_q_online);
        }

        s.inputs.resize_zeroed(batch.len(), dim);
        s.targets.clear();
        for (i, t) in batch.iter().enumerate() {
            env.encode(&t.state, &t.action, s.inputs.row_mut(i));
            let (lo, hi) = s.ranges.get(i).copied().unwrap_or((0, 0));
            let max_next = if lo == hi {
                0.0
            } else if use_online {
                let online = &s.next_q_online;
                let best = (lo..hi)
                    .max_by(|a, b| online[*a].total_cmp(&online[*b]))
                    .unwrap_or(lo);
                s.next_q.get(best).copied().unwrap_or(0.0) as f64
            } else {
                s.next_q[lo..hi]
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max) as f64
            };
            s.targets
                .push((t.reward + self.cfg.gamma * max_next) as f32);
        }
        let loss = match self.cfg.loss {
            QLoss::Mse => {
                self.q
                    .train_mse_with(pool, &s.inputs, &s.targets, &mut self.opt, &mut s.mlp)
            }
            QLoss::Huber(d) => {
                self.q
                    .train_huber_with(pool, &s.inputs, &s.targets, &mut self.opt, d, &mut s.mlp)
            }
        };
        self.target.soft_update_from(&self.q, self.cfg.tau);
        Some(loss)
    }

    /// Per-episode ε decay (Algorithm 1, line 12).
    pub fn decay_epsilon(&mut self) {
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
    }

    /// RNG access for callers that need correlated randomness (tests).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Target network (read access for checkpointing).
    pub fn target_network(&self) -> &Mlp {
        &self.target
    }

    /// Optimizer (read access for checkpointing: Adam moments are part of
    /// the bit-identical resume contract).
    pub fn optimizer(&self) -> &Adam {
        &self.opt
    }

    /// Replay buffer (read access for checkpointing).
    pub fn buffer(&self) -> &ReplayBuffer<E::State, E::Action> {
        &self.buffer
    }

    /// Raw policy-RNG state words, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild an agent from fully checkpointed parts — unlike
    /// [`DqnAgent::restore`], this resumes training bit-identically:
    /// optimizer moments, replay contents and the RNG stream all continue
    /// exactly where they left off.
    pub fn from_raw_parts(
        cfg: DqnConfig,
        q: Mlp,
        target: Mlp,
        opt: Adam,
        epsilon: f64,
        buffer: ReplayBuffer<E::State, E::Action>,
        rng_state: [u64; 4],
    ) -> Self {
        Self {
            q,
            target,
            opt,
            cfg,
            epsilon,
            buffer,
            rng: StdRng::from_state(rng_state),
            scratch: AgentScratch::default(),
        }
    }

    /// Serializable snapshot of the trained policy (networks + ε + config).
    /// The replay buffer is transient and not included.
    pub fn snapshot(&self) -> AgentSnapshot {
        AgentSnapshot {
            q: self.q.clone(),
            target: self.target.clone(),
            epsilon: self.epsilon,
            cfg: self.cfg.clone(),
        }
    }

    /// Rebuild an agent from a snapshot (fresh optimizer state and replay
    /// buffer; further training continues from the restored weights).
    pub fn restore(snapshot: AgentSnapshot) -> Self {
        let opt = Adam::new(snapshot.cfg.learning_rate, snapshot.q.layers());
        let rng = StdRng::seed_from_u64(snapshot.cfg.seed ^ 0x5E57_0123);
        Self {
            opt,
            buffer: ReplayBuffer::new(snapshot.cfg.buffer_size),
            rng,
            epsilon: snapshot.epsilon,
            q: snapshot.q,
            target: snapshot.target,
            cfg: snapshot.cfg,
            scratch: AgentScratch::default(),
        }
    }
}

/// Persisted form of a trained agent.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AgentSnapshot {
    pub q: Mlp,
    pub target: Mlp,
    pub epsilon: f64,
    pub cfg: DqnConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DqnConfig;
    use crate::env::QEnvironment;

    struct TwoArm;
    impl QEnvironment for TwoArm {
        type State = u8;
        type Action = u8;
        fn input_dim(&self) -> usize {
            3
        }
        fn reset(&mut self) -> u8 {
            0
        }
        fn actions(&self, _s: &u8) -> Vec<u8> {
            vec![0, 1]
        }
        fn encode(&self, s: &u8, a: &u8, out: &mut [f32]) {
            out.fill(0.0);
            out[0] = *s as f32;
            out[1 + *a as usize] = 1.0;
        }
        fn step(&mut self, _s: &u8, a: &u8) -> (u8, f64) {
            (0, if *a == 1 { 1.0 } else { 0.0 })
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_policy() {
        let env = TwoArm;
        let cfg = DqnConfig::quick_test().with_seed(8);
        let mut agent: DqnAgent<TwoArm> = DqnAgent::new(env.input_dim(), cfg);
        agent.set_epsilon(0.25);
        let snap = agent.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let restored: AgentSnapshot = serde_json::from_str(&json).unwrap();
        let mut back: DqnAgent<TwoArm> = DqnAgent::restore(restored);
        assert_eq!(back.epsilon(), 0.25);
        // Greedy decisions identical before/after.
        back.set_epsilon(0.0);
        agent.set_epsilon(0.0);
        for s in [0u8, 1] {
            assert_eq!(
                agent.select_action(&env, &s, true),
                back.select_action(&env, &s, true)
            );
        }
    }
}
