//! The DQN agent: Q-network, target network, replay, ε-greedy policy.

use crate::buffer::{ReplayBuffer, Transition};
use crate::config::{DqnConfig, QLoss};
use crate::env::QEnvironment;
use crate::profile::{self, Phase};
use lpa_nn::{Adam, Matrix, Mlp, MlpScratch, Pool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Greedy argmax over parallel Q-value / action slices, replicating the
/// agent's tie-breaking exactly: under `total_cmp`, the *last* maximum
/// wins. Batched inference paths (committee coalescing) must route
/// through this same helper so a tie never picks a different action than
/// the sequential path would.
pub fn greedy_argmax<A: Clone>(qs: &[f32], actions: &[A]) -> Option<A> {
    qs.iter()
        .zip(actions.iter())
        .max_by(|a, b| a.0.total_cmp(b.0))
        .map(|(_, a)| a.clone())
}

/// Borrowed pieces of one staged network forward, in the order
/// [`lpa_nn::GroupForward`] consumes them: network, pre-encoded input
/// rows, network scratch, output vector.
pub(crate) type ForwardParts<'a> = (&'a Mlp, &'a Matrix, &'a mut MlpScratch, &'a mut Vec<f32>);

/// Borrowed pieces of one staged backward pass, in the order
/// [`lpa_nn::GroupTrain`] consumes them: network, encoded training rows,
/// targets, optimizer, Huber delta (`None` = MSE), network scratch.
pub(crate) type BackwardParts<'a> = (
    &'a mut Mlp,
    &'a Matrix,
    &'a [f32],
    &'a mut Adam,
    Option<f32>,
    &'a mut MlpScratch,
);

/// Reusable buffers for the agent's hot paths (action selection and the
/// replay-minibatch train step): network scratch plus the encoded input
/// matrices, Q-value vectors and flattened action arenas. Purely
/// transient — never checkpointed, never affects results. Generic over
/// the environment's action type so candidate actions land in reused
/// arenas instead of fresh vectors each step.
#[derive(Debug)]
struct AgentScratch<A> {
    mlp: MlpScratch,
    /// Encoded candidate actions for one state (action selection).
    input: Matrix,
    q_out: Vec<f32>,
    /// Candidate actions of the state being selected on.
    sel_actions: Vec<A>,
    /// Encoded next-state candidate actions for a whole minibatch.
    next_inputs: Matrix,
    next_q: Vec<f32>,
    next_q_online: Vec<f32>,
    /// Flattened next-state candidate actions, indexed by `ranges`.
    next_actions: Vec<A>,
    /// Replay-buffer slot indices of the current minibatch.
    sample_idx: Vec<usize>,
    /// Total candidate rows staged in `next_inputs` (see `ranges`).
    total: usize,
    /// Whether the staged step evaluates the online net (double DQN).
    use_online: bool,
    /// Encoded (state, action) training rows.
    inputs: Matrix,
    targets: Vec<f32>,
    ranges: Vec<(usize, usize)>,
}

// Manual impl: a derive would demand `A: Default` for no reason.
impl<A> Default for AgentScratch<A> {
    fn default() -> Self {
        Self {
            mlp: MlpScratch::default(),
            input: Matrix::default(),
            q_out: Vec::new(),
            sel_actions: Vec::new(),
            next_inputs: Matrix::default(),
            next_q: Vec::new(),
            next_q_online: Vec::new(),
            next_actions: Vec::new(),
            sample_idx: Vec::new(),
            total: 0,
            use_online: false,
            inputs: Matrix::default(),
            targets: Vec::new(),
            ranges: Vec::new(),
        }
    }
}

/// A Deep-Q agent over some environment type.
#[derive(Debug)]
pub struct DqnAgent<E: QEnvironment> {
    q: Mlp,
    target: Mlp,
    opt: Adam,
    cfg: DqnConfig,
    epsilon: f64,
    buffer: ReplayBuffer<E::State, E::Action>,
    rng: StdRng,
    scratch: AgentScratch<E::Action>,
}

impl<E: QEnvironment> DqnAgent<E> {
    pub fn new(input_dim: usize, cfg: DqnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![input_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let q = Mlp::new(&dims, &mut rng);
        // Independent random target initialization (Algorithm 1, line 2).
        let target = Mlp::new(&dims, &mut rng);
        let opt = Adam::new(cfg.learning_rate, q.layers());
        Self {
            target,
            epsilon: cfg.epsilon_start,
            buffer: ReplayBuffer::new(cfg.buffer_size),
            rng,
            q,
            opt,
            cfg,
            scratch: AgentScratch::default(),
        }
    }

    pub fn config(&self) -> &DqnConfig {
        &self.cfg
    }

    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Warm-start exploration (online phase starts at the ε reached after
    /// half the offline episodes, Section 4.2).
    pub fn set_epsilon(&mut self, eps: f64) {
        self.epsilon = eps.clamp(0.0, 1.0);
    }

    pub fn q_network(&self) -> &Mlp {
        &self.q
    }

    /// Batch Q-values for every action in `actions` at `state`. The whole
    /// batch shares one state, so the rows are filled by
    /// [`QEnvironment::encode_batch`] (state prefix encoded once).
    /// Allocating compat path — the agent's own hot paths go through the
    /// scratch-reusing [`Self::fill_q_values`].
    pub fn q_values(&self, env: &E, state: &E::State, actions: &[E::Action]) -> Vec<f32> {
        assert!(!actions.is_empty());
        let dim = env.input_dim();
        let mut batch = Matrix::zeros(actions.len(), dim);
        env.encode_batch(state, actions, batch.data_mut());
        self.q.predict_batch(&batch)
    }

    /// Q-network forward over pre-encoded input rows, reusing the agent's
    /// scratch — the batched-inference entry point for callers (committee
    /// coalescing) that assemble their own row batches.
    pub fn q_forward_batch(&mut self, pool: Pool, inputs: &Matrix, out: &mut Vec<f32>) {
        self.q
            .predict_batch_into(pool, inputs, &mut self.scratch.mlp, out);
    }

    /// ε-greedy action selection (greedy when `explore` is false).
    pub fn select_action(&mut self, env: &E, state: &E::State, explore: bool) -> E::Action {
        if let Some(a) = self.select_begin(env, state, explore) {
            return a;
        }
        let pool = Pool::current();
        let t0 = profile::start();
        {
            let Self { q, scratch, .. } = self;
            q.predict_batch_into(pool, &scratch.input, &mut scratch.mlp, &mut scratch.q_out);
        }
        profile::stop(t0, Phase::Nn);
        self.select_finish()
    }

    /// First stage of action selection: enumerate candidates into the
    /// scratch arena, take the ε draw, and — on the greedy path — encode
    /// the candidate rows into `scratch.input`. Returns the chosen action
    /// directly when exploration fires; otherwise returns `None` and
    /// leaves the encoded rows staged for a Q forward (whose results
    /// [`Self::select_finish`] turns into an action). Splitting selection
    /// this way lets the lockstep committee driver run *one grouped
    /// forward across every expert* between the two stages; the
    /// RNG draws and encode order are exactly those of
    /// [`Self::select_action`], so staging never changes a decision.
    pub(crate) fn select_begin(
        &mut self,
        env: &E,
        state: &E::State,
        explore: bool,
    ) -> Option<E::Action> {
        let s = &mut self.scratch;
        s.sel_actions.clear();
        let t0 = profile::start();
        env.actions_into(state, &mut s.sel_actions);
        profile::stop(t0, Phase::Env);
        assert!(
            !s.sel_actions.is_empty(),
            "environment has no valid actions"
        );
        if explore && self.rng.gen::<f64>() < self.epsilon {
            let i = self.rng.gen_range(0..s.sel_actions.len());
            if let Some(a) = s.sel_actions.get(i) {
                return Some(a.clone());
            }
        }
        let dim = env.input_dim();
        let t1 = profile::start();
        // Zeroed unless the encoder promises full-row writes: sparse
        // encoders fill rows over the zero background the old
        // `Matrix::zeros` provided.
        if env.encode_overwrites_fully() {
            s.input.resize_for_overwrite(s.sel_actions.len(), dim);
        } else {
            s.input.resize_zeroed(s.sel_actions.len(), dim);
        }
        env.encode_batch(state, &s.sel_actions, s.input.data_mut());
        profile::stop(t1, Phase::Encode);
        None
    }

    /// Second stage of staged selection: greedy argmax over the Q values
    /// a forward pass left in `scratch.q_out` (same tie-breaking as the
    /// sequential path — it routes through [`greedy_argmax`] too).
    pub(crate) fn select_finish(&self) -> E::Action {
        let s = &self.scratch;
        greedy_argmax(&s.q_out, &s.sel_actions).unwrap_or_else(|| s.sel_actions[0].clone())
    }

    /// Borrow the parts of a staged greedy selection the grouped forward
    /// needs: Q-net, encoded candidate rows, network scratch and the
    /// output vector ([`Self::select_finish`] reads the latter).
    pub(crate) fn select_forward_parts(&mut self) -> ForwardParts<'_> {
        let Self { q, scratch, .. } = self;
        (&*q, &scratch.input, &mut scratch.mlp, &mut scratch.q_out)
    }

    /// Store a transition in the replay buffer.
    pub fn remember(&mut self, t: Transition<E::State, E::Action>) {
        self.buffer.push(t);
    }

    /// Drop all stored transitions. Called when the reward source changes
    /// (offline → online): cost-model rewards and measured runtimes live on
    /// different scales, and replaying stale transitions would poison the
    /// Q-targets.
    pub fn clear_buffer(&mut self) {
        self.buffer = ReplayBuffer::new(self.cfg.buffer_size);
    }

    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// One minibatch update (Algorithm 1, lines 10–11) plus a target-network
    /// soft update (line 13). Returns the batch loss, or `None` if the
    /// buffer is still smaller than the batch size.
    ///
    /// The `max_a' Q_target(s', a')` terms for the whole minibatch are
    /// evaluated in a single batched forward pass — the dominant cost of a
    /// training step.
    pub fn train_step(&mut self, env: &E) -> Option<f32> {
        if !self.train_begin(env) {
            return None;
        }
        // The ambient pool is resolved once per train step and passed
        // through every kernel below — no per-matmul environment lookups.
        let pool = Pool::current();
        let t0 = profile::start();
        // The dominant cost of a training step: one batched target-net
        // forward over every candidate row.
        if self.scratch.total > 0 {
            let Self {
                target, scratch, ..
            } = self;
            target.predict_batch_into(
                pool,
                &scratch.next_inputs,
                &mut scratch.mlp,
                &mut scratch.next_q,
            );
        } else {
            self.scratch.next_q.clear();
        }
        // Double DQN: the online network selects the next action, the
        // target network evaluates it.
        if self.scratch.use_online {
            let Self { q, scratch, .. } = self;
            q.predict_batch_into(
                pool,
                &scratch.next_inputs,
                &mut scratch.mlp,
                &mut scratch.next_q_online,
            );
        }
        profile::stop(t0, Phase::Nn);
        self.train_targets();
        let t1 = profile::start();
        let loss = {
            let (q, x, targets, opt, huber, mlp) = self.train_backward_parts();
            match huber {
                None => q.train_mse_with(pool, x, targets, opt, mlp),
                Some(d) => q.train_huber_with(pool, x, targets, opt, d, mlp),
            }
        };
        self.train_finish();
        profile::stop(t1, Phase::Nn);
        Some(loss)
    }

    /// Stage 1 of a (possibly lockstep-grouped) train step: sample the
    /// minibatch, enumerate and encode every next-state candidate row and
    /// every `(state, action)` training row into the scratch arenas.
    /// Returns `false` (staging nothing) while the buffer is smaller than
    /// the batch size. RNG consumption and the encoder call sequence are
    /// exactly those of the former monolithic step — the current-state
    /// rows were always encoded with the same arguments in the same
    /// relative order, and the forwards in between touch no env state.
    pub(crate) fn train_begin(&mut self, env: &E) -> bool {
        if self.buffer.len() < self.cfg.batch_size {
            return false;
        }
        let dim = env.input_dim();
        let overwrites = env.encode_overwrites_fully();
        let Self {
            buffer,
            rng,
            cfg,
            scratch: s,
            ..
        } = self;
        let t0 = profile::start();
        buffer.sample_indices(rng, cfg.batch_size, &mut s.sample_idx);
        profile::stop(t0, Phase::Replay);
        // Enumerate next-state candidates into the flat arena, one
        // `(lo, hi)` range per transition.
        let t1 = profile::start();
        s.ranges.clear();
        s.next_actions.clear();
        let mut total = 0usize;
        for &bi in &s.sample_idx {
            let before = s.next_actions.len();
            env.actions_into(&buffer.items()[bi].next_state, &mut s.next_actions);
            let n = s.next_actions.len() - before;
            s.ranges.push((total, total + n));
            total += n;
        }
        s.total = total;
        s.use_online = cfg.double_dqn && total > 0;
        profile::stop(t1, Phase::Env);
        // Encode every candidate row (batched, prefix-reused) and every
        // training row, reusing the scratch matrices across steps.
        let t2 = profile::start();
        if overwrites {
            s.next_inputs.resize_for_overwrite(total.max(1), dim);
        } else {
            s.next_inputs.resize_zeroed(total.max(1), dim);
        }
        let mut row = 0usize;
        for (i, &bi) in s.sample_idx.iter().enumerate() {
            let (lo, hi) = s.ranges.get(i).copied().unwrap_or((0, 0));
            let actions = &s.next_actions[lo..hi];
            let span = &mut s.next_inputs.data_mut()[row * dim..(row + actions.len()) * dim];
            env.encode_batch(&buffer.items()[bi].next_state, actions, span);
            row += actions.len();
        }
        if overwrites {
            s.inputs.resize_for_overwrite(s.sample_idx.len(), dim);
        } else {
            s.inputs.resize_zeroed(s.sample_idx.len(), dim);
        }
        for (i, &bi) in s.sample_idx.iter().enumerate() {
            let t = &buffer.items()[bi];
            env.encode(&t.state, &t.action, s.inputs.row_mut(i));
        }
        profile::stop(t2, Phase::Encode);
        true
    }

    /// Candidate rows staged by [`Self::train_begin`] (0 = terminal-only).
    pub(crate) fn staged_total(&self) -> usize {
        self.scratch.total
    }

    /// Whether the staged step also needs an online-net forward.
    pub(crate) fn staged_use_online(&self) -> bool {
        self.scratch.use_online
    }

    /// Borrow the target-net forward of a staged train step (fills
    /// `next_q`). Only meaningful when [`Self::staged_total`] `> 0`.
    pub(crate) fn target_forward_parts(&mut self) -> ForwardParts<'_> {
        let Self {
            target, scratch, ..
        } = self;
        (
            &*target,
            &scratch.next_inputs,
            &mut scratch.mlp,
            &mut scratch.next_q,
        )
    }

    /// Borrow the online-net forward of a staged train step (fills
    /// `next_q_online`, double DQN only).
    pub(crate) fn online_forward_parts(&mut self) -> ForwardParts<'_> {
        let Self { q, scratch, .. } = self;
        (
            &*q,
            &scratch.next_inputs,
            &mut scratch.mlp,
            &mut scratch.next_q_online,
        )
    }

    /// Stage 3: fold the staged forwards into Bellman targets — the exact
    /// per-transition loop of the monolithic step (including the
    /// last-max-wins `total_cmp` tie-breaking of double DQN).
    pub(crate) fn train_targets(&mut self) {
        let Self {
            buffer,
            cfg,
            scratch: s,
            ..
        } = self;
        s.targets.clear();
        for (i, &bi) in s.sample_idx.iter().enumerate() {
            let t = &buffer.items()[bi];
            let (lo, hi) = s.ranges.get(i).copied().unwrap_or((0, 0));
            let max_next = if lo == hi {
                0.0
            } else if s.use_online {
                let online = &s.next_q_online;
                let best = (lo..hi)
                    .max_by(|a, b| online[*a].total_cmp(&online[*b]))
                    .unwrap_or(lo);
                s.next_q.get(best).copied().unwrap_or(0.0) as f64
            } else {
                s.next_q[lo..hi]
                    .iter()
                    .cloned()
                    .fold(f32::NEG_INFINITY, f32::max) as f64
            };
            s.targets.push((t.reward + cfg.gamma * max_next) as f32);
        }
    }

    /// Borrow everything the grouped backward pass needs for this agent's
    /// staged minibatch: online net, encoded rows, targets, optimizer,
    /// Huber delta (`None` = MSE) and network scratch.
    pub(crate) fn train_backward_parts(&mut self) -> BackwardParts<'_> {
        let Self {
            q,
            opt,
            cfg,
            scratch: s,
            ..
        } = self;
        let huber = match cfg.loss {
            QLoss::Mse => None,
            QLoss::Huber(d) => Some(d),
        };
        (q, &s.inputs, &s.targets, opt, huber, &mut s.mlp)
    }

    /// Final stage: the target-network soft update (Algorithm 1, l. 13).
    pub(crate) fn train_finish(&mut self) {
        self.target.soft_update_from(&self.q, self.cfg.tau);
    }

    /// Per-episode ε decay (Algorithm 1, line 12).
    pub fn decay_epsilon(&mut self) {
        self.epsilon = (self.epsilon * self.cfg.epsilon_decay).max(self.cfg.epsilon_min);
    }

    /// RNG access for callers that need correlated randomness (tests).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Target network (read access for checkpointing).
    pub fn target_network(&self) -> &Mlp {
        &self.target
    }

    /// Optimizer (read access for checkpointing: Adam moments are part of
    /// the bit-identical resume contract).
    pub fn optimizer(&self) -> &Adam {
        &self.opt
    }

    /// Replay buffer (read access for checkpointing).
    pub fn buffer(&self) -> &ReplayBuffer<E::State, E::Action> {
        &self.buffer
    }

    /// Raw policy-RNG state words, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild an agent from fully checkpointed parts — unlike
    /// [`DqnAgent::restore`], this resumes training bit-identically:
    /// optimizer moments, replay contents and the RNG stream all continue
    /// exactly where they left off.
    pub fn from_raw_parts(
        cfg: DqnConfig,
        q: Mlp,
        target: Mlp,
        opt: Adam,
        epsilon: f64,
        buffer: ReplayBuffer<E::State, E::Action>,
        rng_state: [u64; 4],
    ) -> Self {
        Self {
            q,
            target,
            opt,
            cfg,
            epsilon,
            buffer,
            rng: StdRng::from_state(rng_state),
            scratch: AgentScratch::default(),
        }
    }

    /// Serializable snapshot of the trained policy (networks + ε + config).
    /// The replay buffer is transient and not included.
    pub fn snapshot(&self) -> AgentSnapshot {
        AgentSnapshot {
            q: self.q.clone(),
            target: self.target.clone(),
            epsilon: self.epsilon,
            cfg: self.cfg.clone(),
        }
    }

    /// Rebuild an agent from a snapshot (fresh optimizer state and replay
    /// buffer; further training continues from the restored weights).
    pub fn restore(snapshot: AgentSnapshot) -> Self {
        let opt = Adam::new(snapshot.cfg.learning_rate, snapshot.q.layers());
        let rng = StdRng::seed_from_u64(snapshot.cfg.seed ^ 0x5E57_0123);
        Self {
            opt,
            buffer: ReplayBuffer::new(snapshot.cfg.buffer_size),
            rng,
            epsilon: snapshot.epsilon,
            q: snapshot.q,
            target: snapshot.target,
            cfg: snapshot.cfg,
            scratch: AgentScratch::default(),
        }
    }
}

/// Persisted form of a trained agent.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AgentSnapshot {
    pub q: Mlp,
    pub target: Mlp,
    pub epsilon: f64,
    pub cfg: DqnConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DqnConfig;
    use crate::env::QEnvironment;

    struct TwoArm;
    impl QEnvironment for TwoArm {
        type State = u8;
        type Action = u8;
        fn input_dim(&self) -> usize {
            3
        }
        fn reset(&mut self) -> u8 {
            0
        }
        fn actions(&self, _s: &u8) -> Vec<u8> {
            vec![0, 1]
        }
        fn encode(&self, s: &u8, a: &u8, out: &mut [f32]) {
            out.fill(0.0);
            out[0] = *s as f32;
            out[1 + *a as usize] = 1.0;
        }
        fn step(&mut self, _s: &u8, a: &u8) -> (u8, f64) {
            (0, if *a == 1 { 1.0 } else { 0.0 })
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_policy() {
        let env = TwoArm;
        let cfg = DqnConfig::quick_test().with_seed(8);
        let mut agent: DqnAgent<TwoArm> = DqnAgent::new(env.input_dim(), cfg);
        agent.set_epsilon(0.25);
        let snap = agent.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let restored: AgentSnapshot = serde_json::from_str(&json).unwrap();
        let mut back: DqnAgent<TwoArm> = DqnAgent::restore(restored);
        assert_eq!(back.epsilon(), 0.25);
        // Greedy decisions identical before/after.
        back.set_epsilon(0.0);
        agent.set_epsilon(0.0);
        for s in [0u8, 1] {
            assert_eq!(
                agent.select_action(&env, &s, true),
                back.select_action(&env, &s, true)
            );
        }
    }
}
