//! Experience replay (ring buffer).

use rand::seq::index::sample as index_sample;
use rand::Rng;

/// One observed `(s, a, r, s')` transition.
#[derive(Clone, Debug)]
pub struct Transition<S, A> {
    pub state: S,
    pub action: A,
    pub reward: f64,
    pub next_state: S,
}

/// Fixed-capacity ring buffer with uniform sampling (the paper uses
/// capacity 10 000, minibatch 32 — Table 1).
#[derive(Clone, Debug)]
pub struct ReplayBuffer<S, A> {
    capacity: usize,
    items: Vec<Transition<S, A>>,
    head: usize,
}

impl<S: Clone, A: Clone> ReplayBuffer<S, A> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            head: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn push(&mut self, t: Transition<S, A>) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else if let Some(slot) = self.items.get_mut(self.head) {
            *slot = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Configured capacity (the ring wraps once `len` reaches it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ring-head position — the slot the next overwrite lands in. Part of
    /// the buffer's resumable state: restoring items without the head would
    /// shift which transitions future pushes evict.
    pub fn head(&self) -> usize {
        self.head
    }

    /// Stored transitions in slot order (not insertion order once wrapped).
    pub fn items(&self) -> &[Transition<S, A>] {
        &self.items
    }

    /// Rebuild a buffer from checkpointed parts, exactly as captured by
    /// [`ReplayBuffer::capacity`] / [`ReplayBuffer::items`] /
    /// [`ReplayBuffer::head`].
    pub fn from_parts(capacity: usize, items: Vec<Transition<S, A>>, head: usize) -> Self {
        assert!(capacity > 0);
        assert!(items.len() <= capacity);
        assert!(head < capacity.max(1));
        Self {
            capacity,
            items,
            head,
        }
    }

    /// Uniform sample without replacement (or everything, if fewer stored).
    pub fn sample<R: Rng>(&self, rng: &mut R, batch: usize) -> Vec<&Transition<S, A>> {
        if self.items.len() <= batch {
            return self.items.iter().collect();
        }
        index_sample(rng, self.items.len(), batch)
            .into_iter()
            .map(|i| &self.items[i])
            .collect()
    }

    /// Slot indices of a uniform sample without replacement — the arena
    /// form of [`Self::sample`]: identical RNG consumption (same
    /// `index_sample` call behind the same full-buffer short-circuit), but
    /// the caller's index buffer is reused instead of allocating a vector
    /// of references per train step.
    pub fn sample_indices<R: Rng>(&self, rng: &mut R, batch: usize, out: &mut Vec<usize>) {
        out.clear();
        if self.items.len() <= batch {
            out.extend(0..self.items.len());
            return;
        }
        out.extend(index_sample(rng, self.items.len(), batch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(v: i32) -> Transition<i32, i32> {
        Transition {
            state: v,
            action: v,
            reward: v as f64,
            next_state: v + 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i));
        }
        assert_eq!(b.len(), 3);
        let states: Vec<i32> = b.items.iter().map(|x| x.state).collect();
        // 0 and 1 overwritten by 3 and 4.
        assert!(states.contains(&2) && states.contains(&3) && states.contains(&4));
    }

    #[test]
    fn sample_sizes() {
        let mut b = ReplayBuffer::new(100);
        for i in 0..10 {
            b.push(t(i));
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(b.sample(&mut rng, 4).len(), 4);
        assert_eq!(b.sample(&mut rng, 50).len(), 10);
        // No duplicates when sampling without replacement.
        let s = b.sample(&mut rng, 8);
        let mut seen: Vec<i32> = s.iter().map(|t| t.state).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8);
    }
}
