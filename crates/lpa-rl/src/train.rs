//! The episodic training loop (Algorithm 1) and greedy rollouts for
//! inference (Section 6).

use crate::agent::DqnAgent;
use crate::buffer::Transition;
use crate::env::{EnvCounters, QEnvironment};

/// Summary of one training episode.
#[derive(Clone, Debug)]
pub struct EpisodeStats {
    pub episode: usize,
    /// Sum of rewards over the episode's steps.
    pub total_reward: f64,
    /// Best (maximum) single-step reward seen in the episode.
    pub best_reward: f64,
    pub epsilon: f64,
    /// Mean training loss over the episode (0 before the buffer fills).
    pub mean_loss: f32,
    /// Environment steps taken this episode (wall-less progress counter).
    pub steps: usize,
    /// Minibatch updates performed this episode.
    pub train_steps: usize,
    /// Environment counter deltas for this episode (cache hits/misses,
    /// delta vs full re-costs); all zeros for counter-less environments.
    pub counters: EnvCounters,
}

/// A greedy rollout: the visited states with their rewards.
#[derive(Debug)]
pub struct Trajectory<S> {
    pub states: Vec<S>,
    pub rewards: Vec<f64>,
}

impl<S> Trajectory<S> {
    /// Index of the state with the maximum reward. The paper returns the
    /// best state of the rollout rather than the last one because the
    /// agent oscillates around the optimum (Section 6).
    pub fn best_index(&self) -> usize {
        self.rewards
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }

    pub fn best_state(&self) -> &S {
        self.states
            .get(self.best_index())
            .unwrap_or(&self.states[0])
    }
}

/// Run Algorithm 1 for `episodes` episodes, invoking `on_episode` with the
/// per-episode statistics.
pub fn train<E: QEnvironment>(
    agent: &mut DqnAgent<E>,
    env: &mut E,
    episodes: usize,
    on_episode: impl FnMut(&EpisodeStats),
) {
    train_from(agent, env, 0, episodes, on_episode, |_, _, _| {});
}

/// [`train`] with an explicit starting episode and a post-episode hook.
///
/// The hook fires after each episode's ε decay, when the agent sits at an
/// episode boundary — the checkpoint granularity: a resumed run restarted
/// with `start_episode = k + 1` from state captured at episode `k` replays
/// the remaining episodes bit-identically (the loop consumes no RNG or env
/// state between the hook and the next episode's `reset`).
pub fn train_from<E: QEnvironment>(
    agent: &mut DqnAgent<E>,
    env: &mut E,
    start_episode: usize,
    episodes: usize,
    mut on_episode: impl FnMut(&EpisodeStats),
    mut after_episode: impl FnMut(usize, &DqnAgent<E>, &E),
) {
    let tmax = agent.config().tmax;
    let train_every = agent.config().train_every.max(1);
    for episode in start_episode..episodes {
        let counters_at_start = env.counters();
        let mut state = env.reset();
        let mut total_reward = 0.0;
        let mut best_reward = f64::NEG_INFINITY;
        let mut loss_sum = 0.0f32;
        let mut loss_n = 0u32;
        let mut steps = 0usize;
        for t in 0..tmax {
            let action = agent.select_action(env, &state, true);
            let (next, reward) = env.step(&state, &action);
            steps += 1;
            total_reward += reward;
            best_reward = best_reward.max(reward);
            agent.remember(Transition {
                state: state.clone(),
                action,
                reward,
                next_state: next.clone(),
            });
            if t % train_every == 0 {
                if let Some(l) = agent.train_step(env) {
                    loss_sum += l;
                    loss_n += 1;
                }
            }
            state = next;
        }
        agent.decay_epsilon();
        on_episode(&EpisodeStats {
            episode,
            total_reward,
            best_reward,
            epsilon: agent.epsilon(),
            mean_loss: if loss_n > 0 {
                loss_sum / loss_n as f32
            } else {
                0.0
            },
            steps,
            train_steps: loss_n as usize,
            counters: env.counters().since(&counters_at_start),
        });
        after_episode(episode, agent, env);
    }
}

/// Greedy rollout from `env.reset()` for `tmax` steps; used at inference
/// time. Includes the initial state.
pub fn rollout<E: QEnvironment>(
    agent: &mut DqnAgent<E>,
    env: &mut E,
    tmax: usize,
) -> Trajectory<E::State> {
    let mut state = env.reset();
    let mut states = vec![state.clone()];
    let mut rewards = vec![f64::NEG_INFINITY];
    for _ in 0..tmax {
        let action = agent.select_action(env, &state, false);
        let (next, reward) = env.step(&state, &action);
        states.push(next.clone());
        rewards.push(reward);
        state = next;
    }
    Trajectory { states, rewards }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::config::DqnConfig;
    use crate::env::QEnvironment;

    /// A tiny deterministic MDP: states 0..8 on a line, actions ±1, reward
    /// peaks at state 6. Optimal behaviour walks right and stays.
    pub(crate) struct LineWorld {
        pos_dim: usize,
    }

    impl LineWorld {
        pub(crate) fn new() -> Self {
            Self { pos_dim: 8 }
        }
        fn reward_of(s: usize) -> f64 {
            // Peak at 6.
            -((s as f64) - 6.0).abs()
        }
    }

    impl QEnvironment for LineWorld {
        type State = usize;
        type Action = i32;

        fn input_dim(&self) -> usize {
            self.pos_dim + 2
        }

        fn reset(&mut self) -> usize {
            1
        }

        fn actions(&self, s: &usize) -> Vec<i32> {
            let mut a = Vec::new();
            if *s > 0 {
                a.push(-1);
            }
            if *s + 1 < self.pos_dim {
                a.push(1);
            }
            a
        }

        fn encode(&self, s: &usize, a: &i32, out: &mut [f32]) {
            out.fill(0.0);
            out[*s] = 1.0;
            out[self.pos_dim + usize::from(*a > 0)] = 1.0;
        }

        fn step(&mut self, s: &usize, a: &i32) -> (usize, f64) {
            let next = (*s as i64 + *a as i64).clamp(0, self.pos_dim as i64 - 1) as usize;
            (next, Self::reward_of(next))
        }
    }

    #[test]
    fn dqn_learns_lineworld() {
        let mut env = LineWorld::new();
        let cfg = DqnConfig {
            episodes: 60,
            tmax: 10,
            batch_size: 16,
            hidden: vec![32],
            epsilon_decay: 0.93,
            learning_rate: 3e-3,
            tau: 0.05,
            ..DqnConfig::paper()
        }
        .with_seed(5);
        let mut agent = DqnAgent::new(env.input_dim(), cfg.clone());
        let mut last_stats = None;
        train(&mut agent, &mut env, cfg.episodes, |s| {
            last_stats = Some(s.clone())
        });
        // After training, a greedy rollout must reach the peak state 6.
        let traj = rollout(&mut agent, &mut env, 10);
        let best = traj.best_state();
        assert_eq!(*best, 6, "rollout states: {:?}", traj.states);
        // Epsilon decayed.
        assert!(agent.epsilon() < 0.1, "ε = {}", agent.epsilon());
        let stats = last_stats.unwrap();
        assert!(stats.mean_loss.is_finite());
    }

    #[test]
    fn best_index_prefers_max_reward() {
        let t = Trajectory {
            states: vec!["a", "b", "c"],
            rewards: vec![f64::NEG_INFINITY, -2.0, -5.0],
        };
        assert_eq!(t.best_index(), 1);
        assert_eq!(*t.best_state(), "b");
    }

    #[test]
    fn epsilon_greedy_explores_then_exploits() {
        let mut env = LineWorld::new();
        let cfg = DqnConfig::quick_test().with_seed(1);
        let mut agent: DqnAgent<LineWorld> = DqnAgent::new(env.input_dim(), cfg);
        agent.set_epsilon(1.0);
        // With ε = 1 actions should be random-ish: both directions appear.
        let s = env.reset();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(agent.select_action(&env, &s, true));
        }
        assert_eq!(seen.len(), 2);
        // With ε = 0 the same action is always returned.
        agent.set_epsilon(0.0);
        let a0 = agent.select_action(&env, &s, true);
        for _ in 0..10 {
            assert_eq!(agent.select_action(&env, &s, true), a0);
        }
    }

    #[test]
    fn train_step_requires_full_batch() {
        let mut env = LineWorld::new();
        let cfg = DqnConfig::quick_test().with_seed(2);
        let mut agent: DqnAgent<LineWorld> = DqnAgent::new(env.input_dim(), cfg);
        assert!(agent.train_step(&env).is_none());
        let s = env.reset();
        for _ in 0..8 {
            let a = agent.select_action(&env, &s, true);
            let (n, r) = env.step(&s, &a);
            agent.remember(Transition {
                state: s,
                action: a,
                reward: r,
                next_state: n,
            });
        }
        assert!(agent.train_step(&env).is_some());
    }
}

#[cfg(test)]
mod extension_tests {
    use super::tests::LineWorld;
    use super::*;
    use crate::config::DqnConfig;
    use crate::env::QEnvironment;

    fn cfg() -> DqnConfig {
        DqnConfig {
            episodes: 60,
            tmax: 10,
            batch_size: 16,
            hidden: vec![32],
            epsilon_decay: 0.93,
            learning_rate: 3e-3,
            tau: 0.05,
            ..DqnConfig::paper()
        }
        .with_seed(5)
    }

    #[test]
    fn double_dqn_with_huber_also_solves_lineworld() {
        let mut env = LineWorld::new();
        let c = cfg().with_double_dqn().with_huber(1.0);
        let mut agent = DqnAgent::new(env.input_dim(), c.clone());
        train(&mut agent, &mut env, c.episodes, |_| {});
        let traj = rollout(&mut agent, &mut env, 10);
        assert_eq!(*traj.best_state(), 6, "states: {:?}", traj.states);
    }
}
