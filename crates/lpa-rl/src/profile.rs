//! Opt-in phase timers for the training hot path.
//!
//! When enabled (the `steps_per_sec` bench turns this on), the agent's
//! action-selection and train-step code attribute their wall time to four
//! phases: state/action **encode**, **env** interaction (action
//! enumeration), **replay** sampling, and **nn** forward/backward work.
//! Accumulators are thread-local `u64` nanosecond counters — no floats
//! (determinism lint L005 covers this crate) and no cross-thread state.
//! When disabled, instrumented sites pay a single thread-local boolean
//! read and no clock calls, so training results and throughput are
//! unaffected. Timers never feed back into training — they are pure
//! observability and cannot change a single bit of the trajectory.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ENCODE_NS: Cell<u64> = const { Cell::new(0) };
    static ENV_NS: Cell<u64> = const { Cell::new(0) };
    static REPLAY_NS: Cell<u64> = const { Cell::new(0) };
    static NN_NS: Cell<u64> = const { Cell::new(0) };
}

/// Which accumulator a timed section charges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// `(state, action)` featurization.
    Encode,
    /// Environment work: action enumeration and stepping.
    Env,
    /// Replay-buffer sampling.
    Replay,
    /// Network forwards, backward passes and target updates.
    Nn,
}

/// Accumulated per-phase nanoseconds for the calling thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    pub encode_ns: u64,
    pub env_ns: u64,
    pub replay_ns: u64,
    pub nn_ns: u64,
}

/// Turn phase accounting on or off for the calling thread.
pub fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

/// Whether phase accounting is on for the calling thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Zero all phase accumulators for the calling thread.
pub fn reset() {
    ENCODE_NS.with(|c| c.set(0));
    ENV_NS.with(|c| c.set(0));
    REPLAY_NS.with(|c| c.set(0));
    NN_NS.with(|c| c.set(0));
}

/// Snapshot the calling thread's accumulators.
pub fn snapshot() -> PhaseNanos {
    PhaseNanos {
        encode_ns: ENCODE_NS.with(Cell::get),
        env_ns: ENV_NS.with(Cell::get),
        replay_ns: REPLAY_NS.with(Cell::get),
        nn_ns: NN_NS.with(Cell::get),
    }
}

/// Start a timed section: `None` (and no clock read) when disabled.
#[inline]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Close a timed section opened by [`start`], charging `phase`.
#[inline]
pub fn stop(t0: Option<Instant>, phase: Phase) {
    let Some(t0) = t0 else {
        return;
    };
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let cell = match phase {
        Phase::Encode => &ENCODE_NS,
        Phase::Env => &ENV_NS,
        Phase::Replay => &REPLAY_NS,
        Phase::Nn => &NN_NS,
    };
    cell.with(|c| c.set(c.get().saturating_add(ns)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sections_cost_nothing_and_record_nothing() {
        set_enabled(false);
        reset();
        let t = start();
        assert!(t.is_none());
        stop(t, Phase::Nn);
        assert_eq!(snapshot(), PhaseNanos::default());
    }

    #[test]
    fn enabled_sections_accumulate_into_their_phase() {
        set_enabled(true);
        reset();
        let t = start();
        assert!(t.is_some());
        std::hint::black_box(vec![0u8; 4096]);
        stop(t, Phase::Encode);
        let snap = snapshot();
        assert!(snap.encode_ns > 0);
        assert_eq!(snap.nn_ns, 0);
        set_enabled(false);
        reset();
    }
}
