//! Lockstep training of several independent agents — the cross-expert
//! batching behind the committee's grouped train path.
//!
//! Each committee expert trains against its own environment with its own
//! RNG streams; one expert's minibatch matmuls (16–32 rows through a
//! 128-64 net) are far too small to occupy a wide pool. [`train_lockstep`]
//! advances every `(agent, env)` pair through the *same* episode/step
//! schedule and, at each network stage, stacks all members' same-shaped
//! work into one [`lpa_nn::grouped`] dispatch: one grouped forward for
//! action selection, one for the target nets, one for the online nets
//! (double DQN), and one grouped backward pass per train step.
//!
//! Bit-exactness: members share no state — not the networks, not the
//! replay buffers, not the RNGs, not the environments. Every per-member
//! stage runs serially in member order with exactly the code the
//! sequential loop ([`crate::train::train_from`]) runs, and the grouped
//! network stages are bit-identical to per-member calls (proven by the
//! `lpa-nn` grouped differential tests). Training members A and B in
//! lockstep therefore produces, for each member, exactly the bits that
//! training it alone would — the schedule interleaving is unobservable.

use crate::agent::DqnAgent;
use crate::buffer::Transition;
use crate::env::QEnvironment;
use crate::train::EpisodeStats;
use lpa_nn::{copy_predictions, forward_group, train_scalar_group, GroupForward, GroupTrain, Pool};

/// Run one grouped forward over staged `(net, x, scratch, out)` parts and
/// copy each member's scalar predictions into its output vector.
fn grouped_predict(pool: Pool, parts: &mut [crate::agent::ForwardParts<'_>]) {
    {
        let mut views: Vec<GroupForward<'_>> = parts
            .iter_mut()
            .map(|(net, x, scratch, _)| GroupForward { net, x, scratch })
            .collect();
        forward_group(pool, &mut views);
    }
    for (net, _, scratch, out) in parts.iter_mut() {
        copy_predictions(net, scratch, out);
    }
}

/// Train every `(agent, env)` member for `episodes` episodes in lockstep,
/// batching the network work of all members into grouped kernels.
/// `on_episode` fires once per episode with every member's stats (indexed
/// by member order). All members must share `tmax` and `train_every`
/// (they define the common schedule); other config fields — seed, loss,
/// double-DQN, learning rate — may differ per member.
pub fn train_lockstep<E: QEnvironment>(
    members: &mut [(&mut DqnAgent<E>, &mut E)],
    episodes: usize,
    mut on_episode: impl FnMut(usize, &[EpisodeStats]),
) {
    let Some((first, _)) = members.first() else {
        return;
    };
    let tmax = first.config().tmax;
    let train_every = first.config().train_every.max(1);
    for (agent, _) in members.iter() {
        assert_eq!(
            agent.config().tmax,
            tmax,
            "lockstep members must share tmax"
        );
        assert_eq!(
            agent.config().train_every.max(1),
            train_every,
            "lockstep members must share train_every"
        );
    }
    let n = members.len();
    let pool = Pool::current();

    struct Episode<S> {
        state: S,
        total_reward: f64,
        best_reward: f64,
        loss_sum: f32,
        loss_n: u32,
        steps: usize,
        counters_at_start: crate::env::EnvCounters,
    }

    let mut pending: Vec<Option<E::Action>> = Vec::with_capacity(n);
    let mut ready: Vec<bool> = Vec::with_capacity(n);
    for episode in 0..episodes {
        let mut eps: Vec<Episode<E::State>> = members
            .iter_mut()
            .map(|(_, env)| {
                let counters_at_start = env.counters();
                Episode {
                    state: env.reset(),
                    total_reward: 0.0,
                    best_reward: f64::NEG_INFINITY,
                    loss_sum: 0.0,
                    loss_n: 0,
                    steps: 0,
                    counters_at_start,
                }
            })
            .collect();
        for t in 0..tmax {
            // Selection stage 1 (member order): ε draws + candidate
            // encodes.
            pending.clear();
            for ((agent, env), ep) in members.iter_mut().zip(&eps) {
                pending.push(agent.select_begin(env, &ep.state, true));
            }
            // Selection stage 2: one grouped Q forward over every member
            // that went greedy.
            {
                let mut parts: Vec<_> = members
                    .iter_mut()
                    .zip(&pending)
                    .filter(|(_, p)| p.is_none())
                    .map(|((agent, _), _)| agent.select_forward_parts())
                    .collect();
                grouped_predict(pool, &mut parts);
            }
            // Act, observe, remember (member order).
            for (k, (agent, env)) in members.iter_mut().enumerate() {
                let action = match pending[k].take() {
                    Some(a) => a,
                    None => agent.select_finish(),
                };
                let ep = &mut eps[k];
                let (next, reward) = env.step(&ep.state, &action);
                ep.steps += 1;
                ep.total_reward += reward;
                ep.best_reward = ep.best_reward.max(reward);
                agent.remember(Transition {
                    state: ep.state.clone(),
                    action,
                    reward,
                    next_state: next.clone(),
                });
                ep.state = next;
            }
            if t % train_every != 0 {
                continue;
            }
            // Train stage 1 (member order): sample + encode arenas.
            ready.clear();
            for (agent, env) in members.iter_mut() {
                ready.push(agent.train_begin(env));
            }
            // Grouped target forwards. Members whose minibatch staged no
            // candidate rows keep whatever is in `next_q` — the target
            // loop never reads it through an empty range.
            {
                let mut parts: Vec<_> = members
                    .iter_mut()
                    .zip(&ready)
                    .filter(|((agent, _), r)| **r && agent.staged_total() > 0)
                    .map(|((agent, _), _)| agent.target_forward_parts())
                    .collect();
                grouped_predict(pool, &mut parts);
            }
            // Grouped online forwards (double-DQN members only).
            {
                let mut parts: Vec<_> = members
                    .iter_mut()
                    .zip(&ready)
                    .filter(|((agent, _), r)| **r && agent.staged_use_online())
                    .map(|((agent, _), _)| agent.online_forward_parts())
                    .collect();
                grouped_predict(pool, &mut parts);
            }
            // Targets (member order), then one grouped backward pass.
            for ((agent, _), r) in members.iter_mut().zip(&ready) {
                if *r {
                    agent.train_targets();
                }
            }
            let losses = {
                let mut views: Vec<GroupTrain<'_>> = members
                    .iter_mut()
                    .zip(&ready)
                    .filter(|(_, r)| **r)
                    .map(|((agent, _), _)| {
                        let (net, x, targets, opt, huber_delta, scratch) =
                            agent.train_backward_parts();
                        GroupTrain {
                            net,
                            x,
                            targets,
                            opt,
                            huber_delta,
                            scratch,
                        }
                    })
                    .collect();
                train_scalar_group(pool, &mut views)
            };
            let mut li = 0usize;
            for (k, (agent, _)) in members.iter_mut().enumerate() {
                if !ready[k] {
                    continue;
                }
                agent.train_finish();
                if let Some(l) = losses.get(li) {
                    eps[k].loss_sum += l;
                    eps[k].loss_n += 1;
                }
                li += 1;
            }
        }
        let stats: Vec<EpisodeStats> = members
            .iter_mut()
            .zip(&eps)
            .map(|((agent, env), ep)| {
                agent.decay_epsilon();
                EpisodeStats {
                    episode,
                    total_reward: ep.total_reward,
                    best_reward: ep.best_reward,
                    epsilon: agent.epsilon(),
                    mean_loss: if ep.loss_n > 0 {
                        ep.loss_sum / ep.loss_n as f32
                    } else {
                        0.0
                    },
                    steps: ep.steps,
                    train_steps: ep.loss_n as usize,
                    counters: env.counters().since(&ep.counters_at_start),
                }
            })
            .collect();
        on_episode(episode, &stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DqnConfig;
    use crate::train::tests::LineWorld;
    use crate::train::train;
    use lpa_par::with_threads;

    fn cfg(seed: u64) -> DqnConfig {
        DqnConfig {
            episodes: 30,
            tmax: 10,
            batch_size: 16,
            hidden: vec![32],
            epsilon_decay: 0.93,
            learning_rate: 3e-3,
            tau: 0.05,
            ..DqnConfig::paper()
        }
        .with_seed(seed)
    }

    /// The lockstep contract: interleaved grouped training of several
    /// members leaves every member's networks, ε and greedy policy
    /// bit-identical to training it alone with the sequential loop — at
    /// one and at eight threads, with per-member loss configs (MSE,
    /// double-DQN + Huber) in the mix.
    #[test]
    fn lockstep_training_is_bit_identical_to_sequential() {
        let configs = [cfg(5), cfg(6).with_double_dqn().with_huber(1.0), cfg(7)];
        let mut reference: Vec<(Vec<u32>, Vec<u32>, f64)> = Vec::new();
        for (k, c) in configs.iter().enumerate() {
            let mut env = LineWorld::new();
            let mut agent = DqnAgent::new(env.input_dim(), c.clone());
            with_threads(1, || {
                train(&mut agent, &mut env, c.episodes, |_| {});
            });
            let _ = k;
            reference.push((
                lpa_nn::reference::mlp_bits(agent.q_network()),
                lpa_nn::reference::mlp_bits(agent.target_network()),
                agent.epsilon(),
            ));
        }
        for threads in [1usize, 8] {
            let mut envs: Vec<LineWorld> = (0..3).map(|_| LineWorld::new()).collect();
            let mut agents: Vec<DqnAgent<LineWorld>> = configs
                .iter()
                .zip(&envs)
                .map(|(c, env)| DqnAgent::new(env.input_dim(), c.clone()))
                .collect();
            let episodes = configs[0].episodes;
            let mut episodes_seen = 0usize;
            with_threads(threads, || {
                let mut members: Vec<(&mut DqnAgent<LineWorld>, &mut LineWorld)> =
                    agents.iter_mut().zip(envs.iter_mut()).collect();
                train_lockstep(&mut members, episodes, |_, stats| {
                    assert_eq!(stats.len(), 3);
                    episodes_seen += 1;
                });
            });
            assert_eq!(episodes_seen, episodes);
            for (k, agent) in agents.iter().enumerate() {
                let (q_bits, t_bits, eps) = &reference[k];
                assert_eq!(
                    &lpa_nn::reference::mlp_bits(agent.q_network()),
                    q_bits,
                    "threads {threads} member {k}: q-net diverged"
                );
                assert_eq!(
                    &lpa_nn::reference::mlp_bits(agent.target_network()),
                    t_bits,
                    "threads {threads} member {k}: target net diverged"
                );
                assert_eq!(agent.epsilon(), *eps, "threads {threads} member {k}: ε");
            }
        }
    }

    /// A single lockstep member is just the sequential loop with extra
    /// steps — same stats, same learning outcome.
    #[test]
    fn single_member_lockstep_learns_lineworld() {
        let c = cfg(5);
        let mut env = LineWorld::new();
        let mut agent = DqnAgent::new(env.input_dim(), c.clone());
        let mut last_reward = f64::NEG_INFINITY;
        {
            let mut members = [(&mut agent, &mut env)];
            train_lockstep(&mut members, c.episodes, |_, stats| {
                last_reward = stats[0].total_reward;
            });
        }
        let traj = crate::train::rollout(&mut agent, &mut env, 10);
        assert_eq!(*traj.best_state(), 6, "states: {:?}", traj.states);
        assert!(last_reward.is_finite());
    }
}
