//! The environment abstraction Q-learning runs against.

/// A Markov decision process with an enumerable per-state action set and a
/// fixed-length featurization of `(state, action)` pairs.
///
/// The partitioning advisor implements this twice: offline (rewards from
/// the network-centric cost model) and online (rewards from measured
/// runtimes on the sampled cluster).
pub trait QEnvironment {
    type State: Clone;
    type Action: Clone;

    /// Length of the encoded `(state, action)` vector (the Q-network input).
    fn input_dim(&self) -> usize;

    /// Start a new episode (the paper resets to `s_0` and may sample a new
    /// workload mix).
    fn reset(&mut self) -> Self::State;

    /// Valid actions in a state. Must be non-empty for reachable states.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Featurize `(state, action)` into `out` (length `input_dim`).
    fn encode(&self, state: &Self::State, action: &Self::Action, out: &mut [f32]);

    /// Apply the action, returning the successor state and the reward
    /// observed in the successor.
    fn step(&mut self, state: &Self::State, action: &Self::Action) -> (Self::State, f64);
}
