//! The environment abstraction Q-learning runs against.

/// Observability counters an environment may expose (all wall-less — lint
/// L003 forbids clocks in simulator code, so progress is counted, never
/// timed).
///
/// The offline advisor environment fills these from its delta-reward
/// engine and action-set cache; environments without caches return the
/// default (all zeros).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EnvCounters {
    /// Reward-cache lookups that found a memoized per-query cost.
    pub reward_cache_hits: u64,
    /// Reward-cache lookups that had to invoke the cost model.
    pub reward_cache_misses: u64,
    /// Rewards derived by re-costing only the affected queries.
    pub delta_recosts: u64,
    /// Rewards derived by re-costing the whole workload.
    pub full_recosts: u64,
    /// Individual query re-costs performed by the delta path.
    pub queries_recosted: u64,
    /// Total reward evaluations.
    pub rewards_evaluated: u64,
    /// Action-set cache hits.
    pub action_cache_hits: u64,
    /// Action-set cache misses (distinct partitionings enumerated).
    pub action_cache_misses: u64,
    /// Query executions aborted by the fault layer (online backends).
    pub queries_failed: u64,
    /// Measurement retries after failed executions.
    pub fault_retries: u64,
    /// Completions that survived node loss by reading replicas.
    pub fault_failovers: u64,
    /// Measurements that fell back to the cost-model estimate.
    pub fault_fallbacks: u64,
    /// Checkpoints durably written by the training loop.
    pub checkpoints_written: u64,
    /// Checkpoint files rejected as corrupt (CRC, length or framing).
    pub checkpoint_corruptions_detected: u64,
    /// Successful checkpoint restores.
    pub checkpoint_restores: u64,
    /// Restores that had to fall back to the last-good checkpoint.
    pub checkpoint_fallbacks: u64,
}

impl EnvCounters {
    /// Field-wise difference against an earlier snapshot (for per-episode
    /// deltas of monotonically increasing totals).
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            reward_cache_hits: self
                .reward_cache_hits
                .saturating_sub(earlier.reward_cache_hits),
            reward_cache_misses: self
                .reward_cache_misses
                .saturating_sub(earlier.reward_cache_misses),
            delta_recosts: self.delta_recosts.saturating_sub(earlier.delta_recosts),
            full_recosts: self.full_recosts.saturating_sub(earlier.full_recosts),
            queries_recosted: self
                .queries_recosted
                .saturating_sub(earlier.queries_recosted),
            rewards_evaluated: self
                .rewards_evaluated
                .saturating_sub(earlier.rewards_evaluated),
            action_cache_hits: self
                .action_cache_hits
                .saturating_sub(earlier.action_cache_hits),
            action_cache_misses: self
                .action_cache_misses
                .saturating_sub(earlier.action_cache_misses),
            queries_failed: self.queries_failed.saturating_sub(earlier.queries_failed),
            fault_retries: self.fault_retries.saturating_sub(earlier.fault_retries),
            fault_failovers: self.fault_failovers.saturating_sub(earlier.fault_failovers),
            fault_fallbacks: self.fault_fallbacks.saturating_sub(earlier.fault_fallbacks),
            checkpoints_written: self
                .checkpoints_written
                .saturating_sub(earlier.checkpoints_written),
            checkpoint_corruptions_detected: self
                .checkpoint_corruptions_detected
                .saturating_sub(earlier.checkpoint_corruptions_detected),
            checkpoint_restores: self
                .checkpoint_restores
                .saturating_sub(earlier.checkpoint_restores),
            checkpoint_fallbacks: self
                .checkpoint_fallbacks
                .saturating_sub(earlier.checkpoint_fallbacks),
        }
    }

    /// Any fault-layer activity in this (delta of) counters.
    pub fn any_fault_activity(&self) -> bool {
        self.queries_failed > 0
            || self.fault_retries > 0
            || self.fault_failovers > 0
            || self.fault_fallbacks > 0
    }

    /// Fraction of reward-cache lookups served from the cache.
    pub fn reward_cache_hit_rate(&self) -> f64 {
        let total = self.reward_cache_hits + self.reward_cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.reward_cache_hits as f64 / total as f64
    }
}

/// A Markov decision process with an enumerable per-state action set and a
/// fixed-length featurization of `(state, action)` pairs.
///
/// The partitioning advisor implements this twice: offline (rewards from
/// the network-centric cost model) and online (rewards from measured
/// runtimes on the sampled cluster).
pub trait QEnvironment {
    type State: Clone;
    type Action: Clone;

    /// Length of the encoded `(state, action)` vector (the Q-network input).
    fn input_dim(&self) -> usize;

    /// Start a new episode (the paper resets to `s_0` and may sample a new
    /// workload mix).
    fn reset(&mut self) -> Self::State;

    /// Valid actions in a state. Must be non-empty for reachable states.
    fn actions(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Append the valid actions for `state` to `out` — the arena form of
    /// [`Self::actions`], letting hot paths reuse one buffer instead of
    /// allocating a vector per step. Must push exactly the actions
    /// [`Self::actions`] would return, in the same order. The default
    /// delegates; environments with cached action sets override this to
    /// copy straight out of the cache.
    fn actions_into(&self, state: &Self::State, out: &mut Vec<Self::Action>) {
        out.extend(self.actions(state));
    }

    /// True when [`Self::encode`] / [`Self::encode_batch`] write *every*
    /// slot of their output rows. Callers may then skip re-zeroing reused
    /// row buffers before encoding into them. Defaults to `false` —
    /// encoders that fill rows sparsely over an assumed-zero background
    /// must keep the default.
    fn encode_overwrites_fully(&self) -> bool {
        false
    }

    /// Featurize `(state, action)` into `out` (length `input_dim`).
    fn encode(&self, state: &Self::State, action: &Self::Action, out: &mut [f32]);

    /// Featurize `(state, action_i)` for every action into `out`, a
    /// row-major `actions.len() × input_dim` buffer. Must be bit-identical
    /// to [`Self::encode`] row by row; implementors that share a state
    /// prefix across rows (the advisor's encoder) override this to encode
    /// the prefix once.
    fn encode_batch(&self, state: &Self::State, actions: &[Self::Action], out: &mut [f32]) {
        let dim = self.input_dim();
        assert_eq!(out.len(), actions.len() * dim, "output buffer size");
        for (row, a) in out.chunks_exact_mut(dim).zip(actions) {
            self.encode(state, a, row);
        }
    }

    /// Apply the action, returning the successor state and the reward
    /// observed in the successor.
    fn step(&mut self, state: &Self::State, action: &Self::Action) -> (Self::State, f64);

    /// Cumulative observability counters (see [`EnvCounters`]). Defaults
    /// to all zeros for environments without caches.
    fn counters(&self) -> EnvCounters {
        EnvCounters::default()
    }

    /// Counters accumulated since the start of the current episode (i.e.
    /// since the last [`Self::reset`]). Environments that snapshot a
    /// baseline at reset override this; the default returns the lifetime
    /// totals, which is only correct for single-episode probes.
    fn episode_counters(&self) -> EnvCounters {
        self.counters()
    }
}
