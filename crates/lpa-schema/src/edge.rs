//! Candidate co-partitioning edges (Section 3.2).
//!
//! An edge connects a pair of join attributes of two different tables.
//! When *active*, it guarantees the two tables are co-partitioned on those
//! attributes so that the corresponding join runs locally on every node.
//! The fixed edge set is extracted from the schema's foreign keys and the
//! workload's join predicates.

use crate::ids::AttrRef;
use serde::{Deserialize, Serialize};

/// A candidate co-partitioning edge between two join attributes.
///
/// Edges are stored in normalized form (`left.table < right.table`) so that
/// the same join predicate always maps to the same edge regardless of the
/// order it was written in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct JoinEdge {
    pub left: AttrRef,
    pub right: AttrRef,
}

impl JoinEdge {
    /// Create a normalized edge. Returns `None` for self-joins (edges within
    /// a single table carry no co-partitioning information).
    pub fn new(a: AttrRef, b: AttrRef) -> Option<Self> {
        if a.table == b.table {
            return None;
        }
        let (left, right) = if a.table < b.table { (a, b) } else { (b, a) };
        Some(Self { left, right })
    }

    /// Both endpoints of the edge.
    pub fn endpoints(&self) -> [AttrRef; 2] {
        [self.left, self.right]
    }

    /// The endpoint on the given table, if any.
    pub fn endpoint_on(&self, table: crate::ids::TableId) -> Option<AttrRef> {
        if self.left.table == table {
            Some(self.left)
        } else if self.right.table == table {
            Some(self.right)
        } else {
            None
        }
    }

    /// Whether the edge touches the given table.
    pub fn touches(&self, table: crate::ids::TableId) -> bool {
        self.left.table == table || self.right.table == table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttrId, TableId};

    #[test]
    fn normalization() {
        let a = AttrRef::new(TableId(3), AttrId(0));
        let b = AttrRef::new(TableId(1), AttrId(2));
        let e = JoinEdge::new(a, b).unwrap();
        assert_eq!(e.left.table, TableId(1));
        assert_eq!(e.right.table, TableId(3));
        assert_eq!(JoinEdge::new(a, b), JoinEdge::new(b, a));
    }

    #[test]
    fn self_join_rejected() {
        let a = AttrRef::new(TableId(1), AttrId(0));
        let b = AttrRef::new(TableId(1), AttrId(1));
        assert!(JoinEdge::new(a, b).is_none());
    }

    #[test]
    fn endpoint_lookup() {
        let e = JoinEdge::new(
            AttrRef::new(TableId(0), AttrId(1)),
            AttrRef::new(TableId(2), AttrId(0)),
        )
        .unwrap();
        assert!(e.touches(TableId(0)));
        assert!(!e.touches(TableId(1)));
        assert_eq!(
            e.endpoint_on(TableId(2)),
            Some(AttrRef::new(TableId(2), AttrId(0)))
        );
        assert_eq!(e.endpoint_on(TableId(1)), None);
    }
}
