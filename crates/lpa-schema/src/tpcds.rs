//! TPC-DS catalog: 7 fact + 17 dimension tables (24 tables total, matching
//! the count the paper reports for its TPC-DS setup).
//!
//! Only join-relevant columns are modeled; the remaining payload is folded
//! into the per-row byte width. Row counts are the SF=1 sizes.

use crate::attribute::{Attribute, Domain};
use crate::schema::{Schema, SchemaBuilder, SchemaError};
use crate::table::Table;
use crate::TableId;

/// Table ids in declaration order.
pub mod tables {
    use crate::TableId;
    pub const STORE_SALES: TableId = TableId(0);
    pub const STORE_RETURNS: TableId = TableId(1);
    pub const CATALOG_SALES: TableId = TableId(2);
    pub const CATALOG_RETURNS: TableId = TableId(3);
    pub const WEB_SALES: TableId = TableId(4);
    pub const WEB_RETURNS: TableId = TableId(5);
    pub const INVENTORY: TableId = TableId(6);
    pub const DATE_DIM: TableId = TableId(7);
    pub const TIME_DIM: TableId = TableId(8);
    pub const ITEM: TableId = TableId(9);
    pub const CUSTOMER: TableId = TableId(10);
    pub const CUSTOMER_ADDRESS: TableId = TableId(11);
    pub const CUSTOMER_DEMOGRAPHICS: TableId = TableId(12);
    pub const HOUSEHOLD_DEMOGRAPHICS: TableId = TableId(13);
    pub const INCOME_BAND: TableId = TableId(14);
    pub const PROMOTION: TableId = TableId(15);
    pub const REASON: TableId = TableId(16);
    pub const SHIP_MODE: TableId = TableId(17);
    pub const STORE: TableId = TableId(18);
    pub const CALL_CENTER: TableId = TableId(19);
    pub const CATALOG_PAGE: TableId = TableId(20);
    pub const WEB_SITE: TableId = TableId(21);
    pub const WEB_PAGE: TableId = TableId(22);
    pub const WAREHOUSE: TableId = TableId(23);
}

/// The seven fact tables.
pub fn fact_tables() -> [TableId; 7] {
    [
        tables::STORE_SALES,
        tables::STORE_RETURNS,
        tables::CATALOG_SALES,
        tables::CATALOG_RETURNS,
        tables::WEB_SALES,
        tables::WEB_RETURNS,
        tables::INVENTORY,
    ]
}

/// Build the TPC-DS schema at `sf` times the SF=1 row counts.
pub fn schema(sf: f64) -> Result<Schema, SchemaError> {
    use tables::*;
    let mut b = SchemaBuilder::new("tpcds");

    b.table(Table::new(
        "store_sales",
        vec![
            Attribute::new("ss_ticket_number", Domain::PrimaryKey),
            Attribute::new("ss_item_sk", Domain::ForeignKey(ITEM)),
            Attribute::new("ss_customer_sk", Domain::ForeignKey(CUSTOMER)),
            Attribute::new("ss_store_sk", Domain::ForeignKey(STORE)),
            Attribute::new("ss_sold_date_sk", Domain::ForeignKey(DATE_DIM)),
            Attribute::new("ss_promo_sk", Domain::ForeignKey(PROMOTION)),
        ],
        2_880_404,
        164,
    ));
    b.table(Table::new(
        "store_returns",
        vec![
            Attribute::new("sr_ticket_number", Domain::ForeignKey(STORE_SALES)),
            // A return's item is the item of the referenced sale, so
            // co-partitioning sales and returns on the item key makes the
            // sales ⋈ returns joins local (the paper's TPC-DS finding).
            Attribute::new(
                "sr_item_sk",
                Domain::Inherited {
                    via: crate::AttrId(0),
                    parent_attr: crate::AttrId(1),
                },
            ),
            Attribute::new("sr_customer_sk", Domain::ForeignKey(CUSTOMER)),
            Attribute::new("sr_store_sk", Domain::ForeignKey(STORE)),
            Attribute::new("sr_returned_date_sk", Domain::ForeignKey(DATE_DIM)),
        ],
        287_514,
        134,
    ));
    b.table(Table::new(
        "catalog_sales",
        vec![
            Attribute::new("cs_order_number", Domain::PrimaryKey),
            Attribute::new("cs_item_sk", Domain::ForeignKey(ITEM)),
            Attribute::new("cs_bill_customer_sk", Domain::ForeignKey(CUSTOMER)),
            Attribute::new("cs_sold_date_sk", Domain::ForeignKey(DATE_DIM)),
            Attribute::new("cs_warehouse_sk", Domain::ForeignKey(WAREHOUSE)),
            Attribute::new("cs_catalog_page_sk", Domain::ForeignKey(CATALOG_PAGE)),
        ],
        1_441_548,
        226,
    ));
    b.table(Table::new(
        "catalog_returns",
        vec![
            Attribute::new("cr_order_number", Domain::ForeignKey(CATALOG_SALES)),
            Attribute::new(
                "cr_item_sk",
                Domain::Inherited {
                    via: crate::AttrId(0),
                    parent_attr: crate::AttrId(1),
                },
            ),
            Attribute::new("cr_returning_customer_sk", Domain::ForeignKey(CUSTOMER)),
            Attribute::new("cr_returned_date_sk", Domain::ForeignKey(DATE_DIM)),
            Attribute::new("cr_warehouse_sk", Domain::ForeignKey(WAREHOUSE)),
        ],
        144_067,
        166,
    ));
    b.table(Table::new(
        "web_sales",
        vec![
            Attribute::new("ws_order_number", Domain::PrimaryKey),
            Attribute::new("ws_item_sk", Domain::ForeignKey(ITEM)),
            Attribute::new("ws_bill_customer_sk", Domain::ForeignKey(CUSTOMER)),
            Attribute::new("ws_sold_date_sk", Domain::ForeignKey(DATE_DIM)),
            Attribute::new("ws_web_site_sk", Domain::ForeignKey(WEB_SITE)),
            Attribute::new("ws_web_page_sk", Domain::ForeignKey(WEB_PAGE)),
        ],
        719_384,
        226,
    ));
    b.table(Table::new(
        "web_returns",
        vec![
            Attribute::new("wr_order_number", Domain::ForeignKey(WEB_SALES)),
            Attribute::new(
                "wr_item_sk",
                Domain::Inherited {
                    via: crate::AttrId(0),
                    parent_attr: crate::AttrId(1),
                },
            ),
            Attribute::new("wr_returning_customer_sk", Domain::ForeignKey(CUSTOMER)),
            Attribute::new("wr_returned_date_sk", Domain::ForeignKey(DATE_DIM)),
            Attribute::new("wr_web_page_sk", Domain::ForeignKey(WEB_PAGE)),
        ],
        71_763,
        162,
    ));
    b.table(Table::new(
        "inventory",
        vec![
            Attribute::new("inv_item_sk", Domain::ForeignKey(ITEM)),
            Attribute::new("inv_warehouse_sk", Domain::ForeignKey(WAREHOUSE)),
            Attribute::new("inv_date_sk", Domain::ForeignKey(DATE_DIM)),
        ],
        11_745_000,
        16,
    ));

    b.table(Table::new(
        "date_dim",
        vec![
            Attribute::new("d_date_sk", Domain::PrimaryKey),
            Attribute::new("d_year", Domain::Fixed(200)),
        ],
        73_049,
        141,
    ));
    b.table(Table::new(
        "time_dim",
        vec![Attribute::new("t_time_sk", Domain::PrimaryKey)],
        86_400,
        59,
    ));
    b.table(Table::new(
        "item",
        vec![
            Attribute::new("i_item_sk", Domain::PrimaryKey),
            Attribute::new("i_brand_id", Domain::Fixed(1_000)),
            Attribute::new("i_category_id", Domain::Fixed(10)),
        ],
        18_000,
        281,
    ));
    b.table(Table::new(
        "customer",
        vec![
            Attribute::new("c_customer_sk", Domain::PrimaryKey),
            Attribute::new("c_current_addr_sk", Domain::ForeignKey(CUSTOMER_ADDRESS)),
            Attribute::new(
                "c_current_cdemo_sk",
                Domain::ForeignKey(CUSTOMER_DEMOGRAPHICS),
            ),
            Attribute::new(
                "c_current_hdemo_sk",
                Domain::ForeignKey(HOUSEHOLD_DEMOGRAPHICS),
            ),
        ],
        100_000,
        132,
    ));
    b.table(Table::new(
        "customer_address",
        vec![
            Attribute::new("ca_address_sk", Domain::PrimaryKey),
            Attribute::new("ca_state", Domain::Fixed(51)),
        ],
        50_000,
        110,
    ));
    b.table(Table::new(
        "customer_demographics",
        vec![Attribute::new("cd_demo_sk", Domain::PrimaryKey)],
        1_920_800,
        42,
    ));
    b.table(Table::new(
        "household_demographics",
        vec![
            Attribute::new("hd_demo_sk", Domain::PrimaryKey),
            Attribute::new("hd_income_band_sk", Domain::ForeignKey(INCOME_BAND)),
        ],
        7_200,
        21,
    ));
    b.table(Table::new(
        "income_band",
        vec![Attribute::new("ib_income_band_sk", Domain::PrimaryKey)],
        20,
        16,
    ));
    b.table(Table::new(
        "promotion",
        vec![
            Attribute::new("p_promo_sk", Domain::PrimaryKey),
            Attribute::new("p_item_sk", Domain::ForeignKey(ITEM)),
        ],
        300,
        124,
    ));
    b.table(Table::new(
        "reason",
        vec![Attribute::new("r_reason_sk", Domain::PrimaryKey)],
        35,
        38,
    ));
    b.table(Table::new(
        "ship_mode",
        vec![Attribute::new("sm_ship_mode_sk", Domain::PrimaryKey)],
        20,
        56,
    ));
    b.table(Table::new(
        "store",
        vec![Attribute::new("s_store_sk", Domain::PrimaryKey)],
        12,
        263,
    ));
    b.table(Table::new(
        "call_center",
        vec![Attribute::new("cc_call_center_sk", Domain::PrimaryKey)],
        6,
        305,
    ));
    b.table(Table::new(
        "catalog_page",
        vec![Attribute::new("cp_catalog_page_sk", Domain::PrimaryKey)],
        11_718,
        139,
    ));
    b.table(Table::new(
        "web_site",
        vec![Attribute::new("web_site_sk", Domain::PrimaryKey)],
        30,
        292,
    ));
    b.table(Table::new(
        "web_page",
        vec![Attribute::new("wp_web_page_sk", Domain::PrimaryKey)],
        60,
        96,
    ));
    b.table(Table::new(
        "warehouse",
        vec![Attribute::new("w_warehouse_sk", Domain::PrimaryKey)],
        5,
        117,
    ));

    // Fact → shared-dimension edges: these are the levers behind the paper's
    // TPC-DS finding (co-partition all fact tables with `item`).
    b.edge(("store_sales", "ss_item_sk"), ("item", "i_item_sk"));
    b.edge(("store_returns", "sr_item_sk"), ("item", "i_item_sk"));
    b.edge(("catalog_sales", "cs_item_sk"), ("item", "i_item_sk"));
    b.edge(("catalog_returns", "cr_item_sk"), ("item", "i_item_sk"));
    b.edge(("web_sales", "ws_item_sk"), ("item", "i_item_sk"));
    b.edge(("web_returns", "wr_item_sk"), ("item", "i_item_sk"));
    b.edge(("inventory", "inv_item_sk"), ("item", "i_item_sk"));

    b.edge(
        ("store_sales", "ss_customer_sk"),
        ("customer", "c_customer_sk"),
    );
    b.edge(
        ("store_returns", "sr_customer_sk"),
        ("customer", "c_customer_sk"),
    );
    b.edge(
        ("catalog_sales", "cs_bill_customer_sk"),
        ("customer", "c_customer_sk"),
    );
    b.edge(
        ("catalog_returns", "cr_returning_customer_sk"),
        ("customer", "c_customer_sk"),
    );
    b.edge(
        ("web_sales", "ws_bill_customer_sk"),
        ("customer", "c_customer_sk"),
    );
    b.edge(
        ("web_returns", "wr_returning_customer_sk"),
        ("customer", "c_customer_sk"),
    );

    b.edge(
        ("store_sales", "ss_sold_date_sk"),
        ("date_dim", "d_date_sk"),
    );
    b.edge(
        ("catalog_sales", "cs_sold_date_sk"),
        ("date_dim", "d_date_sk"),
    );
    b.edge(("web_sales", "ws_sold_date_sk"), ("date_dim", "d_date_sk"));
    b.edge(("inventory", "inv_date_sk"), ("date_dim", "d_date_sk"));

    // Fact ↔ fact join paths (sales ⋈ returns on the order/ticket key).
    b.edge(
        ("store_sales", "ss_ticket_number"),
        ("store_returns", "sr_ticket_number"),
    );
    b.edge(
        ("catalog_sales", "cs_order_number"),
        ("catalog_returns", "cr_order_number"),
    );
    b.edge(
        ("web_sales", "ws_order_number"),
        ("web_returns", "wr_order_number"),
    );

    // Fact ↔ fact join paths on the shared item key (sales ⋈ returns ⋈ inventory).
    b.edge(
        ("store_sales", "ss_item_sk"),
        ("store_returns", "sr_item_sk"),
    );
    b.edge(
        ("catalog_sales", "cs_item_sk"),
        ("catalog_returns", "cr_item_sk"),
    );
    b.edge(("web_sales", "ws_item_sk"), ("web_returns", "wr_item_sk"));
    b.edge(
        ("catalog_sales", "cs_item_sk"),
        ("inventory", "inv_item_sk"),
    );

    // Snowflake edges.
    b.edge(
        ("customer", "c_current_addr_sk"),
        ("customer_address", "ca_address_sk"),
    );
    b.edge(
        ("customer", "c_current_cdemo_sk"),
        ("customer_demographics", "cd_demo_sk"),
    );
    b.edge(
        ("customer", "c_current_hdemo_sk"),
        ("household_demographics", "hd_demo_sk"),
    );
    b.edge(
        ("household_demographics", "hd_income_band_sk"),
        ("income_band", "ib_income_band_sk"),
    );
    b.edge(("store_sales", "ss_promo_sk"), ("promotion", "p_promo_sk"));
    b.edge(("promotion", "p_item_sk"), ("item", "i_item_sk"));
    b.edge(
        ("catalog_sales", "cs_warehouse_sk"),
        ("warehouse", "w_warehouse_sk"),
    );
    b.edge(
        ("catalog_returns", "cr_warehouse_sk"),
        ("warehouse", "w_warehouse_sk"),
    );
    b.edge(
        ("inventory", "inv_warehouse_sk"),
        ("warehouse", "w_warehouse_sk"),
    );
    b.edge(
        ("catalog_sales", "cs_catalog_page_sk"),
        ("catalog_page", "cp_catalog_page_sk"),
    );
    b.edge(("web_sales", "ws_web_site_sk"), ("web_site", "web_site_sk"));
    b.edge(
        ("web_sales", "ws_web_page_sk"),
        ("web_page", "wp_web_page_sk"),
    );
    b.edge(
        ("web_returns", "wr_web_page_sk"),
        ("web_page", "wp_web_page_sk"),
    );
    b.edge(("store_sales", "ss_store_sk"), ("store", "s_store_sk"));
    b.edge(("store_returns", "sr_store_sk"), ("store", "s_store_sk"));

    Ok(b.build()?.scaled(sf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_and_fact_counts() {
        let s = schema(1.0).expect("schema builds");
        assert_eq!(s.tables().len(), 24);
        assert_eq!(fact_tables().len(), 7);
        // 7 fact + 17 dimension tables per the paper.
        for f in fact_tables() {
            assert!(
                s.table(f).rows >= 70_000,
                "{} is fact-sized",
                s.table(f).name
            );
        }
    }

    #[test]
    fn item_reachable_from_all_sales_and_returns_facts() {
        let s = schema(1.0).expect("schema builds");
        let item = tables::ITEM;
        for f in fact_tables() {
            let has_item_edge = s.edges_of(f).any(|(_, e)| e.touches(item));
            assert!(has_item_edge, "{} should join item", s.table(f).name);
        }
    }

    #[test]
    fn edge_count_stable() {
        // The state encoding depends on the edge count; pin it.
        assert_eq!(schema(1.0).expect("schema builds").edges().len(), 39);
    }
}
