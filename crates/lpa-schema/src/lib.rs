//! Relational catalog model for the learned partitioning advisor.
//!
//! This crate defines the *static* description of a database that the
//! advisor partitions: tables, attributes (with value-domain metadata used
//! by the data generator and the cost model), and candidate co-partitioning
//! edges between join attributes.
//!
//! It also ships the four benchmark schemas used in the paper's evaluation
//! (Section 7.1):
//!
//! * [`ssb::schema`] — the Star Schema Benchmark (1 fact + 4 dimensions),
//! * [`tpcds::schema`] — TPC-DS (7 fact + 17 dimension tables),
//! * [`tpcch::schema`] — TPC-CH (TPC-C schema queried with TPC-H-style
//!   analytics; includes the paper's restriction that tables may not be
//!   partitioned by `warehouse-id` alone, plus the compound
//!   `(warehouse-id, district-id)` key System-X can partition by),
//! * [`microbench::schema`] — the three-table A/B/C microbenchmark of
//!   Section 7.6.
//!
//! Row counts are parameterized by a scale multiplier so that the
//! distributed-execution simulator can run the same schemas at sample size
//! (the paper's online phase also operates on samples).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod attribute;
pub mod edge;
pub mod ids;
pub mod microbench;
pub mod schema;
pub mod ssb;
pub mod table;
pub mod tpcch;
pub mod tpcds;

pub use attribute::{AttrKind, Attribute, Domain, Skew};
pub use edge::JoinEdge;
pub use ids::{AttrId, AttrRef, EdgeId, TableId};
pub use schema::{Schema, SchemaBuilder, SchemaError};
pub use table::Table;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmark_schemas_validate() {
        for schema in [
            ssb::schema(1.0),
            tpcds::schema(1.0),
            tpcch::schema(1.0),
            microbench::schema(1.0),
        ] {
            let schema = schema.expect("built-in schema builds");
            schema.validate().expect("built-in schema must be valid");
        }
    }

    #[test]
    fn benchmark_table_counts_match_paper() {
        assert_eq!(ssb::schema(1.0).expect("schema builds").tables().len(), 5);
        assert_eq!(
            tpcds::schema(1.0).expect("schema builds").tables().len(),
            24
        );
        assert_eq!(
            tpcch::schema(1.0).expect("schema builds").tables().len(),
            12
        );
        assert_eq!(
            microbench::schema(1.0)
                .expect("schema builds")
                .tables()
                .len(),
            3
        );
    }
}
