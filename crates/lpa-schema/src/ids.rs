//! Strongly-typed identifiers for catalog objects.
//!
//! All identifiers are dense indices into the owning [`Schema`](crate::Schema)
//! so that downstream crates (state encodings, the simulator's shard maps)
//! can use plain `Vec`s keyed by id instead of hash maps.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a table within its [`Schema`](crate::Schema).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TableId(pub usize);

/// Index of an attribute *within its table* (not global).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct AttrId(pub usize);

/// Fully-qualified attribute reference: `(table, attribute)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct AttrRef {
    pub table: TableId,
    pub attr: AttrId,
}

impl AttrRef {
    pub const fn new(table: TableId, attr: AttrId) -> Self {
        Self { table, attr }
    }
}

/// Index of a candidate co-partitioning edge within its schema.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.attr)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let r = AttrRef::new(TableId(2), AttrId(1));
        assert_eq!(r.to_string(), "T2.a1");
        assert_eq!(EdgeId(3).to_string(), "e3");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = AttrRef::new(TableId(0), AttrId(5));
        let b = AttrRef::new(TableId(1), AttrId(0));
        assert!(a < b);
    }
}
