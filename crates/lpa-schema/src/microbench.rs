//! The three-table microbenchmark of Experiment 5 (Section 7.6).
//!
//! Fact table `a` joins either dimension `b` or dimension `c`; relation
//! sizes are inspired by TPC-H's `lineitem`, `partsupp` and `orders`
//! tables. `c` is significantly larger than `b`, so `a` and `c` must be
//! co-partitioned; whether `b` should be *partitioned* or *replicated*
//! depends on the network bandwidth relative to scan speed — the effect the
//! experiment demonstrates.

use crate::attribute::{Attribute, Domain};
use crate::schema::{Schema, SchemaBuilder, SchemaError};
use crate::table::Table;

/// Table ids in declaration order.
pub mod tables {
    use crate::TableId;
    pub const A: TableId = TableId(0);
    pub const B: TableId = TableId(1);
    pub const C: TableId = TableId(2);
}

/// Build the microbenchmark schema at `sf` times the base row counts.
pub fn schema(sf: f64) -> Result<Schema, SchemaError> {
    use tables::*;
    let mut b = SchemaBuilder::new("microbench");

    b.table(Table::new(
        "a",
        vec![
            Attribute::new("a_key", Domain::PrimaryKey),
            Attribute::new("a_b_key", Domain::ForeignKey(B)),
            Attribute::new("a_c_key", Domain::ForeignKey(C)),
        ],
        6_000_000,
        112,
    ));
    b.table(Table::new(
        "b",
        vec![Attribute::new("b_key", Domain::PrimaryKey)],
        800_000,
        144,
    ));
    b.table(Table::new(
        "c",
        vec![Attribute::new("c_key", Domain::PrimaryKey)],
        1_500_000,
        121,
    ));

    b.edge(("a", "a_b_key"), ("b", "b_key"));
    b.edge(("a", "a_c_key"), ("c", "c_key"));

    Ok(b.build()?.scaled(sf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_significantly_larger_than_b() {
        let s = schema(1.0).expect("schema builds");
        assert!(s.table(tables::C).bytes() > s.table(tables::B).bytes());
        assert!(s.table(tables::A).bytes() > s.table(tables::C).bytes());
    }

    #[test]
    fn two_edges() {
        assert_eq!(schema(1.0).expect("schema builds").edges().len(), 2);
    }
}
