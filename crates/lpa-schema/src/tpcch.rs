//! TPC-CH catalog: the TPC-C schema (9 tables) plus the TPC-H additions
//! `nation`, `region` and `supplier` (12 tables), queried with analytical
//! TPC-H-style queries.
//!
//! Two paper-specific modeling points:
//!
//! * Tables may **not** be partitioned by `warehouse-id` alone — the paper
//!   forbids the trivial all-by-warehouse co-partitioning (Section 7.1), so
//!   the `*_w_id` columns are marked non-partitionable.
//! * District columns are low-cardinality (10 distinct values) and skewed
//!   (hot districts), which makes district-id partitioning produce skewed
//!   shards — the effect behind the Heuristic (b) inversion on System-X in
//!   Section 7.2. Compound `(warehouse-id, district-id)` keys are provided
//!   as virtual attributes so System-X-style engines can mitigate the skew
//!   exactly as the paper describes.
//!
//! Unit scale corresponds to 100 warehouses (the paper runs SF=100).

use crate::attribute::{Attribute, Domain, Skew};
use crate::ids::AttrId;
use crate::schema::{Schema, SchemaBuilder, SchemaError};
use crate::table::Table;

/// Table ids in declaration order.
pub mod tables {
    use crate::TableId;
    pub const WAREHOUSE: TableId = TableId(0);
    pub const DISTRICT: TableId = TableId(1);
    pub const CUSTOMER: TableId = TableId(2);
    pub const HISTORY: TableId = TableId(3);
    pub const NEWORDER: TableId = TableId(4);
    pub const ORDER: TableId = TableId(5);
    pub const ORDERLINE: TableId = TableId(6);
    pub const ITEM: TableId = TableId(7);
    pub const STOCK: TableId = TableId(8);
    pub const NATION: TableId = TableId(9);
    pub const REGION: TableId = TableId(10);
    pub const SUPPLIER: TableId = TableId(11);
}

/// Skew used for district columns (hot districts).
const DISTRICT_SKEW: Skew = Skew::Zipf(0.6);

fn district_attr(name: &str) -> Attribute {
    Attribute::new(name, Domain::Fixed(10)).with_skew(DISTRICT_SKEW)
}

fn warehouse_attr(name: &str) -> Attribute {
    // 100 warehouses at unit scale; not partitionable alone (paper rule).
    Attribute::new(name, Domain::Fixed(100)).not_partitionable()
}

/// Compound (warehouse-id, district-id): 1000 distinct values, mild skew.
fn wd_compound(name: &str, w_idx: usize, d_idx: usize) -> Attribute {
    Attribute::new(name, Domain::Fixed(1_000)).compound_of(vec![AttrId(w_idx), AttrId(d_idx)])
}

/// Attribute whose value is copied from the referenced parent row.
fn inherited(name: &str, via_idx: usize, parent_idx: usize) -> Attribute {
    Attribute::new(
        name,
        Domain::Inherited {
            via: AttrId(via_idx),
            parent_attr: AttrId(parent_idx),
        },
    )
}

/// Build the TPC-CH schema at `sf` times the 100-warehouse row counts.
pub fn schema(sf: f64) -> Result<Schema, SchemaError> {
    use tables::*;
    let mut b = SchemaBuilder::new("tpcch");

    b.table(Table::new(
        "warehouse",
        vec![Attribute::new("w_id", Domain::PrimaryKey)],
        100,
        90,
    ));
    b.table(Table::new(
        "district",
        vec![
            // (w_id, d_id) composite key flattened into a dense PK.
            Attribute::new("d_key", Domain::PrimaryKey),
            warehouse_attr("d_w_id"),
            district_attr("d_id"),
            wd_compound("d_wd", 1, 2),
        ],
        1_000,
        95,
    ));
    b.table(Table::new(
        "customer",
        vec![
            Attribute::new("c_key", Domain::PrimaryKey),
            warehouse_attr("c_w_id"),
            district_attr("c_d_id"),
            wd_compound("c_wd", 1, 2),
            Attribute::new("c_n_key", Domain::ForeignKey(NATION)),
        ],
        3_000_000,
        655,
    ));
    // Denormalized composite-key columns (`*_w_id`, `*_d_id`) inherit their
    // values through the row's foreign key, exactly like TPC-C's composite
    // keys: an order's district IS its customer's district. This is what
    // makes co-partitioning by district turn key joins into local joins.
    // The order-processing tables carry composite natural keys in TPC-C;
    // a surrogate row id stands in as the "primary key" a DBA would
    // hash-partition by default (it is deliberately useless for joins, so
    // co-partitioning has to be chosen, not inherited by accident).
    b.table(Table::new(
        "history",
        vec![
            Attribute::new("h_key", Domain::PrimaryKey),
            Attribute::new("h_c_key", Domain::ForeignKey(CUSTOMER)),
            inherited("h_w_id", 1, 1).not_partitionable(),
            inherited("h_d_id", 1, 2),
        ],
        3_000_000,
        46,
    ));
    b.table(Table::new(
        "neworder",
        vec![
            Attribute::new("no_key", Domain::PrimaryKey),
            Attribute::new("no_o_key", Domain::ForeignKey(ORDER)),
            inherited("no_w_id", 1, 2).not_partitionable(),
            inherited("no_d_id", 1, 3),
            wd_compound("no_wd", 2, 3),
        ],
        900_000,
        8,
    ));
    b.table(Table::new(
        "order",
        vec![
            Attribute::new("o_key", Domain::PrimaryKey),
            Attribute::new("o_c_key", Domain::ForeignKey(CUSTOMER)),
            inherited("o_w_id", 1, 1).not_partitionable(),
            inherited("o_d_id", 1, 2),
            wd_compound("o_wd", 2, 3),
        ],
        3_000_000,
        24,
    ));
    b.table(Table::new(
        "orderline",
        vec![
            Attribute::new("ol_key", Domain::PrimaryKey),
            Attribute::new("ol_o_key", Domain::ForeignKey(ORDER)),
            Attribute::new("ol_i_id", Domain::ForeignKey(ITEM)),
            inherited("ol_w_id", 1, 2).not_partitionable(),
            inherited("ol_d_id", 1, 3),
            wd_compound("ol_wd", 3, 4),
        ],
        30_000_000,
        54,
    ));
    b.table(Table::new(
        "item",
        vec![
            Attribute::new("i_id", Domain::PrimaryKey),
            Attribute::new("i_im_id", Domain::Fixed(10_000)),
        ],
        100_000,
        82,
    ));
    b.table(Table::new(
        "stock",
        vec![
            Attribute::new("s_key", Domain::PrimaryKey),
            Attribute::new("s_i_id", Domain::ForeignKey(ITEM)),
            warehouse_attr("s_w_id"),
            // TPC-C stock carries per-district info (s_dist_01..10); we model
            // the district association as a column so the compound
            // (warehouse, district) mitigation of Section 7.2 is expressible.
            district_attr("s_dist"),
            wd_compound("s_wd", 2, 3),
            Attribute::new("s_su_key", Domain::ForeignKey(SUPPLIER)),
        ],
        10_000_000,
        306,
    ));
    b.table(Table::new(
        "nation",
        vec![
            Attribute::new("n_key", Domain::PrimaryKey),
            Attribute::new("n_r_key", Domain::ForeignKey(REGION)),
        ],
        62,
        110,
    ));
    b.table(Table::new(
        "region",
        vec![Attribute::new("r_key", Domain::PrimaryKey)],
        5,
        100,
    ));
    b.table(Table::new(
        "supplier",
        vec![
            Attribute::new("su_key", Domain::PrimaryKey),
            Attribute::new("su_n_key", Domain::ForeignKey(NATION)),
        ],
        10_000,
        140,
    ));

    // Key join paths (TPC-CH analytical queries).
    b.edge(("order", "o_c_key"), ("customer", "c_key"));
    b.edge(("orderline", "ol_o_key"), ("order", "o_key"));
    b.edge(("neworder", "no_o_key"), ("order", "o_key"));
    b.edge(("orderline", "ol_i_id"), ("item", "i_id"));
    b.edge(("stock", "s_i_id"), ("item", "i_id"));
    b.edge(("orderline", "ol_i_id"), ("stock", "s_i_id"));
    b.edge(("history", "h_c_key"), ("customer", "c_key"));
    b.edge(("customer", "c_n_key"), ("nation", "n_key"));
    b.edge(("supplier", "su_n_key"), ("nation", "n_key"));
    b.edge(("nation", "n_r_key"), ("region", "r_key"));
    b.edge(("stock", "s_su_key"), ("supplier", "su_key"));

    // District-level co-partitioning paths (the offline-phase winner on
    // Postgres-XL co-partitions customer/order/neworder/orderline by d_id).
    b.edge(("district", "d_id"), ("customer", "c_d_id"));
    b.edge(("customer", "c_d_id"), ("order", "o_d_id"));
    b.edge(("order", "o_d_id"), ("orderline", "ol_d_id"));
    b.edge(("order", "o_d_id"), ("neworder", "no_d_id"));

    // Compound (w,d) co-partitioning paths (System-X skew mitigation).
    b.edge(("district", "d_wd"), ("customer", "c_wd"));
    b.edge(("customer", "c_wd"), ("order", "o_wd"));
    b.edge(("order", "o_wd"), ("orderline", "ol_wd"));
    b.edge(("order", "o_wd"), ("neworder", "no_wd"));
    b.edge(("stock", "s_wd"), ("orderline", "ol_wd"));

    Ok(b.build()?.scaled(sf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttrKind;

    #[test]
    fn warehouse_ids_not_partitionable() {
        let s = schema(1.0).expect("schema builds");
        for (t, a) in [
            ("district", "d_w_id"),
            ("customer", "c_w_id"),
            ("order", "o_w_id"),
            ("orderline", "ol_w_id"),
            ("stock", "s_w_id"),
        ] {
            let r = s.attr_ref(t, a).unwrap();
            assert!(!s.attribute(r).partitionable, "{t}.{a} must be blocked");
        }
    }

    #[test]
    fn compound_keys_present() {
        let s = schema(1.0).expect("schema builds");
        let r = s.attr_ref("stock", "s_wd").unwrap();
        assert!(matches!(s.attribute(r).kind, AttrKind::Compound(_)));
        assert_eq!(s.attr_distinct(r), 1_000);
    }

    #[test]
    fn orderline_has_most_rows_and_stock_most_bytes() {
        let s = schema(1.0).expect("schema builds");
        let ol = s.table(tables::ORDERLINE);
        assert!(s.tables().iter().all(|t| ol.rows >= t.rows));
        let stock = s.table(tables::STOCK);
        assert!(s.tables().iter().all(|t| stock.bytes() >= t.bytes()));
    }

    #[test]
    fn district_columns_are_skewed_low_cardinality() {
        let s = schema(1.0).expect("schema builds");
        let r = s.attr_ref("customer", "c_d_id").unwrap();
        assert_eq!(s.attr_distinct(r), 10);
        assert!(matches!(s.attribute(r).skew, Skew::Zipf(_)));
    }

    #[test]
    fn edge_count_stable() {
        assert_eq!(schema(1.0).expect("schema builds").edges().len(), 20);
    }
}
