//! Table metadata.

use crate::attribute::Attribute;
use crate::ids::AttrId;
use serde::{Deserialize, Serialize};

/// A base table: name, attributes relevant to partitioning decisions, and
/// size statistics at the schema's configured scale.
///
/// Only join/partitioning-relevant columns are modeled explicitly; the
/// remaining payload width is folded into [`Table::row_bytes`] so that
/// network-transfer estimates stay realistic.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    pub attributes: Vec<Attribute>,
    /// Number of rows at the schema's scale.
    pub rows: u64,
    /// Average tuple width in bytes (keys + payload).
    pub row_bytes: u64,
}

impl Table {
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<Attribute>,
        rows: u64,
        row_bytes: u64,
    ) -> Self {
        Self {
            name: name.into(),
            attributes,
            rows,
            row_bytes,
        }
    }

    /// Total size of the table in bytes.
    pub fn bytes(&self) -> u64 {
        self.rows * self.row_bytes
    }

    /// Look up an attribute index by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttrId)
    }

    /// Attribute indices eligible as partitioning keys.
    pub fn partitionable_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.partitionable)
            .map(|(i, _)| AttrId(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Domain;

    fn sample() -> Table {
        Table::new(
            "customer",
            vec![
                Attribute::new("c_custkey", Domain::PrimaryKey),
                Attribute::new("c_nation", Domain::Fixed(25)).not_partitionable(),
            ],
            30_000,
            120,
        )
    }

    #[test]
    fn bytes_and_lookup() {
        let t = sample();
        assert_eq!(t.bytes(), 3_600_000);
        assert_eq!(t.attr_by_name("c_nation"), Some(AttrId(1)));
        assert_eq!(t.attr_by_name("missing"), None);
    }

    #[test]
    fn partitionable_filter() {
        let t = sample();
        let p: Vec<_> = t.partitionable_attrs().collect();
        assert_eq!(p, vec![AttrId(0)]);
    }
}
