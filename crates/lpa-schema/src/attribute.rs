//! Attribute metadata: value domains, skew, partitionability.

use crate::ids::{AttrId, TableId};
use serde::{Deserialize, Serialize};

/// How the values of an attribute are drawn.
///
/// The data generator in `lpa-cluster` and the cardinality estimator in
/// `lpa-costmodel` both consume this. Foreign keys reference another table
/// so that generated values always join correctly and the distinct count
/// scales together with the referenced table.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// Dense primary key `0..rows` of the owning table.
    PrimaryKey,
    /// Values drawn from the primary-key domain of the referenced table.
    ForeignKey(TableId),
    /// A fixed number of distinct values independent of scale
    /// (e.g. `district-id` has 10 distinct values per warehouse).
    Fixed(u64),
    /// Value copied from an attribute of the row referenced by a foreign key
    /// in the *same* table: `this.via` is an FK column, and the value equals
    /// `parent.parent_attr` of the referenced row.
    ///
    /// This models composite-key denormalization (TPC-C's
    /// `order.o_d_id = customer.c_d_id` of the ordering customer), which is
    /// what makes co-partitioning two tables by their district columns turn
    /// the key join between them into a local join.
    Inherited { via: AttrId, parent_attr: AttrId },
}

/// Value-frequency skew of an attribute, relevant both for generated data
/// and for shard-size balance when the attribute is used as partition key.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Skew {
    /// All values equally likely.
    Uniform,
    /// Zipf-distributed with the given exponent (`theta > 0`); larger means
    /// more skew. Used to model the TPC-CH hot districts that make
    /// Heuristic (b) backfire on System-X (Section 7.2).
    Zipf(f64),
}

/// Whether an attribute is a physical column or a compound key derived from
/// several physical columns of the same table.
///
/// Compound keys model System-X's ability to partition TPC-CH's `stock`
/// table by `(warehouse-id, district-id)` to mitigate skew (Section 7.2).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AttrKind {
    Physical,
    /// Indices (within the same table) of the physical columns combined.
    Compound(Vec<AttrId>),
}

/// A table attribute as seen by the partitioning advisor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Attribute {
    pub name: String,
    pub domain: Domain,
    pub skew: Skew,
    pub kind: AttrKind,
    /// `false` excludes the attribute from the partitioning action space.
    /// The paper forbids partitioning TPC-CH tables by `warehouse-id` alone
    /// to rule out the trivial solution (Section 7.1).
    pub partitionable: bool,
}

impl Attribute {
    /// A plain partitionable column.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
            skew: Skew::Uniform,
            kind: AttrKind::Physical,
            partitionable: true,
        }
    }

    /// Builder-style: set the skew.
    pub fn with_skew(mut self, skew: Skew) -> Self {
        self.skew = skew;
        self
    }

    /// Builder-style: exclude from the partitioning action space.
    pub fn not_partitionable(mut self) -> Self {
        self.partitionable = false;
        self
    }

    /// Builder-style: mark as a compound of physical columns.
    pub fn compound_of(mut self, components: Vec<AttrId>) -> Self {
        self.kind = AttrKind::Compound(components);
        self
    }

    pub fn is_compound(&self) -> bool {
        matches!(self.kind, AttrKind::Compound(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let a = Attribute::new("w_id", Domain::Fixed(10))
            .with_skew(Skew::Zipf(1.1))
            .not_partitionable();
        assert!(!a.partitionable);
        assert_eq!(a.skew, Skew::Zipf(1.1));
        assert!(!a.is_compound());
    }

    #[test]
    fn compound_attribute() {
        let a = Attribute::new("wd", Domain::Fixed(100)).compound_of(vec![AttrId(0), AttrId(1)]);
        assert!(a.is_compound());
    }
}
