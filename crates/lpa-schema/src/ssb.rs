//! Star Schema Benchmark catalog (O'Neil et al.), 1 fact + 4 dimension
//! tables, as used in Experiment 1 of the paper.
//!
//! Row counts are the standard SF=1 sizes; pass a scale factor to
//! [`schema`] to grow or shrink the instance (the simulator typically runs
//! at sample scale, mirroring the paper's online phase).

use crate::attribute::{Attribute, Domain};
use crate::schema::{Schema, SchemaBuilder, SchemaError};
use crate::table::Table;
use crate::TableId;

/// Table ids in declaration order.
pub mod tables {
    use crate::TableId;
    pub const LINEORDER: TableId = TableId(0);
    pub const CUSTOMER: TableId = TableId(1);
    pub const SUPPLIER: TableId = TableId(2);
    pub const PART: TableId = TableId(3);
    pub const DATE: TableId = TableId(4);
}

/// Build the SSB schema at `sf` times the SF=1 row counts.
pub fn schema(sf: f64) -> Result<Schema, SchemaError> {
    let mut b = SchemaBuilder::new("ssb");

    b.table(Table::new(
        "lineorder",
        vec![
            Attribute::new("lo_orderkey", Domain::PrimaryKey),
            Attribute::new("lo_custkey", Domain::ForeignKey(tables::CUSTOMER)),
            Attribute::new("lo_partkey", Domain::ForeignKey(tables::PART)),
            Attribute::new("lo_suppkey", Domain::ForeignKey(tables::SUPPLIER)),
            Attribute::new("lo_orderdate", Domain::ForeignKey(tables::DATE)),
        ],
        6_000_000,
        100,
    ));
    b.table(Table::new(
        "customer",
        vec![
            Attribute::new("c_custkey", Domain::PrimaryKey),
            Attribute::new("c_city", Domain::Fixed(250)),
            Attribute::new("c_nation", Domain::Fixed(25)),
        ],
        30_000,
        120,
    ));
    b.table(Table::new(
        "supplier",
        vec![
            Attribute::new("s_suppkey", Domain::PrimaryKey),
            Attribute::new("s_city", Domain::Fixed(250)),
            Attribute::new("s_nation", Domain::Fixed(25)),
        ],
        2_000,
        110,
    ));
    b.table(Table::new(
        "part",
        vec![
            Attribute::new("p_partkey", Domain::PrimaryKey),
            Attribute::new("p_brand", Domain::Fixed(1_000)),
            Attribute::new("p_category", Domain::Fixed(25)),
        ],
        200_000,
        130,
    ));
    b.table(Table::new(
        "date",
        vec![
            Attribute::new("d_datekey", Domain::PrimaryKey),
            Attribute::new("d_year", Domain::Fixed(7)),
        ],
        2_556,
        90,
    ));

    b.edge(("lineorder", "lo_custkey"), ("customer", "c_custkey"));
    b.edge(("lineorder", "lo_partkey"), ("part", "p_partkey"));
    b.edge(("lineorder", "lo_suppkey"), ("supplier", "s_suppkey"));
    b.edge(("lineorder", "lo_orderdate"), ("date", "d_datekey"));

    Ok(b.build()?.scaled(sf))
}

/// The fact table id (largest table; heuristics anchor on it).
pub fn fact_table() -> TableId {
    tables::LINEORDER
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_edges() {
        let s = schema(1.0).expect("schema builds");
        assert_eq!(s.table(tables::LINEORDER).rows, 6_000_000);
        assert_eq!(s.edges().len(), 4);
        // lineorder is the largest table by a wide margin.
        let lo = s.table(tables::LINEORDER).bytes();
        for t in 1..5 {
            assert!(lo > 10 * s.table(TableId(t)).bytes());
        }
    }

    #[test]
    fn fk_domains_follow_scale() {
        let s = schema(0.01).expect("schema builds");
        let lo_cust = s.attr_ref("lineorder", "lo_custkey").unwrap();
        assert_eq!(s.attr_distinct(lo_cust), s.table(tables::CUSTOMER).rows);
    }
}
