//! Schema container, builder and validation.

use crate::attribute::{AttrKind, Attribute, Domain};
use crate::edge::JoinEdge;
use crate::ids::{AttrRef, EdgeId, TableId};
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors detected by [`Schema::validate`] or the builder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemaError {
    DuplicateTable(String),
    DuplicateAttribute { table: String, attr: String },
    UnknownTable(String),
    UnknownAttribute { table: String, attr: String },
    DanglingForeignKey { table: String, attr: String },
    BadCompound { table: String, attr: String },
    BadInheritance { table: String, attr: String },
    EmptyTable(String),
    NoPartitionableAttribute(String),
    DuplicateEdge(JoinEdge),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateTable(t) => write!(f, "duplicate table `{t}`"),
            Self::DuplicateAttribute { table, attr } => {
                write!(f, "duplicate attribute `{attr}` in table `{table}`")
            }
            Self::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Self::UnknownAttribute { table, attr } => {
                write!(f, "unknown attribute `{table}.{attr}`")
            }
            Self::DanglingForeignKey { table, attr } => {
                write!(f, "foreign key `{table}.{attr}` references a missing table")
            }
            Self::BadCompound { table, attr } => {
                write!(
                    f,
                    "compound attribute `{table}.{attr}` has invalid components"
                )
            }
            Self::BadInheritance { table, attr } => {
                write!(
                    f,
                    "inherited attribute `{table}.{attr}` must resolve through a foreign key"
                )
            }
            Self::EmptyTable(t) => write!(f, "table `{t}` has no attributes"),
            Self::NoPartitionableAttribute(t) => {
                write!(f, "table `{t}` has no partitionable attribute")
            }
            Self::DuplicateEdge(e) => write!(f, "duplicate edge {} = {}", e.left, e.right),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A complete database schema: tables plus the fixed set of candidate
/// co-partitioning edges (Section 3.2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schema {
    pub name: String,
    tables: Vec<Table>,
    edges: Vec<JoinEdge>,
}

impl Schema {
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0]
    }

    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    pub fn edge(&self, id: EdgeId) -> &JoinEdge {
        &self.edges[id.0]
    }

    /// Number of rows of the table referenced by `r`'s domain — the distinct
    /// count of the attribute's value domain at the current scale.
    /// Inherited attributes resolve through the foreign-key chain.
    pub fn attr_distinct(&self, r: AttrRef) -> u64 {
        let table = self.table(r.table);
        let attr = &table.attributes[r.attr.0];
        match attr.domain {
            Domain::PrimaryKey => table.rows.max(1),
            Domain::ForeignKey(parent) => self.table(parent).rows.max(1),
            Domain::Fixed(n) => n.max(1),
            Domain::Inherited { via, parent_attr } => {
                match table.attributes[via.0].domain {
                    Domain::ForeignKey(parent) => {
                        self.attr_distinct(AttrRef::new(parent, parent_attr))
                    }
                    // Validation rejects this; be defensive anyway.
                    _ => 1,
                }
            }
        }
    }

    pub fn attribute(&self, r: AttrRef) -> &Attribute {
        &self.table(r.table).attributes[r.attr.0]
    }

    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name == name).map(TableId)
    }

    /// Resolve `"table.attr"`-style references, handy in tests and examples.
    pub fn attr_ref(&self, table: &str, attr: &str) -> Option<AttrRef> {
        let t = self.table_by_name(table)?;
        let a = self.table(t).attr_by_name(attr)?;
        Some(AttrRef::new(t, a))
    }

    /// Find the edge connecting the given attribute pair, if declared.
    pub fn edge_between(&self, a: AttrRef, b: AttrRef) -> Option<EdgeId> {
        let probe = JoinEdge::new(a, b)?;
        self.edges.iter().position(|e| *e == probe).map(EdgeId)
    }

    /// Edges incident to a table.
    pub fn edges_of(&self, table: TableId) -> impl Iterator<Item = (EdgeId, &JoinEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.touches(table))
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// Total database size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(Table::bytes).sum()
    }

    /// Add a candidate edge discovered from workload join predicates.
    /// Returns the (existing or new) edge id; `None` for self-joins.
    pub fn add_workload_edge(&mut self, a: AttrRef, b: AttrRef) -> Option<EdgeId> {
        let edge = JoinEdge::new(a, b)?;
        if let Some(i) = self.edges.iter().position(|e| *e == edge) {
            return Some(EdgeId(i));
        }
        self.edges.push(edge);
        Some(EdgeId(self.edges.len() - 1))
    }

    /// Scale every table's row count by `factor` (rounding up, min 1 row).
    /// Attribute domains follow automatically because foreign keys and
    /// primary keys are resolved against table sizes.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let n = self.tables.len();
        self.scaled_per_table(&vec![factor; n])
    }

    /// Scale each table's row count by its own factor (bulk updates grow
    /// only the transactional tables, like TPC-H's refresh functions).
    pub fn scaled_per_table(mut self, factors: &[f64]) -> Self {
        assert_eq!(factors.len(), self.tables.len(), "one factor per table");
        assert!(factors.iter().all(|f| *f > 0.0), "factors must be positive");
        for (t, f) in self.tables.iter_mut().zip(factors) {
            t.rows = ((t.rows as f64 * f).ceil() as u64).max(1);
        }
        self
    }

    /// Structural validation; built-in schemas are checked in tests, user
    /// schemas should call this after construction.
    pub fn validate(&self) -> Result<(), SchemaError> {
        let mut names = HashMap::new();
        for (i, t) in self.tables.iter().enumerate() {
            if names.insert(t.name.clone(), i).is_some() {
                return Err(SchemaError::DuplicateTable(t.name.clone()));
            }
            if t.attributes.is_empty() {
                return Err(SchemaError::EmptyTable(t.name.clone()));
            }
            if t.partitionable_attrs().next().is_none() {
                return Err(SchemaError::NoPartitionableAttribute(t.name.clone()));
            }
            let mut attr_names = HashMap::new();
            for (j, a) in t.attributes.iter().enumerate() {
                if attr_names.insert(a.name.clone(), j).is_some() {
                    return Err(SchemaError::DuplicateAttribute {
                        table: t.name.clone(),
                        attr: a.name.clone(),
                    });
                }
                match a.domain {
                    Domain::ForeignKey(parent) => {
                        if parent.0 >= self.tables.len() {
                            return Err(SchemaError::DanglingForeignKey {
                                table: t.name.clone(),
                                attr: a.name.clone(),
                            });
                        }
                    }
                    Domain::Inherited { via, parent_attr } => {
                        let parent = match t.attributes.get(via.0).map(|v| v.domain) {
                            Some(Domain::ForeignKey(p)) => p,
                            _ => {
                                return Err(SchemaError::BadInheritance {
                                    table: t.name.clone(),
                                    attr: a.name.clone(),
                                })
                            }
                        };
                        let parent_ok = parent.0 < self.tables.len()
                            && parent_attr.0 < self.tables[parent.0].attributes.len();
                        if !parent_ok {
                            return Err(SchemaError::BadInheritance {
                                table: t.name.clone(),
                                attr: a.name.clone(),
                            });
                        }
                    }
                    Domain::PrimaryKey | Domain::Fixed(_) => {}
                }
                if let AttrKind::Compound(parts) = &a.kind {
                    let ok = !parts.is_empty()
                        && parts.iter().all(|p| {
                            p.0 < t.attributes.len() && !t.attributes[p.0].is_compound() && p.0 != j
                        });
                    if !ok {
                        return Err(SchemaError::BadCompound {
                            table: t.name.clone(),
                            attr: a.name.clone(),
                        });
                    }
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for e in &self.edges {
            for ep in e.endpoints() {
                if ep.table.0 >= self.tables.len() {
                    return Err(SchemaError::UnknownTable(format!("{}", ep.table)));
                }
                if ep.attr.0 >= self.table(ep.table).attributes.len() {
                    return Err(SchemaError::UnknownAttribute {
                        table: self.table(ep.table).name.clone(),
                        attr: format!("{}", ep.attr),
                    });
                }
            }
            if !seen.insert(*e) {
                return Err(SchemaError::DuplicateEdge(*e));
            }
        }
        Ok(())
    }
}

/// Fluent builder used by the built-in benchmark schemas and by users
/// defining their own catalogs.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    name: String,
    tables: Vec<Table>,
    // Edge declarations by name, resolved in `build`.
    edge_decls: Vec<((String, String), (String, String))>,
}

impl SchemaBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Add a table; returns its id for convenience.
    pub fn table(&mut self, table: Table) -> TableId {
        self.tables.push(table);
        TableId(self.tables.len() - 1)
    }

    /// Declare a candidate co-partitioning edge by name
    /// (`("lineorder","lo_custkey")  ("customer","c_custkey")`).
    pub fn edge(
        &mut self,
        a: (impl Into<String>, impl Into<String>),
        b: (impl Into<String>, impl Into<String>),
    ) -> &mut Self {
        self.edge_decls
            .push(((a.0.into(), a.1.into()), (b.0.into(), b.1.into())));
        self
    }

    /// Resolve names, normalize edges, and validate.
    pub fn build(self) -> Result<Schema, SchemaError> {
        let mut schema = Schema {
            name: self.name,
            tables: self.tables,
            edges: Vec::new(),
        };
        for ((ta, aa), (tb, ab)) in self.edge_decls {
            let a = schema
                .attr_ref(&ta, &aa)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    table: ta.clone(),
                    attr: aa.clone(),
                })?;
            let b = schema
                .attr_ref(&tb, &ab)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    table: tb.clone(),
                    attr: ab.clone(),
                })?;
            let edge = JoinEdge::new(a, b)
                .ok_or(SchemaError::DuplicateEdge(JoinEdge { left: a, right: b }))?;
            if schema.edges.contains(&edge) {
                return Err(SchemaError::DuplicateEdge(edge));
            }
            schema.edges.push(edge);
        }
        schema.validate()?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::ids::AttrId;

    fn two_table_builder() -> SchemaBuilder {
        let mut b = SchemaBuilder::new("t");
        b.table(Table::new(
            "fact",
            vec![
                Attribute::new("f_pk", Domain::PrimaryKey),
                Attribute::new("f_dim", Domain::ForeignKey(TableId(1))),
            ],
            1000,
            50,
        ));
        b.table(Table::new(
            "dim",
            vec![Attribute::new("d_pk", Domain::PrimaryKey)],
            100,
            20,
        ));
        b
    }

    #[test]
    fn build_and_lookup() {
        let mut b = two_table_builder();
        b.edge(("fact", "f_dim"), ("dim", "d_pk"));
        let s = b.build().unwrap();
        assert_eq!(s.edges().len(), 1);
        let f_dim = s.attr_ref("fact", "f_dim").unwrap();
        let d_pk = s.attr_ref("dim", "d_pk").unwrap();
        assert_eq!(s.edge_between(f_dim, d_pk), Some(EdgeId(0)));
        assert_eq!(s.edge_between(d_pk, f_dim), Some(EdgeId(0)));
        assert_eq!(s.attr_distinct(f_dim), 100);
        assert_eq!(s.attr_distinct(d_pk), 100);
        assert_eq!(s.total_bytes(), 1000 * 50 + 100 * 20);
    }

    #[test]
    fn unknown_edge_attr_rejected() {
        let mut b = two_table_builder();
        b.edge(("fact", "nope"), ("dim", "d_pk"));
        assert!(matches!(
            b.build(),
            Err(SchemaError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = two_table_builder();
        b.edge(("fact", "f_dim"), ("dim", "d_pk"));
        b.edge(("dim", "d_pk"), ("fact", "f_dim"));
        assert!(matches!(b.build(), Err(SchemaError::DuplicateEdge(_))));
    }

    #[test]
    fn scaling_scales_domains() {
        let mut b = two_table_builder();
        b.edge(("fact", "f_dim"), ("dim", "d_pk"));
        let s = b.build().unwrap().scaled(0.1);
        assert_eq!(s.table(TableId(0)).rows, 100);
        assert_eq!(s.table(TableId(1)).rows, 10);
        let f_dim = s.attr_ref("fact", "f_dim").unwrap();
        assert_eq!(s.attr_distinct(f_dim), 10);
    }

    #[test]
    fn workload_edge_dedup() {
        let mut s = two_table_builder().build().unwrap();
        let a = s.attr_ref("fact", "f_pk").unwrap();
        let b = s.attr_ref("dim", "d_pk").unwrap();
        let e1 = s.add_workload_edge(a, b).unwrap();
        let e2 = s.add_workload_edge(b, a).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(s.edges().len(), 1);
    }

    #[test]
    fn bad_compound_detected() {
        let mut b = SchemaBuilder::new("t");
        b.table(Table::new(
            "x",
            vec![Attribute::new("c", Domain::Fixed(5)).compound_of(vec![AttrId(7)])],
            10,
            8,
        ));
        assert!(matches!(b.build(), Err(SchemaError::BadCompound { .. })));
    }
}
