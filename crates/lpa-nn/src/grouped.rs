//! Grouped forward/backward over *several same-depth networks at once* —
//! the cross-expert training batcher.
//!
//! The committee trains one expert per subspace. Each expert's train step
//! is a chain of small matmuls (replay minibatches of 16–32 rows), far too
//! small to occupy a wide pool on their own. This module stacks the
//! same-shaped work of all members into **one pool dispatch per layer per
//! stage**: every member's forward bands, then every member's gradient
//! rows, each as an independent task in a single `par_map_owned` region.
//!
//! Bit-exactness (DESIGN.md §12): grouping only changes *which dispatch
//! region* a task runs in, never what a task computes. Each forward band
//! is the same [`matmul_band_dyn`] call the per-network driver makes; each
//! gradient row accumulates over the batch in index order on exactly one
//! task, just as `train_scalar`'s `par_chunks_mut` loops do; all
//! cross-member reductions (loss, `db`, the Adam step, the delta swap) run
//! serially per member in member order. Members share no buffers, so the
//! result is bit-identical to calling [`Mlp::train_mse_with`] (or the
//! Huber variant) once per member, in any order, at any thread count.
//! Under [`crate::with_naive_kernels`] the forward degrades to the
//! per-member naive driver, so the differential harness composes with
//! grouped training unchanged.

use crate::adam::Adam;
use crate::matrix::{matmul_band_dyn, naive_kernels_forced, Matrix, ROW_BLOCK};
use crate::mlp::{Mlp, MlpScratch};
use lpa_par::Pool;

/// One member of a grouped forward pass.
#[derive(Debug)]
pub struct GroupForward<'a> {
    pub net: &'a Mlp,
    pub x: &'a Matrix,
    pub scratch: &'a mut MlpScratch,
}

/// One member of a grouped scalar-regression train step. `huber_delta`
/// selects the loss exactly as in [`Mlp::train_huber_with`]; `None` is
/// MSE.
#[derive(Debug)]
pub struct GroupTrain<'a> {
    pub net: &'a mut Mlp,
    pub x: &'a Matrix,
    pub targets: &'a [f32],
    pub opt: &'a mut Adam,
    pub huber_delta: Option<f32>,
    pub scratch: &'a mut MlpScratch,
}

/// A `ROW_BLOCK`-row output band of one member's layer forward. Tasks
/// from all members are dispatched together; each writes only its own
/// disjoint slice of that member's activation buffer.
struct BandTask<'t> {
    x: &'t Matrix,
    w: &'t Matrix,
    bias: &'t [f32],
    b0: usize,
    band: &'t mut [f32],
    out_cols: usize,
    relu: bool,
}

/// A contiguous run of gradient rows of one member's backward pass —
/// either `dW` rows (unit-outer, batch-index-ordered accumulation) or
/// previous-layer delta rows (row-outer accumulation plus the ReLU mask).
/// Both replicate the closure bodies of `train_scalar` exactly.
enum BackTask<'t> {
    DwRows {
        delta: &'t Matrix,
        a_prev: &'t Matrix,
        rows: &'t mut [f32],
        o0: usize,
        in_dim: usize,
        batch: usize,
    },
    PrevDeltaRows {
        delta: &'t Matrix,
        w: &'t Matrix,
        acts: &'t Matrix,
        rows: &'t mut [f32],
        b0: usize,
        in_dim: usize,
    },
}

impl BackTask<'_> {
    fn run(self) {
        match self {
            BackTask::DwRows {
                delta,
                a_prev,
                rows,
                o0,
                in_dim,
                batch,
            } => {
                for (k, wrow) in rows.chunks_mut(in_dim.max(1)).enumerate() {
                    let o = o0 + k;
                    for b in 0..batch {
                        let d = delta.row(b)[o];
                        if d == 0.0 {
                            continue;
                        }
                        for (wi, a) in wrow.iter_mut().zip(a_prev.row(b)) {
                            *wi += d * a;
                        }
                    }
                }
            }
            BackTask::PrevDeltaRows {
                delta,
                w,
                acts,
                rows,
                b0,
                in_dim,
            } => {
                for (k, prow) in rows.chunks_mut(in_dim.max(1)).enumerate() {
                    let b = b0 + k;
                    let drow = delta.row(b);
                    for (o, d) in drow.iter().enumerate() {
                        if *d == 0.0 {
                            continue;
                        }
                        for (p, wv) in prow.iter_mut().zip(w.row(o)) {
                            *p += d * wv;
                        }
                    }
                    // ReLU derivative: zero where the activation was
                    // clamped (same mask pass as `train_scalar`).
                    for (p, a) in prow.iter_mut().zip(acts.row(b)) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Rows per backward task: enough rows that task bookkeeping amortizes,
/// few enough that a handful of members still load-balances a wide pool.
/// Pure structure, not contract — any value gives the same bits.
const BACK_ROWS_PER_TASK: usize = 16;

fn common_depth(depths: impl Iterator<Item = usize>) -> usize {
    let mut depth = 0usize;
    for (i, d) in depths.enumerate() {
        if i == 0 {
            depth = d;
        }
        assert_eq!(d, depth, "grouped members must have the same layer count");
    }
    depth
}

/// Forward every member through its network, layer by layer, with all
/// members' bands of one layer dispatched as a single pool region.
/// Activations land in each member's scratch exactly as
/// [`Mlp::forward_into`] leaves them.
pub fn forward_group(pool: Pool, members: &mut [GroupForward<'_>]) {
    let depth = common_depth(members.iter().map(|m| m.net.layers().len()));
    if depth == 0 || members.is_empty() {
        return;
    }
    // The naive oracle and the one-thread case both skip the shared
    // dispatch: per-member sequential forwards are bit-identical and the
    // naive guard lives inside the per-network driver.
    if naive_kernels_forced() || pool.threads() == 1 {
        for m in members.iter_mut() {
            m.net.forward_into(pool, m.x, m.scratch);
        }
        return;
    }
    let last = depth - 1;
    for i in 0..depth {
        let mut tasks: Vec<BandTask<'_>> = Vec::new();
        for m in members.iter_mut() {
            let Some(layer) = m.net.layers().get(i) else {
                continue;
            };
            if m.scratch.outs.len() < depth {
                m.scratch.outs.resize_with(depth, || Matrix::zeros(0, 0));
            }
            let (done, rest) = m.scratch.outs.split_at_mut(i);
            let Some(cur) = rest.first_mut() else {
                continue;
            };
            let input: &Matrix = done.last().unwrap_or(m.x);
            cur.resize_for_overwrite(input.rows(), layer.output_dim());
            let out_cols = layer.output_dim();
            if out_cols == 0 || input.rows() == 0 {
                continue;
            }
            let band_len = ROW_BLOCK * out_cols;
            for (band, band_data) in cur.data_mut().chunks_mut(band_len).enumerate() {
                tasks.push(BandTask {
                    x: input,
                    w: &layer.w,
                    bias: &layer.b,
                    b0: band * ROW_BLOCK,
                    band: band_data,
                    out_cols,
                    relu: i != last,
                });
            }
        }
        pool.par_map_owned(tasks, |_, t| {
            matmul_band_dyn(t.relu, t.x, t.w, t.bias, t.b0, t.band, t.out_cols);
        });
    }
}

/// Scalar predictions of the most recent [`forward_group`] pass for one
/// member (output dim must be 1) — the grouped analogue of
/// [`Mlp::predict_batch_into`]'s epilogue.
pub fn copy_predictions(net: &Mlp, scratch: &MlpScratch, out: &mut Vec<f32>) {
    assert_eq!(net.output_dim(), 1);
    out.clear();
    if let Some(last) = scratch.outs.get(net.layers().len().saturating_sub(1)) {
        out.extend_from_slice(last.data());
    }
}

/// One grouped SGD step over every member: forward (grouped per layer),
/// loss + output delta (serial per member), then per layer from the top:
/// all members' `dW` and previous-delta rows in one dispatch, followed by
/// the serial per-member `db` sums, Adam updates and delta swaps. Returns
/// each member's batch loss in member order, bit-identical to running
/// [`Mlp::train_mse_with`] / [`Mlp::train_huber_with`] per member.
pub fn train_scalar_group(pool: Pool, members: &mut [GroupTrain<'_>]) -> Vec<f32> {
    let depth = common_depth(members.iter().map(|m| m.net.layers().len()));
    if members.is_empty() {
        return Vec::new();
    }
    // Forward with cached activations, batched across members.
    {
        let mut fwd: Vec<GroupForward<'_>> = members
            .iter_mut()
            .map(|m| GroupForward {
                net: &*m.net,
                x: m.x,
                scratch: &mut *m.scratch,
            })
            .collect();
        forward_group(pool, &mut fwd);
    }

    // Loss and output delta, serial per member (identical loop to
    // `train_scalar`).
    let mut losses = Vec::with_capacity(members.len());
    for m in members.iter_mut() {
        assert_eq!(m.net.output_dim(), 1);
        assert_eq!(m.x.rows(), m.targets.len());
        let batch = m.x.rows();
        let mut loss = 0.0f32;
        m.scratch.delta.resize_for_overwrite(batch, 1);
        {
            let MlpScratch { outs, delta, .. } = &mut *m.scratch;
            let Some(preds) = outs.get(depth - 1) else {
                // Unreachable: `forward_group` sized every member's outs
                // to `depth`. Keep the member's slots consistent anyway.
                losses.push(0.0);
                m.opt.begin_step();
                continue;
            };
            for (b, &target) in m.targets.iter().enumerate().take(batch) {
                let err = preds.get(b, 0) - target;
                match m.huber_delta {
                    None => {
                        loss += err * err;
                        delta.set(b, 0, 2.0 * err / batch as f32);
                    }
                    Some(d) => {
                        if err.abs() <= d {
                            loss += 0.5 * err * err;
                            delta.set(b, 0, err / batch as f32);
                        } else {
                            loss += d * (err.abs() - 0.5 * d);
                            delta.set(b, 0, d * err.signum() / batch as f32);
                        }
                    }
                }
            }
        }
        loss /= batch as f32;
        losses.push(loss);
        m.opt.begin_step();
    }

    // Backward, top layer down. Per layer: one dispatch region holding
    // every member's dW-row and prev-delta-row tasks, then the serial
    // per-member epilogue (db, Adam step, swap) in member order.
    for i in (0..depth).rev() {
        let mut tasks: Vec<BackTask<'_>> = Vec::new();
        for m in members.iter_mut() {
            let Some(layer) = m.net.layers().get(i) else {
                continue;
            };
            let out_dim = layer.output_dim();
            let in_dim = layer.input_dim();
            let batch = m.x.rows();
            let MlpScratch {
                outs,
                delta,
                prev_delta,
                dw,
                db,
            } = &mut *m.scratch;
            let a_prev: &Matrix = if i == 0 { m.x } else { &outs[i - 1] };
            dw.resize_zeroed(out_dim, in_dim);
            if in_dim > 0 {
                let rows_len = BACK_ROWS_PER_TASK * in_dim;
                for (chunk, rows) in dw.data_mut().chunks_mut(rows_len).enumerate() {
                    tasks.push(BackTask::DwRows {
                        delta,
                        a_prev,
                        rows,
                        o0: chunk * BACK_ROWS_PER_TASK,
                        in_dim,
                        batch,
                    });
                }
            }
            // db: serial batch-index-ordered sum, same as `train_scalar`.
            db.clear();
            db.resize(out_dim, 0.0);
            for b in 0..batch {
                for (o, d) in delta.row(b).iter().enumerate() {
                    if *d == 0.0 {
                        continue;
                    }
                    db[o] += d;
                }
            }
            if i > 0 {
                prev_delta.resize_zeroed(batch, in_dim);
                let rows_len = BACK_ROWS_PER_TASK * in_dim.max(1);
                for (chunk, rows) in prev_delta.data_mut().chunks_mut(rows_len).enumerate() {
                    tasks.push(BackTask::PrevDeltaRows {
                        delta,
                        w: &layer.w,
                        acts: &outs[i - 1],
                        rows,
                        b0: chunk * BACK_ROWS_PER_TASK,
                        in_dim,
                    });
                }
            }
        }
        if pool.threads() == 1 {
            for t in tasks {
                t.run();
            }
        } else {
            pool.par_map_owned(tasks, |_, t| t.run());
        }
        for m in members.iter_mut() {
            let Some(layer) = m.net.layers_mut().get_mut(i) else {
                continue;
            };
            let MlpScratch {
                delta,
                prev_delta,
                dw,
                db,
                ..
            } = &mut *m.scratch;
            m.opt.step_layer(i, layer, dw, db);
            if i > 0 {
                std::mem::swap(delta, prev_delta);
            }
        }
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_par::with_threads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn member_net(seed: u64, dims: &[usize]) -> (Mlp, Adam) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(dims, &mut rng);
        let opt = Adam::new(2e-3, net.layers());
        (net, opt)
    }

    fn batch_for(seed: usize, rows: usize, cols: usize) -> (Matrix, Vec<f32>) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|k| ((seed * 131 + k) as f32 * 0.173).sin())
            .collect();
        let targets: Vec<f32> = (0..rows)
            .map(|b| ((seed + b) as f32 * 0.41).cos())
            .collect();
        (Matrix::from_vec(rows, cols, data), targets)
    }

    /// The tentpole contract: many grouped train steps over heterogeneous
    /// members (different widths, batch sizes and losses, same depth) must
    /// leave every member's weights bit-identical to training it alone,
    /// at one and at eight threads.
    #[test]
    fn grouped_training_is_bit_identical_to_sequential() {
        for threads in [1usize, 8] {
            let dims: [&[usize]; 3] = [&[6, 16, 8, 1], &[4, 12, 8, 1], &[6, 16, 8, 1]];
            let mut grouped: Vec<(Mlp, Adam)> = (0..3)
                .map(|k| member_net(0x6A0 + k as u64, dims[k]))
                .collect();
            let mut solo = grouped.clone();
            let mut g_scratch: Vec<MlpScratch> = (0..3).map(|_| MlpScratch::new()).collect();
            let mut s_scratch: Vec<MlpScratch> = (0..3).map(|_| MlpScratch::new()).collect();
            with_threads(threads, || {
                let pool = Pool::current();
                for step in 0..25 {
                    let batches: Vec<(Matrix, Vec<f32>)> = (0..3)
                        .map(|k| batch_for(step * 3 + k, 1 + (step * 5 + k) % 13, dims[k][0]))
                        .collect();
                    let huber = [None, Some(1.0f32), None];
                    let losses = {
                        let mut members: Vec<GroupTrain<'_>> = grouped
                            .iter_mut()
                            .zip(g_scratch.iter_mut())
                            .zip(&batches)
                            .zip(&huber)
                            .map(|((((net, opt), scratch), (x, t)), h)| GroupTrain {
                                net,
                                x,
                                targets: t,
                                opt,
                                huber_delta: *h,
                                scratch,
                            })
                            .collect();
                        train_scalar_group(pool, &mut members)
                    };
                    for (k, ((net, opt), scratch)) in
                        solo.iter_mut().zip(s_scratch.iter_mut()).enumerate()
                    {
                        let (x, t) = &batches[k];
                        let l = match huber[k] {
                            None => net.train_mse_with(pool, x, t, opt, scratch),
                            Some(d) => net.train_huber_with(pool, x, t, opt, d, scratch),
                        };
                        assert_eq!(
                            losses[k].to_bits(),
                            l.to_bits(),
                            "threads {threads} step {step} member {k} loss"
                        );
                    }
                }
            });
            for (k, ((g, _), (s, _))) in grouped.iter().zip(&solo).enumerate() {
                assert_eq!(
                    crate::reference::mlp_bits(g),
                    crate::reference::mlp_bits(s),
                    "threads {threads} member {k} weights diverged"
                );
            }
        }
    }

    /// Grouped forward + `copy_predictions` must reproduce
    /// `predict_batch_into` exactly, and compose with the naive-kernel
    /// guard (the differential harness wraps whole runs in it).
    #[test]
    fn grouped_forward_matches_predict_batch() {
        let (net_a, _) = member_net(31, &[5, 10, 1]);
        let (net_b, _) = member_net(32, &[7, 10, 1]);
        let (xa, _) = batch_for(1, 9, 5);
        let (xb, _) = batch_for(2, 4, 7);
        for naive in [false, true] {
            let run = || {
                with_threads(4, || {
                    let pool = Pool::current();
                    let mut sa = MlpScratch::new();
                    let mut sb = MlpScratch::new();
                    {
                        let mut members = vec![
                            GroupForward {
                                net: &net_a,
                                x: &xa,
                                scratch: &mut sa,
                            },
                            GroupForward {
                                net: &net_b,
                                x: &xb,
                                scratch: &mut sb,
                            },
                        ];
                        forward_group(pool, &mut members);
                    }
                    let mut out_a = Vec::new();
                    let mut out_b = Vec::new();
                    copy_predictions(&net_a, &sa, &mut out_a);
                    copy_predictions(&net_b, &sb, &mut out_b);
                    (out_a, out_b)
                })
            };
            let (got_a, got_b) = if naive {
                crate::with_naive_kernels(run)
            } else {
                run()
            };
            let expect_a = net_a.predict_batch(&xa);
            let expect_b = net_b.predict_batch(&xb);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got_a), bits(&expect_a), "naive={naive}");
            assert_eq!(bits(&got_b), bits(&expect_b), "naive={naive}");
        }
    }
}
