//! Minimal feed-forward neural-network library, written from scratch for
//! the Q-network of the DRL partitioning advisor and for the learned-cost-
//! model baseline.
//!
//! Scope is deliberately small — dense layers, ReLU, a linear scalar head,
//! MSE loss and the Adam optimizer — exactly what the paper's Keras model
//! uses (Table 1: 128-64 hidden layers, ReLU, linear output, Adam).
//! Everything is `f32`, row-major, allocation-conscious in the hot paths,
//! and fully deterministic given a seed.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod adam;
pub mod dense;
pub mod grouped;
pub mod matrix;
pub mod mlp;
pub mod reference;

pub use adam::Adam;
pub use dense::Dense;
pub use grouped::{copy_predictions, forward_group, train_scalar_group, GroupForward, GroupTrain};
pub use matrix::{route_pool, with_naive_kernels, Matrix};
pub use mlp::{Mlp, MlpScratch};

/// Re-exported so downstream hot paths (the RL train step, committee
/// inference) can resolve the ambient deterministic pool once and pass it
/// through the kernels without depending on `lpa-par` directly.
pub use lpa_par::Pool;
