//! The naive oracle kernels and bit-fingerprint helpers shared by the
//! differential test harness.
//!
//! This module is *not* `#[cfg(test)]`: the workspace-level suites
//! (`tests/determinism.rs`, `tests/property_based.rs`, `tests/resume.rs`,
//! …) and the `lpa-nn` unit tests all import the same oracle, so the
//! fast/naive reference cannot drift between test layers. Nothing here is
//! called on a hot path.
//!
//! The determinism doctrine (DESIGN.md §12): every output cell of a
//! matmul is `dot(x_row, w_row) + bias`, where `dot` accumulates in eight
//! fixed lanes followed by a sequential tail. The fast kernels may
//! re-block, fuse or parallelize *around* that per-cell computation but
//! never reorder the operations *within* it — which is why the oracles
//! below, written as the plainest possible loops over that same per-cell
//! kernel, must match the fast path bit-for-bit.

use crate::matrix::{relu_inplace, Matrix};
use crate::mlp::Mlp;

/// Hand-spelled reference for [`crate::matrix::dot`]: eight accumulator
/// lanes walked in index order, then the sequential tail, then the lane
/// sum. This is the *definition* of the per-cell summation order.
pub fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let chunks = a.len() / 8;
    for c in 0..chunks {
        for k in 0..8 {
            lanes[k] += a[c * 8 + k] * b[c * 8 + k];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    lanes.iter().sum::<f32>() + tail
}

/// The unblocked serial triple loop the blocked kernels must match
/// bit-for-bit: every cell one [`naive_dot`] plus bias, rows then units,
/// no banding, no register blocking, no threads.
pub fn naive_matmul_wt(x: &Matrix, w: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(x.cols(), w.cols(), "inner dimensions");
    assert_eq!(w.rows(), bias.len());
    let mut out = Matrix::zeros(x.rows(), w.rows());
    for b in 0..x.rows() {
        for (o, &bo) in bias.iter().enumerate() {
            out.set(b, o, naive_dot(x.row(b), w.row(o)) + bo);
        }
    }
    out
}

/// [`naive_matmul_wt`] followed by an *unfused* ReLU pass — the oracle for
/// the fused matmul+ReLU kernel.
pub fn naive_matmul_wt_relu(x: &Matrix, w: &Matrix, bias: &[f32]) -> Matrix {
    let mut out = naive_matmul_wt(x, w, bias);
    relu_inplace(&mut out);
    out
}

/// Forward pass through an MLP entirely on the naive kernels: per-layer
/// unblocked matmul, ReLU as a separate pass on hidden layers, fresh
/// allocations everywhere. The oracle for the fused, scratch-reusing fast
/// forward.
pub fn naive_forward(mlp: &Mlp, x: &Matrix) -> Matrix {
    let layers = mlp.layers();
    let last = layers.len().saturating_sub(1);
    let mut cur = x.clone();
    for (i, layer) in layers.iter().enumerate() {
        let mut next = naive_matmul_wt(&cur, &layer.w, &layer.b);
        if i != last {
            relu_inplace(&mut next);
        }
        cur = next;
    }
    cur
}

/// Every parameter of the network as raw `f32` bit patterns, in layer
/// order (weights row-major, then biases). Two networks are *the same
/// trained artifact* iff these vectors are equal — the comparison the
/// whole differential harness reduces to.
pub fn mlp_bits(mlp: &Mlp) -> Vec<u32> {
    let mut bits = Vec::new();
    for layer in mlp.layers() {
        bits.extend(layer.w.data().iter().map(|v| v.to_bits()));
        bits.extend(layer.b.iter().map(|v| v.to_bits()));
    }
    bits
}

/// FNV-1a over [`mlp_bits`] (little-endian bytes) — a stable 64-bit
/// fingerprint of the trained weights for golden fixtures and logs.
pub fn mlp_fingerprint(mlp: &Mlp) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in mlp_bits(mlp) {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fingerprint_tracks_bits() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mlp::new(&[3, 5, 1], &mut rng);
        let b = a.clone();
        assert_eq!(mlp_bits(&a), mlp_bits(&b));
        assert_eq!(mlp_fingerprint(&a), mlp_fingerprint(&b));
        // Flip one weight bit; the fingerprint must move.
        let mut layers = a.layers().to_vec();
        let d = layers[0].w.get(0, 0);
        layers[0].w.set(0, 0, f32::from_bits(d.to_bits() ^ 1));
        let c = Mlp::from_layers(layers);
        assert_ne!(mlp_fingerprint(&a), mlp_fingerprint(&c));
    }

    #[test]
    fn naive_forward_matches_fast_forward() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = Mlp::new(&[7, 12, 5, 1], &mut rng);
        let x = Matrix::from_rows(&[
            &[0.3, -0.7, 0.2, 1.1, -0.4, 0.9, -1.3],
            &[1.0, 0.5, -0.4, 0.0, 0.25, -0.75, 2.0],
            &[-0.1, 0.1, 0.6, -0.6, 1.5, -1.5, 0.0],
        ]);
        let fast = net.forward(&x);
        let naive = naive_forward(&net, &x);
        assert_eq!(fast.data().len(), naive.data().len());
        for (f, n) in fast.data().iter().zip(naive.data()) {
            assert_eq!(f.to_bits(), n.to_bits());
        }
    }
}
