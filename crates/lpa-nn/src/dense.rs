//! One fully-connected layer with He-initialized weights.

use crate::matrix::{matmul_wt_pool, matmul_wt_relu_pool, Matrix};
use lpa_par::Pool;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dense layer `y = x·Wᵀ + b`.
///
/// The layer *owns* the transposed weight layout: `w` is stored out×in
/// (unit-major — each row is one output unit's weight vector, i.e. `Wᵀ`
/// relative to the math convention `y = xW + b`), which is exactly the
/// order the matmul kernels stream it in. Hot paths go through
/// [`Dense::forward_pool`] / [`Dense::forward_relu_pool`] so the layout
/// contract stays in this one place; `w`/`b` remain `pub` for the
/// optimizer, soft updates and the checkpoint codec, which all treat them
/// as flat parameter storage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    pub w: Matrix,
    pub b: Vec<f32>,
}

impl Dense {
    /// He-normal initialization (suits ReLU nets).
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Self {
        let std = (2.0 / input as f64).sqrt();
        let mut w = Matrix::zeros(output, input);
        for v in w.data_mut() {
            *v = (gaussian(rng) * std) as f32;
        }
        Self {
            w,
            b: vec![0.0; output],
        }
    }

    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Forward through this layer: `out = x·Wᵀ + b`. `out` must already
    /// be shaped batch×out; every cell is overwritten. The pool is the
    /// caller's ambient pool (hoisted once per train step / committee
    /// tick); the kernel routes small products to the serial path itself.
    pub fn forward_pool(&self, pool: Pool, x: &Matrix, out: &mut Matrix) {
        matmul_wt_pool(pool, x, &self.w, &self.b, out);
    }

    /// [`Dense::forward_pool`] with ReLU fused into the store — the hidden
    /// -layer fast path. Bit-identical to the unfused matmul followed by a
    /// separate clamp pass.
    pub fn forward_relu_pool(&self, pool: Pool, x: &Matrix, out: &mut Matrix) {
        matmul_wt_relu_pool(pool, x, &self.w, &self.b, out);
    }

    /// Soft update `θ ← (1-τ)·θ + τ·θ_src` (target-network tracking).
    pub fn soft_update_from(&mut self, src: &Dense, tau: f32) {
        for (t, s) in self.w.data_mut().iter_mut().zip(src.w.data()) {
            *t = (1.0 - tau) * *t + tau * s;
        }
        for (t, s) in self.b.iter_mut().zip(&src.b) {
            *t = (1.0 - tau) * *t + tau * s;
        }
    }
}

/// Box–Muller standard normal from a uniform RNG.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initialization_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Dense::new(100, 400, &mut rng);
        let data = d.w.data();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        let expected = 2.0 / 100.0;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
        assert!(d.b.iter().all(|v| *v == 0.0));
        assert_eq!(d.param_count(), 100 * 400 + 400);
    }

    #[test]
    fn soft_update_converges_to_source() {
        let mut rng = StdRng::seed_from_u64(3);
        let src = Dense::new(4, 2, &mut rng);
        let mut tgt = Dense::new(4, 2, &mut rng);
        for _ in 0..2000 {
            tgt.soft_update_from(&src, 0.01);
        }
        for (t, s) in tgt.w.data().iter().zip(src.w.data()) {
            assert!((t - s).abs() < 1e-4);
        }
    }

    #[test]
    fn layer_forward_owns_the_transposed_layout() {
        // forward_pool/forward_relu_pool must equal the raw kernels over
        // the layer's own (out×in) storage — the layout contract in one
        // place.
        let mut rng = StdRng::seed_from_u64(23);
        let d = Dense::new(5, 3, &mut rng);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 1.0, 0.7, -1.1], &[1.3, 0.0, -0.6, 0.1, 0.9]]);
        let pool = Pool::with_threads(1);
        let mut got = Matrix::zeros(2, 3);
        d.forward_pool(pool, &x, &mut got);
        let expect = crate::reference::naive_matmul_wt(&x, &d.w, &d.b);
        assert_eq!(got, expect);
        let mut got_relu = Matrix::zeros(2, 3);
        d.forward_relu_pool(pool, &x, &mut got_relu);
        let expect_relu = crate::reference::naive_matmul_wt_relu(&x, &d.w, &d.b);
        assert_eq!(got_relu, expect_relu);
    }

    #[test]
    fn tau_one_copies() {
        let mut rng = StdRng::seed_from_u64(5);
        let src = Dense::new(3, 3, &mut rng);
        let mut tgt = Dense::new(3, 3, &mut rng);
        tgt.soft_update_from(&src, 1.0);
        assert_eq!(tgt.w, src.w);
        assert_eq!(tgt.b, src.b);
    }
}
