//! The multi-layer perceptron: ReLU hidden layers, linear output, MSE
//! training, target-network soft updates.
//!
//! The hot entry points (`*_into` / `*_with`) take the caller's ambient
//! [`Pool`] (resolved once per train step) and an [`MlpScratch`] so a
//! training loop performs no per-call allocations: forward activations,
//! deltas and gradients all live in reusable buffers. The legacy
//! allocating API (`forward`, `predict_batch`, `train_mse`, …) wraps the
//! same kernels. Both paths produce bit-identical results — the scratch
//! reuse and the fused matmul+ReLU forward keep the naive path's per-cell
//! summation order exactly (DESIGN.md §12).

use crate::adam::Adam;
use crate::dense::Dense;
use crate::matrix::{route_pool, Matrix};
use lpa_par::Pool;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reusable buffers for MLP forward/backward passes: per-layer activation
/// matrices, the backward deltas and the per-layer gradient buffers. One
/// scratch serves any number of sequential calls (and any network depth —
/// buffers grow on demand and are reshaped per call); it carries no state
/// between calls that affects results.
#[derive(Debug, Default)]
pub struct MlpScratch {
    /// Per-layer outputs of the most recent forward pass (`outs[i]` is the
    /// post-activation output of layer `i`). `pub(crate)` so the grouped
    /// trainer ([`crate::grouped`]) can split borrows across members.
    pub(crate) outs: Vec<Matrix>,
    pub(crate) delta: Matrix,
    pub(crate) prev_delta: Matrix,
    pub(crate) dw: Matrix,
    pub(crate) db: Vec<f32>,
}

impl MlpScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Feed-forward network. The paper's Q-network is `Mlp::new(&[input, 128,
/// 64, 1], rng)` — ReLU on hidden layers, linear scalar output (Table 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// `dims` = `[input, hidden…, output]`.
    pub fn new<R: Rng>(dims: &[usize], rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::output_dim)
    }

    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access for the grouped trainer (same crate only —
    /// external callers mutate weights through the optimizer/soft-update
    /// API, which keeps the layer-dim chaining invariant).
    pub(crate) fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Rebuild a network from checkpointed layers (weights restored
    /// bit-exactly; consecutive layer dims must chain).
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "layer dims must chain"
            );
        }
        Self { layers }
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass into the scratch's activation buffers; returns the
    /// output matrix (borrowed from the scratch). Hidden layers run the
    /// fused matmul+ReLU kernel; nothing is allocated after the scratch
    /// has warmed up.
    pub fn forward_into<'s>(
        &self,
        pool: Pool,
        x: &Matrix,
        scratch: &'s mut MlpScratch,
    ) -> &'s Matrix {
        let n = self.layers.len();
        if scratch.outs.len() < n {
            scratch.outs.resize_with(n, || Matrix::zeros(0, 0));
        }
        let last = n - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let (done, rest) = scratch.outs.split_at_mut(i);
            let Some(cur) = rest.first_mut() else { break };
            let input = done.last().unwrap_or(x);
            cur.resize_for_overwrite(input.rows(), layer.output_dim());
            if i == last {
                layer.forward_pool(pool, input, cur);
            } else {
                layer.forward_relu_pool(pool, input, cur);
            }
        }
        &scratch.outs[last]
    }

    /// Forward pass over a batch; returns a freshly allocated output
    /// matrix. Compat wrapper over [`Mlp::forward_into`].
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut scratch = MlpScratch::new();
        self.forward_into(Pool::current(), x, &mut scratch).clone()
    }

    /// Scalar prediction for a single input (output dim must be 1).
    pub fn predict_scalar(&self, x: &[f32]) -> f32 {
        assert_eq!(self.output_dim(), 1);
        let m = Matrix::from_rows(&[x]);
        self.forward(&m).get(0, 0)
    }

    /// Scalar predictions for a batch into a reusable vector (output dim
    /// must be 1). The allocation-free hot path for replay-minibatch
    /// target evaluation and batched committee inference.
    pub fn predict_batch_into(
        &self,
        pool: Pool,
        x: &Matrix,
        scratch: &mut MlpScratch,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(self.output_dim(), 1);
        let last = self.forward_into(pool, x, scratch);
        out.clear();
        // Output dim is 1, so the data vector *is* the prediction column.
        out.extend_from_slice(last.data());
    }

    /// Scalar predictions for a batch (output dim must be 1). Compat
    /// wrapper over [`Mlp::predict_batch_into`].
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f32> {
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        self.predict_batch_into(Pool::current(), x, &mut scratch, &mut out);
        out
    }

    /// One SGD step minimizing MSE between the scalar outputs and
    /// `targets`; returns the batch loss. This is the paper's squared-error
    /// Q-update (Algorithm 1, line 11).
    pub fn train_mse(&mut self, x: &Matrix, targets: &[f32], opt: &mut Adam) -> f32 {
        let mut scratch = MlpScratch::new();
        self.train_scalar(Pool::current(), x, targets, opt, None, &mut scratch)
    }

    /// [`Mlp::train_mse`] with a caller-hoisted pool and scratch — the
    /// allocation-free train-step path.
    pub fn train_mse_with(
        &mut self,
        pool: Pool,
        x: &Matrix,
        targets: &[f32],
        opt: &mut Adam,
        scratch: &mut MlpScratch,
    ) -> f32 {
        self.train_scalar(pool, x, targets, opt, None, scratch)
    }

    /// One SGD step minimizing the Huber loss with threshold `delta` — the
    /// standard DQN stabilization against exploding TD errors (an optional
    /// extension over the paper's plain squared loss).
    pub fn train_huber(&mut self, x: &Matrix, targets: &[f32], opt: &mut Adam, delta: f32) -> f32 {
        assert!(delta > 0.0);
        let mut scratch = MlpScratch::new();
        self.train_scalar(Pool::current(), x, targets, opt, Some(delta), &mut scratch)
    }

    /// [`Mlp::train_huber`] with a caller-hoisted pool and scratch.
    pub fn train_huber_with(
        &mut self,
        pool: Pool,
        x: &Matrix,
        targets: &[f32],
        opt: &mut Adam,
        delta: f32,
        scratch: &mut MlpScratch,
    ) -> f32 {
        assert!(delta > 0.0);
        self.train_scalar(pool, x, targets, opt, Some(delta), scratch)
    }

    fn train_scalar(
        &mut self,
        pool: Pool,
        x: &Matrix,
        targets: &[f32],
        opt: &mut Adam,
        huber_delta: Option<f32>,
        scratch: &mut MlpScratch,
    ) -> f32 {
        assert_eq!(self.output_dim(), 1);
        assert_eq!(x.rows(), targets.len());
        let batch = x.rows();
        let n = self.layers.len();

        // Forward with cached activations (fused ReLU on hidden layers;
        // fusing clamps the identical `dot + bias` value the unfused path
        // would have stored, so the cached activations are bit-equal).
        self.forward_into(pool, x, scratch);
        let MlpScratch {
            outs,
            delta,
            prev_delta,
            dw,
            db,
        } = scratch;

        // Loss and output delta.
        let mut loss = 0.0f32;
        delta.resize_for_overwrite(batch, 1);
        {
            let preds = &outs[n - 1];
            for (b, &target) in targets.iter().enumerate().take(batch) {
                let err = preds.get(b, 0) - target;
                match huber_delta {
                    None => {
                        loss += err * err;
                        delta.set(b, 0, 2.0 * err / batch as f32);
                    }
                    Some(d) => {
                        if err.abs() <= d {
                            loss += 0.5 * err * err;
                            delta.set(b, 0, err / batch as f32);
                        } else {
                            loss += d * (err.abs() - 0.5 * d);
                            delta.set(b, 0, d * err.signum() / batch as f32);
                        }
                    }
                }
            }
        }
        loss /= batch as f32;

        // Backward, reusing the forward activations in place. The gradient
        // loops are written unit-outer (dW) and row-outer (previous delta)
        // so each output cell accumulates over the batch in index order on
        // exactly one thread — distributing the outer loop over the
        // lpa-par pool cannot change the bits, and neither can reusing the
        // gradient buffers (they are re-zeroed each layer).
        opt.begin_step();
        for i in (0..n).rev() {
            let out_dim = self.layers[i].output_dim();
            let in_dim = self.layers[i].input_dim();
            let lpool = route_pool(pool, batch * out_dim * in_dim.max(1));
            let a_prev: &Matrix = if i == 0 { x } else { &outs[i - 1] };
            // dW = deltaᵀ · a_prev  (out×in); db = column sums of delta.
            dw.resize_zeroed(out_dim, in_dim);
            if in_dim > 0 {
                lpool.par_chunks_mut(dw.data_mut(), in_dim, |o, wrow| {
                    for b in 0..batch {
                        let d = delta.row(b)[o];
                        if d == 0.0 {
                            continue;
                        }
                        for (wi, a) in wrow.iter_mut().zip(a_prev.row(b)) {
                            *wi += d * a;
                        }
                    }
                });
            }
            db.clear();
            db.resize(out_dim, 0.0);
            for b in 0..batch {
                for (o, d) in delta.row(b).iter().enumerate() {
                    if *d == 0.0 {
                        continue;
                    }
                    db[o] += d;
                }
            }
            // delta for the previous layer (before applying the update).
            if i > 0 {
                let layer_w = &self.layers[i].w;
                prev_delta.resize_zeroed(batch, in_dim);
                lpool.par_chunks_mut(prev_delta.data_mut(), in_dim.max(1), |b, prow| {
                    let drow = delta.row(b);
                    for (o, d) in drow.iter().enumerate() {
                        if *d == 0.0 {
                            continue;
                        }
                        for (p, w) in prow.iter_mut().zip(layer_w.row(o)) {
                            *p += d * w;
                        }
                    }
                    // ReLU derivative: zero where the activation was
                    // clamped.
                    for (p, a) in prow.iter_mut().zip(outs[i - 1].row(b)) {
                        if *a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                });
                opt.step_layer(i, &mut self.layers[i], dw, db);
                std::mem::swap(delta, prev_delta);
            } else {
                opt.step_layer(i, &mut self.layers[i], dw, db);
            }
        }
        loss
    }

    /// Target-network tracking `θ' ← (1-τ)·θ' + τ·θ` (Algorithm 1, l. 13).
    pub fn soft_update_from(&mut self, src: &Mlp, tau: f32) {
        assert_eq!(self.layers.len(), src.layers.len());
        for (t, s) in self.layers.iter_mut().zip(&src.layers) {
            t.soft_update_from(s, tau);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fits_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Mlp::new(&[2, 16, 1], &mut rng);
        let mut opt = Adam::new(0.01, net.layers());
        // y = 3x0 - 2x1 + 1
        let f = |x: &[f32]| 3.0 * x[0] - 2.0 * x[1] + 1.0;
        let mut last_loss = f32::MAX;
        for it in 0..2000 {
            let mut rows = Vec::new();
            for b in 0..16 {
                let v = (it * 16 + b) as f32;
                rows.push(vec![(v * 0.37).sin(), (v * 0.61).cos()]);
            }
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let x = Matrix::from_rows(&refs);
            let targets: Vec<f32> = rows.iter().map(|r| f(r)).collect();
            last_loss = net.train_mse(&x, &targets, &mut opt);
        }
        assert!(last_loss < 1e-3, "loss {last_loss}");
        let pred = net.predict_scalar(&[0.5, -0.5]);
        assert!((pred - f(&[0.5, -0.5])).abs() < 0.1, "pred {pred}");
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
        // One scratch carried across many heterogeneous calls (different
        // batch sizes, predict interleaved with training) must give exactly
        // the results of fresh allocations each time.
        let mut rng = StdRng::seed_from_u64(33);
        let mut reused = Mlp::new(&[5, 12, 6, 1], &mut rng);
        let mut fresh = reused.clone();
        let mut opt_reused = Adam::new(2e-3, reused.layers());
        let mut opt_fresh = opt_reused.clone();
        let pool = Pool::with_threads(1);
        let mut scratch = MlpScratch::new();
        let mut out = Vec::new();
        for step in 0..20 {
            let batch = 1 + (step * 7) % 13;
            let rows: Vec<Vec<f32>> = (0..batch)
                .map(|b| {
                    (0..5)
                        .map(|i| ((step * 31 + b * 5 + i) as f32 * 0.17).sin())
                        .collect()
                })
                .collect();
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let x = Matrix::from_rows(&refs);
            let targets: Vec<f32> = (0..batch)
                .map(|b| ((step + b) as f32 * 0.4).cos())
                .collect();
            let l1 = reused.train_mse_with(pool, &x, &targets, &mut opt_reused, &mut scratch);
            let l2 = fresh.train_mse(&x, &targets, &mut opt_fresh);
            assert_eq!(l1.to_bits(), l2.to_bits(), "step {step}");
            reused.predict_batch_into(pool, &x, &mut scratch, &mut out);
            let expect = fresh.predict_batch(&x);
            assert_eq!(out.len(), expect.len());
            for (a, b) in out.iter().zip(&expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}");
            }
        }
        let a = crate::reference::mlp_bits(&reused);
        let b = crate::reference::mlp_bits(&fresh);
        assert_eq!(a, b);
    }

    #[test]
    fn huber_scratch_path_matches_compat_path() {
        let mut rng = StdRng::seed_from_u64(91);
        let mut with_scratch = Mlp::new(&[3, 8, 1], &mut rng);
        let mut compat = with_scratch.clone();
        let mut opt_a = Adam::new(1e-3, with_scratch.layers());
        let mut opt_b = opt_a.clone();
        let mut scratch = MlpScratch::new();
        let x = Matrix::from_rows(&[&[0.4, -0.9, 1.2], &[2.0, 0.3, -0.5]]);
        let targets = [5.0f32, -4.0];
        for _ in 0..10 {
            let la = with_scratch.train_huber_with(
                Pool::with_threads(1),
                &x,
                &targets,
                &mut opt_a,
                1.0,
                &mut scratch,
            );
            let lb = compat.train_huber(&x, &targets, &mut opt_b, 1.0);
            assert_eq!(la.to_bits(), lb.to_bits());
        }
        assert_eq!(
            crate::reference::mlp_bits(&with_scratch),
            crate::reference::mlp_bits(&compat)
        );
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Numerically verify dL/dw for a tiny net by comparing the loss
        // drop from one Adam-free manual SGD step... simpler: compare
        // analytic gradient (via a fresh copy trained with tiny lr) to the
        // finite-difference gradient of the loss.
        let mut rng = StdRng::seed_from_u64(9);
        let net = Mlp::new(&[3, 4, 1], &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.7, 0.2], &[1.0, 0.5, -0.4]]);
        let targets = [0.7f32, -0.3];
        let loss_of = |n: &Mlp| {
            let p = n.predict_batch(&x);
            p.iter()
                .zip(&targets)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
                / targets.len() as f32
        };
        // Analytic gradient via backprop with SGD-like probe: clone and
        // capture dw through a single train step with Adam replaced by
        // numeric comparison of directional derivative.
        let eps = 1e-3f32;
        // Pick a few weights and compare finite differences to the
        // backprop direction implied by one training step with tiny lr.
        let mut trained = net.clone();
        let mut opt = Adam::new(1e-6, trained.layers());
        trained.train_mse(&x, &targets, &mut opt);
        for (li, (orig, new)) in net.layers().iter().zip(trained.layers()).enumerate() {
            for wi in [0usize, 3, 7] {
                if wi >= orig.w.data().len() {
                    continue;
                }
                let moved = new.w.data()[wi] - orig.w.data()[wi];
                if moved == 0.0 {
                    continue; // dead ReLU path
                }
                // Finite-difference gradient.
                let mut plus = net.clone();
                plus.layers_mut_for_test(li, wi, eps);
                let mut minus = net.clone();
                minus.layers_mut_for_test(li, wi, -eps);
                let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                // Adam normalizes magnitude, but the *sign* of the update
                // must oppose the gradient.
                assert!(
                    (fd > 0.0) == (moved < 0.0),
                    "layer {li} w{wi}: fd {fd} vs move {moved}"
                );
            }
        }
    }

    impl Mlp {
        fn layers_mut_for_test(&mut self, layer: usize, wi: usize, delta: f32) {
            self.layers[layer].w.data_mut()[wi] += delta;
        }
    }

    #[test]
    fn soft_update_moves_towards_source() {
        let mut rng = StdRng::seed_from_u64(2);
        let src = Mlp::new(&[4, 8, 1], &mut rng);
        let mut tgt = Mlp::new(&[4, 8, 1], &mut rng);
        let d0 = param_distance(&src, &tgt);
        tgt.soft_update_from(&src, 0.5);
        let d1 = param_distance(&src, &tgt);
        assert!(d1 < d0 * 0.6);
    }

    fn param_distance(a: &Mlp, b: &Mlp) -> f32 {
        a.layers()
            .iter()
            .zip(b.layers())
            .map(|(x, y)| {
                x.w.data()
                    .iter()
                    .zip(y.w.data())
                    .map(|(p, q)| (p - q) * (p - q))
                    .sum::<f32>()
            })
            .sum()
    }

    #[test]
    fn paper_network_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Mlp::new(&[134, 128, 64, 1], &mut rng);
        assert_eq!(net.input_dim(), 134);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.param_count(), 134 * 128 + 128 + 128 * 64 + 64 + 64 + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Mlp::new(&[3, 5, 1], &mut StdRng::seed_from_u64(7));
        let b = Mlp::new(&[3, 5, 1], &mut StdRng::seed_from_u64(7));
        assert_eq!(
            a.predict_scalar(&[0.1, 0.2, 0.3]),
            b.predict_scalar(&[0.1, 0.2, 0.3])
        );
    }
}

#[cfg(test)]
mod huber_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn huber_also_fits_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Mlp::new(&[2, 16, 1], &mut rng);
        let mut opt = Adam::new(0.01, net.layers());
        let f = |x: &[f32]| 0.5 * x[0] + 0.25 * x[1];
        for it in 0..1500 {
            let mut rows = Vec::new();
            for b in 0..16 {
                let v = (it * 16 + b) as f32;
                rows.push(vec![(v * 0.37).sin(), (v * 0.61).cos()]);
            }
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let x = Matrix::from_rows(&refs);
            let targets: Vec<f32> = rows.iter().map(|r| f(r)).collect();
            net.train_huber(&x, &targets, &mut opt, 1.0);
        }
        let pred = net.predict_scalar(&[0.3, -0.2]);
        assert!((pred - f(&[0.3, -0.2])).abs() < 0.05, "pred {pred}");
    }

    #[test]
    fn huber_gradient_is_clipped_for_outliers() {
        // With a huge target error the Huber update must move weights less
        // than the MSE update would.
        let mut rng = StdRng::seed_from_u64(5);
        let base = Mlp::new(&[1, 4, 1], &mut rng);
        let x = Matrix::from_rows(&[&[1.0f32]]);
        let target = [1000.0f32];
        let move_of = |huber: bool| {
            let mut net = base.clone();
            let mut opt = Adam::new(1e-3, net.layers());
            if huber {
                net.train_huber(&x, &target, &mut opt, 1.0);
            } else {
                net.train_mse(&x, &target, &mut opt);
            }
            net.layers()[0]
                .w
                .data()
                .iter()
                .zip(base.layers()[0].w.data())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
        };
        // Adam normalizes step sizes, so compare the raw loss magnitudes
        // instead: Huber loss grows linearly, MSE quadratically.
        let mut net_h = base.clone();
        let mut opt_h = Adam::new(1e-3, net_h.layers());
        let huber_loss = net_h.train_huber(&x, &target, &mut opt_h, 1.0);
        let mut net_m = base.clone();
        let mut opt_m = Adam::new(1e-3, net_m.layers());
        let mse_loss = net_m.train_mse(&x, &target, &mut opt_m);
        assert!(huber_loss < mse_loss / 100.0, "{huber_loss} vs {mse_loss}");
        let _ = move_of; // step-size comparison is Adam-normalized; unused
    }
}
