//! The Adam optimizer (Kingma & Ba), per-layer moment state.

use crate::dense::Dense;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Per-layer first/second moment estimates.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct LayerState {
    mw: Vec<f32>,
    vw: Vec<f32>,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

/// Adam optimizer over a stack of [`Dense`] layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    state: Vec<LayerState>,
}

impl Adam {
    /// Paper setting: learning rate 5·10⁻⁴ (Table 1), default betas.
    pub fn new(lr: f32, layers: &[Dense]) -> Self {
        let state = layers
            .iter()
            .map(|l| LayerState {
                mw: vec![0.0; l.w.data().len()],
                vw: vec![0.0; l.w.data().len()],
                mb: vec![0.0; l.b.len()],
                vb: vec![0.0; l.b.len()],
            })
            .collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state,
        }
    }

    /// Advance the shared step counter; call once per `step_layer` sweep.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Shared Adam step counter `t` (number of `begin_step` calls so far).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Per-layer moment vectors `(mw, vw, mb, vb)`, in layer order. Exposed
    /// for checkpointing: the optimizer cannot be resumed bit-identically
    /// without its moments.
    #[allow(clippy::type_complexity)]
    pub fn layer_moments(&self) -> Vec<(&[f32], &[f32], &[f32], &[f32])> {
        self.state
            .iter()
            .map(|s| {
                (
                    s.mw.as_slice(),
                    s.vw.as_slice(),
                    s.mb.as_slice(),
                    s.vb.as_slice(),
                )
            })
            .collect()
    }

    /// Rebuild an optimizer from checkpointed state. `moments` holds one
    /// `(mw, vw, mb, vb)` tuple per layer, exactly as captured by
    /// [`Adam::layer_moments`]; `t` is [`Adam::step_count`].
    #[allow(clippy::type_complexity)]
    pub fn from_raw_state(
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        t: u64,
        moments: Vec<(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>,
    ) -> Self {
        let state = moments
            .into_iter()
            .map(|(mw, vw, mb, vb)| LayerState { mw, vw, mb, vb })
            .collect();
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t,
            state,
        }
    }

    /// Apply gradients to one layer.
    pub fn step_layer(&mut self, idx: usize, layer: &mut Dense, dw: &Matrix, db: &[f32]) {
        assert!(self.t > 0, "call begin_step first");
        debug_assert!(idx < self.state.len(), "unknown layer index");
        let Some(s) = self.state.get_mut(idx) else {
            return;
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        update(
            layer.w.data_mut(),
            dw.data(),
            &mut s.mw,
            &mut s.vw,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            bc1,
            bc2,
        );
        update(
            &mut layer.b,
            db,
            &mut s.mb,
            &mut s.vb,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            bc1,
            bc2,
        );
    }
}

/// Elementwise Adam update. Written as one zipped iterator chain so LLVM
/// drops the bounds checks and vectorizes; each element's operations are
/// unchanged and elements never interact, so the bits are identical to
/// the indexed loop for any chunking the autovectorizer picks.
#[allow(clippy::too_many_arguments)]
fn update(
    params: &mut [f32],
    grads: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bc1: f32,
    bc2: f32,
) {
    for (((p, &g), mi), vi) in params
        .iter_mut()
        .zip(grads)
        .zip(m.iter_mut())
        .zip(v.iter_mut())
    {
        *mi = b1 * *mi + (1.0 - b1) * g;
        *vi = b2 * *vi + (1.0 - b2) * g * g;
        let mhat = *mi / bc1;
        let vhat = *vi / bc2;
        *p -= lr * mhat / (vhat.sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minimizes_a_quadratic() {
        // Treat a 1x1 layer as a scalar parameter; minimize (w-3)^2.
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(1, 1, &mut rng);
        let mut opt = Adam::new(0.05, std::slice::from_ref(&layer));
        for _ in 0..2000 {
            let w = layer.w.get(0, 0);
            let grad = 2.0 * (w - 3.0);
            let dw = Matrix::from_vec(1, 1, vec![grad]);
            opt.begin_step();
            opt.step_layer(0, &mut layer, &dw, &[0.0]);
        }
        assert!((layer.w.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn step_without_begin_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(1, 1, &mut rng);
        let mut opt = Adam::new(0.05, std::slice::from_ref(&layer));
        let dw = Matrix::zeros(1, 1);
        opt.step_layer(0, &mut layer, &dw, &[0.0]);
    }
}
