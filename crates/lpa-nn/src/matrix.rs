//! Row-major `f32` matrix with the handful of operations the network
//! needs. Dot products are written as plain slice loops with fixed-width
//! inner bodies so LLVM can auto-vectorize them.
//!
//! The matmul kernels are blocked into `ROW_BLOCK`-row bands with the
//! ReLU clamp fused into the store (a const-generic flag, so the unfused
//! instantiation carries no branch); each band cell is one [`dot`] plus
//! bias. The bands run on the deterministic `lpa-par` pool when the
//! product is big enough to amortize thread spawning — single-band and
//! one-thread products skip the pool's task bookkeeping entirely. Every
//! output cell is an independent `dot(...) + bias` — no cross-thread or
//! cross-row accumulation — so the result is bit-identical for any
//! `LPA_THREADS` value, any blocking factor, and identical to the
//! unblocked serial loop (see [`crate::reference`] for the oracle and
//! DESIGN.md §12 for the summation-order doctrine).
//!
//! Register blocking (four batch rows per weight-row stream, a `dot4`
//! kernel) and per-row output-unit banding were both built and measured
//! during development: on the target (single core, SSE baseline and
//! `target-cpu=native` alike) every 4-way variant ran 0.4–0.7x of the
//! plain 8-lane [`dot`], which LLVM already auto-vectorizes cleanly —
//! the multi-slice forms defeat bounds-check elision and vectorize
//! across the wrong dimension — and unit banding only added loop
//! overhead once the quad kernel was gone. See EXPERIMENTS.md; the band
//! kernel therefore stays per-cell.
//!
//! Callers on the hot path resolve the ambient pool once (per train step
//! or committee tick) and pass it down; [`route_pool`] then only compares
//! the work size against [`PAR_MIN_FLOPS`] — no per-matmul environment
//! lookup.

use lpa_par::Pool;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Dense row-major matrix. `Default` is the empty 0×0 matrix — the
/// unwarmed state of scratch buffers.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols);
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data.get(r * self.cols + c).copied().unwrap_or(0.0)
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        if let Some(slot) = self.data.get_mut(r * self.cols + c) {
            *slot = v;
        }
    }

    /// Reshape in place, reusing the allocation. Existing contents are
    /// unspecified afterwards — only for destinations whose every cell is
    /// overwritten (matmul outputs).
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape in place and zero-fill, reusing the allocation — for
    /// destinations that accumulate (gradients) or that encoders fill
    /// sparsely, where the old `Matrix::zeros` contents are part of the
    /// contract.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }
}

/// Rows of `x` processed per parallel task in the matmul kernels. Part of
/// the blocked loop structure, not the determinism contract — every output
/// cell is computed independently, so any block size gives the same bits.
pub const ROW_BLOCK: usize = 16;

/// Fused multiply-adds below which spawning threads costs more than the
/// matmul itself; smaller products run inline on the calling thread.
const PAR_MIN_FLOPS: usize = 1 << 21;

/// Route between the caller's ambient pool and inline serial execution by
/// work size (fused multiply-adds). Result bits do not depend on the
/// choice. Callers resolve `Pool::current()` once per train step or
/// committee tick and pass it through this — the routing itself never
/// touches the environment.
pub fn route_pool(ambient: Pool, work: usize) -> Pool {
    if work >= PAR_MIN_FLOPS {
        ambient
    } else {
        Pool::with_threads(1)
    }
}

/// The pool sized for `work` fused ops, resolving the ambient pool
/// lazily — kept for entry points without a hoisted pool (the compat
/// wrappers); hot paths use [`route_pool`] with a caller-resolved pool.
pub(crate) fn pool_for(work: usize) -> Pool {
    if work >= PAR_MIN_FLOPS {
        Pool::current()
    } else {
        Pool::with_threads(1)
    }
}

thread_local! {
    /// Scoped switch forcing the serial naive kernels (unblocked triple
    /// loop, unfused ReLU) instead of the blocked/fused fast path.
    static FORCE_NAIVE: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with every matmul in this thread forced onto the naive serial
/// path (unblocked triple loop, ReLU as a separate pass). The differential
/// harness runs whole training loops under both paths and compares trained
/// weights down to the bits; the fast kernels keep the naive path's
/// per-cell summation order, so the comparison must be exact.
pub fn with_naive_kernels<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_NAIVE.with(|c| c.set(self.0));
        }
    }
    let prev = FORCE_NAIVE.with(|c| c.replace(true));
    let _reset = Reset(prev);
    f()
}

/// Whether [`with_naive_kernels`] is active on this thread.
pub fn naive_kernels_forced() -> bool {
    FORCE_NAIVE.with(Cell::get)
}

/// `out[b] = x[b] · w[o] + bias` for every batch row and output unit:
/// `x` is batch×in, `w` is out×in (each row one unit's weights), the result
/// is batch×out. Writing the inner loop over the shared `in` dimension
/// keeps both operands sequential in memory.
///
/// Compat entry point that resolves the pool itself; hot paths use
/// [`matmul_wt_pool`] with a caller-hoisted pool.
pub fn matmul_wt(x: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix) {
    let pool = pool_for(x.rows() * w.rows() * w.cols().max(1));
    matmul_driver(pool, x, w, bias, out, false);
}

/// [`matmul_wt`] with an explicit ambient pool (routed against the work
/// size by [`route_pool`] internally).
pub fn matmul_wt_pool(ambient: Pool, x: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix) {
    let pool = route_pool(ambient, x.rows() * w.rows() * w.cols().max(1));
    matmul_driver(pool, x, w, bias, out, false);
}

/// [`matmul_wt_pool`] with ReLU fused into the store: `out = max(0, x·wᵀ +
/// b)` cell-wise. Bit-identical to the unfused matmul followed by
/// [`relu_inplace`] — the clamp compares the exact same `dot + bias` value
/// the unfused path would have stored (`-0.0` and NaN behave identically:
/// neither satisfies `v < 0.0`, so both pass through unchanged).
pub fn matmul_wt_relu_pool(ambient: Pool, x: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix) {
    let pool = route_pool(ambient, x.rows() * w.rows() * w.cols().max(1));
    matmul_driver(pool, x, w, bias, out, true);
}

/// Shared driver: `ROW_BLOCK`-row bands over the pool, each band through
/// [`matmul_band`]. Under [`with_naive_kernels`] it degrades to the serial
/// unblocked triple loop (plus a separate ReLU pass when fused was asked
/// for) — the oracle the fast path is differentially tested against.
fn matmul_driver(pool: Pool, x: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix, relu: bool) {
    assert_eq!(x.cols(), w.cols(), "inner dimensions");
    assert_eq!(w.rows(), bias.len());
    assert_eq!(out.rows(), x.rows());
    assert_eq!(out.cols(), w.rows());
    let out_cols = out.cols();
    if out_cols == 0 || out.rows() == 0 {
        return;
    }
    if naive_kernels_forced() {
        for b in 0..x.rows() {
            for (o, &bo) in bias.iter().enumerate() {
                out.set(b, o, dot(x.row(b), w.row(o)) + bo);
            }
        }
        if relu {
            relu_inplace(out);
        }
        return;
    }
    let band_len = ROW_BLOCK * out_cols;
    if pool.threads() == 1 || out.rows() <= ROW_BLOCK {
        // Serial fast path: same band walk in band order, without the
        // pool's per-call task bookkeeping — most hot-path matmuls are a
        // single band (replay minibatches, coalesced inference batches).
        for (band, band_data) in out.data_mut().chunks_mut(band_len).enumerate() {
            if relu {
                matmul_band::<true>(x, w, bias, band * ROW_BLOCK, band_data, out_cols);
            } else {
                matmul_band::<false>(x, w, bias, band * ROW_BLOCK, band_data, out_cols);
            }
        }
        return;
    }
    pool.par_chunks_mut(out.data_mut(), band_len, |band, band_data| {
        if relu {
            matmul_band::<true>(x, w, bias, band * ROW_BLOCK, band_data, out_cols);
        } else {
            matmul_band::<false>(x, w, bias, band * ROW_BLOCK, band_data, out_cols);
        }
    });
}

/// One `ROW_BLOCK`-row band of the output: per row, store `dot + bias`
/// for every output unit, with the ReLU clamp fused into the store when
/// `RELU` (a compile-time flag, so the unfused instantiation carries no
/// branch at all). Every cell's bits are identical to the naive triple
/// loop, and the fused clamp compares the exact value the unfused path
/// would have stored.
fn matmul_band<const RELU: bool>(
    x: &Matrix,
    w: &Matrix,
    bias: &[f32],
    b0: usize,
    band_data: &mut [f32],
    out_cols: usize,
) {
    let rows = band_data.len() / out_cols;
    // Output units outer, band rows inner: the band's slice of `x` (at
    // most `ROW_BLOCK` rows) stays L1-resident while each weight row is
    // streamed exactly once per band instead of once per x-row. The
    // interchange only reorders whole-cell computations — each cell is
    // still one `dot + bias` — so the bits cannot move.
    for (o, &bo) in bias.iter().enumerate() {
        let wr = w.row(o);
        for bi in 0..rows {
            let y = dot(x.row(b0 + bi), wr) + bo;
            // Checked store (L001/L009: library code stays panic-free);
            // one predictable branch amortized over a whole dot product.
            if let Some(slot) = band_data.get_mut(bi * out_cols + o) {
                *slot = if RELU && y < 0.0 { 0.0 } else { y };
            }
        }
    }
}

/// [`matmul_band`] with the ReLU flag resolved at runtime — the entry
/// point for the grouped trainer ([`crate::grouped`]), which stacks bands
/// from *different* networks into one pool dispatch and therefore cannot
/// pick the const-generic instantiation at compile time. Delegates to the
/// same kernel, so every cell's bits match the per-network path exactly.
pub(crate) fn matmul_band_dyn(
    relu: bool,
    x: &Matrix,
    w: &Matrix,
    bias: &[f32],
    b0: usize,
    band_data: &mut [f32],
    out_cols: usize,
) {
    if relu {
        matmul_band::<true>(x, w, bias, b0, band_data, out_cols);
    } else {
        matmul_band::<false>(x, w, bias, b0, band_data, out_cols);
    }
}

/// Dot product with eight independent accumulators so LLVM can vectorize
/// and pipeline despite floating-point non-associativity.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let ai = &a[i * 8..i * 8 + 8];
        let bi = &b[i * 8..i * 8 + 8];
        for k in 0..8 {
            acc[k] += ai[k] * bi[k];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// ReLU in place; a mask of active units is not needed — backward uses the
/// activation values themselves.
pub fn relu_inplace(m: &mut Matrix) {
    for v in m.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{naive_matmul_wt, naive_matmul_wt_relu};

    #[test]
    fn matmul_against_hand_computed() {
        // x = [[1,2],[3,4]], w = [[1,0],[0,1],[1,1]], bias = [0.5, 0, -1]
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let bias = [0.5, 0.0, -1.0];
        let mut out = Matrix::zeros(2, 3);
        matmul_wt(&x, &w, &bias, &mut out);
        assert_eq!(out.row(0), &[1.5, 2.0, 2.0]);
        assert_eq!(out.row(1), &[3.5, 4.0, 6.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn resize_reuses_and_zeroes_as_specified() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.resize_zeroed(3, 2);
        assert_eq!(m.rows(), 3);
        assert!(m.data().iter().all(|v| *v == 0.0));
        let mut n = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        n.resize_for_overwrite(1, 4);
        assert_eq!((n.rows(), n.cols()), (1, 4));
        assert_eq!(n.data().len(), 4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let x = Matrix::zeros(1, 3);
        let w = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(1, 2);
        matmul_wt(&x, &w, &[0.0, 0.0], &mut out);
    }

    fn random_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> Matrix {
        use rand::Rng;
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-2.0f64..2.0) as f32)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_equals_naive_triple_loop_on_random_shapes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Shapes straddling the block sizes, including edge rows/cols that
        // are not multiples of ROW_BLOCK or the 8-lane dot split, and
        // degenerate dims.
        let shapes = [
            (1, 1, 1),
            (3, 2, 5),
            (ROW_BLOCK, 7, 64),
            (ROW_BLOCK + 1, 9, 65),
            (2 * ROW_BLOCK + 5, 33, 63),
            (47, 13, 131),
            (1, 40, 3),
            (63, 1, 17),
            (5, 8, 2),
            (3, 17, 64),
        ];
        for (case, &(rows, inner, units)) in shapes.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xB10C + case as u64);
            let x = random_matrix(&mut rng, rows, inner);
            let w = random_matrix(&mut rng, units, inner);
            let bias: Vec<f32> = (0..units)
                .map(|_| rng.gen_range(-1.0f64..1.0) as f32)
                .collect();
            let expect = naive_matmul_wt(&x, &w, &bias);
            let mut got = Matrix::zeros(rows, units);
            matmul_wt(&x, &w, &bias, &mut got);
            assert_eq!(got, expect, "shape {rows}x{inner}x{units}");
            let expect_relu = naive_matmul_wt_relu(&x, &w, &bias);
            let mut got_relu = Matrix::zeros(rows, units);
            matmul_wt_relu_pool(Pool::with_threads(1), &x, &w, &bias, &mut got_relu);
            assert_eq!(got_relu, expect_relu, "relu shape {rows}x{inner}x{units}");
        }
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Big enough to cross PAR_MIN_FLOPS so the pool actually engages.
        let mut rng = StdRng::seed_from_u64(77);
        let x = random_matrix(&mut rng, 160, 128);
        let w = random_matrix(&mut rng, 128, 128);
        let bias = vec![0.125f32; 128];
        let run = |threads: usize| {
            lpa_par::with_threads(threads, || {
                let mut out = Matrix::zeros(x.rows(), w.rows());
                matmul_wt(&x, &w, &bias, &mut out);
                out
            })
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn dot_handles_empty_and_odd_length_slices() {
        use crate::reference::naive_dot;
        assert_eq!(dot(&[], &[]), 0.0);
        // Lengths around the 8-lane unrolling boundary; the shared oracle
        // spells out the lane structure (8 accumulators then tail) by hand.
        for len in [1usize, 3, 7, 8, 9, 15, 17] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.3).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            assert_eq!(dot(&a, &b), naive_dot(&a, &b), "len={len}");
        }
    }

    #[test]
    fn fused_relu_matches_unfused_including_negative_zero() {
        // A weight row that produces -0.0 (0 * -1 summed with -0.0 stays
        // -0.0) must survive the fused clamp exactly like the unfused one:
        // -0.0 < 0.0 is false, so both keep the sign bit.
        let x = Matrix::from_vec(1, 2, vec![0.0, -0.0]);
        let w = Matrix::from_vec(2, 2, vec![-1.0, 0.5, 1.0, 1.0]);
        let bias = [0.0f32, -0.0];
        let mut fused = Matrix::zeros(1, 2);
        matmul_wt_relu_pool(Pool::with_threads(1), &x, &w, &bias, &mut fused);
        let mut unfused = Matrix::zeros(1, 2);
        matmul_wt(&x, &w, &bias, &mut unfused);
        relu_inplace(&mut unfused);
        for (f, u) in fused.data().iter().zip(unfused.data()) {
            assert_eq!(f.to_bits(), u.to_bits());
        }
    }

    #[test]
    fn route_pool_keeps_small_work_serial() {
        // Below the threshold the ambient pool must be ignored even when it
        // is wide; above it the ambient pool passes through.
        lpa_par::with_threads(8, || {
            let ambient = Pool::current();
            assert_eq!(route_pool(ambient, 0).threads(), 1);
            assert_eq!(route_pool(ambient, 1 << 20).threads(), 1);
            assert_eq!(route_pool(ambient, 1 << 21).threads(), 8);
        });
    }

    #[test]
    fn naive_kernel_scope_forces_and_restores() {
        assert!(!naive_kernels_forced());
        let x = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, 0.25, 4.0, -1.0]);
        let w = Matrix::from_vec(2, 3, vec![0.5, 1.0, -1.0, 2.0, 0.0, 1.0]);
        let bias = [0.1f32, -0.2];
        let mut fast = Matrix::zeros(2, 2);
        matmul_wt(&x, &w, &bias, &mut fast);
        let naive = with_naive_kernels(|| {
            assert!(naive_kernels_forced());
            let mut out = Matrix::zeros(2, 2);
            matmul_wt(&x, &w, &bias, &mut out);
            out
        });
        assert!(!naive_kernels_forced());
        assert_eq!(fast, naive);
    }
}
