//! Row-major `f32` matrix with the handful of operations the network
//! needs. Dot products are written as plain slice loops so LLVM can
//! auto-vectorize them.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols);
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }
}

/// `out[b] = x[b] · w[o] + bias` for every batch row and output unit:
/// `x` is batch×in, `w` is out×in (each row one unit's weights), the result
/// is batch×out. Writing the inner loop over the shared `in` dimension
/// keeps both operands sequential in memory.
pub fn matmul_wt(x: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix) {
    assert_eq!(x.cols(), w.cols(), "inner dimensions");
    assert_eq!(w.rows(), bias.len());
    assert_eq!(out.rows(), x.rows());
    assert_eq!(out.cols(), w.rows());
    for b in 0..x.rows() {
        let xr = x.row(b);
        let or = out.row_mut(b);
        for (o, ob) in or.iter_mut().enumerate() {
            *ob = dot(xr, w.row(o)) + bias[o];
        }
    }
}

/// Dot product with eight independent accumulators so LLVM can vectorize
/// and pipeline despite floating-point non-associativity.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let ai = &a[i * 8..i * 8 + 8];
        let bi = &b[i * 8..i * 8 + 8];
        for k in 0..8 {
            acc[k] += ai[k] * bi[k];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// ReLU in place; returns a mask of active units is not needed — backward
/// uses the activation values themselves.
pub fn relu_inplace(m: &mut Matrix) {
    for v in m.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        // x = [[1,2],[3,4]], w = [[1,0],[0,1],[1,1]], bias = [0.5, 0, -1]
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let bias = [0.5, 0.0, -1.0];
        let mut out = Matrix::zeros(2, 3);
        matmul_wt(&x, &w, &bias, &mut out);
        assert_eq!(out.row(0), &[1.5, 2.0, 2.0]);
        assert_eq!(out.row(1), &[3.5, 4.0, 6.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let x = Matrix::zeros(1, 3);
        let w = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(1, 2);
        matmul_wt(&x, &w, &[0.0, 0.0], &mut out);
    }
}
