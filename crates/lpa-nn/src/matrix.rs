//! Row-major `f32` matrix with the handful of operations the network
//! needs. Dot products are written as plain slice loops so LLVM can
//! auto-vectorize them.
//!
//! `matmul_wt` is blocked (row bands × output-unit bands) and the row
//! bands run on the deterministic `lpa-par` pool when the product is big
//! enough to amortize thread spawning. Every output cell is an
//! independent `dot(...) + bias` — no cross-thread accumulation — so the
//! result is bit-identical for any `LPA_THREADS` value, and identical to
//! the unblocked serial loop.

use lpa_par::Pool;
use serde::{Deserialize, Serialize};

/// Dense row-major matrix.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols);
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data.get(r * self.cols + c).copied().unwrap_or(0.0)
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        if let Some(slot) = self.data.get_mut(r * self.cols + c) {
            *slot = v;
        }
    }
}

/// Rows of `x` processed per parallel task in [`matmul_wt`]. Part of the
/// blocked loop structure, not the determinism contract — every output
/// cell is computed independently, so any block size gives the same bits.
const ROW_BLOCK: usize = 16;

/// Output units walked per inner band, keeping the active slice of `w`
/// hot in cache while a row band is processed.
const COL_BLOCK: usize = 64;

/// Fused multiply-adds below which spawning threads costs more than the
/// matmul itself; smaller products run inline on the calling thread.
const PAR_MIN_FLOPS: usize = 1 << 21;

/// The pool sized for `work` fused ops: the ambient deterministic pool for
/// large products, inline execution for small ones. Result bits do not
/// depend on the choice.
pub(crate) fn pool_for(work: usize) -> Pool {
    if work >= PAR_MIN_FLOPS {
        Pool::current()
    } else {
        Pool::with_threads(1)
    }
}

/// `out[b] = x[b] · w[o] + bias` for every batch row and output unit:
/// `x` is batch×in, `w` is out×in (each row one unit's weights), the result
/// is batch×out. Writing the inner loop over the shared `in` dimension
/// keeps both operands sequential in memory.
///
/// Blocked: `ROW_BLOCK`-row bands of the output are independent tasks on
/// the `lpa-par` pool, and within a band output units are walked in
/// `COL_BLOCK` bands. Each cell is one `dot` — bit-identical to the naive
/// triple loop regardless of blocking or thread count.
pub fn matmul_wt(x: &Matrix, w: &Matrix, bias: &[f32], out: &mut Matrix) {
    assert_eq!(x.cols(), w.cols(), "inner dimensions");
    assert_eq!(w.rows(), bias.len());
    assert_eq!(out.rows(), x.rows());
    assert_eq!(out.cols(), w.rows());
    let out_cols = out.cols();
    if out_cols == 0 {
        return;
    }
    let pool = pool_for(x.rows() * w.rows() * w.cols().max(1));
    pool.par_chunks_mut(out.data_mut(), ROW_BLOCK * out_cols, |band, band_data| {
        let b0 = band * ROW_BLOCK;
        for (bi, or) in band_data.chunks_mut(out_cols).enumerate() {
            let xr = x.row(b0 + bi);
            let mut o0 = 0;
            while o0 < out_cols {
                let o1 = (o0 + COL_BLOCK).min(out_cols);
                for (k, ob) in or[o0..o1].iter_mut().enumerate() {
                    let o = o0 + k;
                    *ob = dot(xr, w.row(o)) + bias[o];
                }
                o0 = o1;
            }
        }
    });
}

/// Dot product with eight independent accumulators so LLVM can vectorize
/// and pipeline despite floating-point non-associativity.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let ai = &a[i * 8..i * 8 + 8];
        let bi = &b[i * 8..i * 8 + 8];
        for k in 0..8 {
            acc[k] += ai[k] * bi[k];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..a.len() {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

/// ReLU in place; returns a mask of active units is not needed — backward
/// uses the activation values themselves.
pub fn relu_inplace(m: &mut Matrix) {
    for v in m.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computed() {
        // x = [[1,2],[3,4]], w = [[1,0],[0,1],[1,1]], bias = [0.5, 0, -1]
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let bias = [0.5, 0.0, -1.0];
        let mut out = Matrix::zeros(2, 3);
        matmul_wt(&x, &w, &bias, &mut out);
        assert_eq!(out.row(0), &[1.5, 2.0, 2.0]);
        assert_eq!(out.row(1), &[3.5, 4.0, 6.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let x = Matrix::zeros(1, 3);
        let w = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(1, 2);
        matmul_wt(&x, &w, &[0.0, 0.0], &mut out);
    }

    /// The reference the blocked kernel must match bit-for-bit: the naive
    /// triple loop with the same per-cell `dot` kernel.
    fn naive_matmul_wt(x: &Matrix, w: &Matrix, bias: &[f32]) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), w.rows());
        for b in 0..x.rows() {
            for (o, &bo) in bias.iter().enumerate().take(w.rows()) {
                out.set(b, o, dot(x.row(b), w.row(o)) + bo);
            }
        }
        out
    }

    fn random_matrix(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> Matrix {
        use rand::Rng;
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-2.0f64..2.0) as f32)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_equals_naive_triple_loop_on_random_shapes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Shapes straddling the block sizes, including edge rows/cols that
        // are not multiples of ROW_BLOCK / COL_BLOCK, and degenerate dims.
        let shapes = [
            (1, 1, 1),
            (3, 2, 5),
            (ROW_BLOCK, 7, COL_BLOCK),
            (ROW_BLOCK + 1, 9, COL_BLOCK + 1),
            (2 * ROW_BLOCK + 5, 33, COL_BLOCK - 1),
            (47, 13, 2 * COL_BLOCK + 3),
            (1, 40, 3),
            (63, 1, 17),
        ];
        for (case, &(rows, inner, units)) in shapes.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xB10C + case as u64);
            let x = random_matrix(&mut rng, rows, inner);
            let w = random_matrix(&mut rng, units, inner);
            let bias: Vec<f32> = (0..units)
                .map(|_| rng.gen_range(-1.0f64..1.0) as f32)
                .collect();
            let expect = naive_matmul_wt(&x, &w, &bias);
            let mut got = Matrix::zeros(rows, units);
            matmul_wt(&x, &w, &bias, &mut got);
            assert_eq!(got, expect, "shape {rows}x{inner}x{units}");
        }
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Big enough to cross PAR_MIN_FLOPS so the pool actually engages.
        let mut rng = StdRng::seed_from_u64(77);
        let x = random_matrix(&mut rng, 160, 128);
        let w = random_matrix(&mut rng, 128, 128);
        let bias = vec![0.125f32; 128];
        let run = |threads: usize| {
            lpa_par::with_threads(threads, || {
                let mut out = Matrix::zeros(x.rows(), w.rows());
                matmul_wt(&x, &w, &bias, &mut out);
                out
            })
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn dot_handles_empty_and_odd_length_slices() {
        assert_eq!(dot(&[], &[]), 0.0);
        // Lengths around the 8-lane unrolling boundary.
        for len in [1usize, 3, 7, 8, 9, 15, 17] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.3).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            // Reference: same lane structure as `dot` (8 accumulators then
            // tail) evaluated by hand guarantees the unrolled kernel covers
            // every element exactly once.
            let mut lanes = [0.0f32; 8];
            let chunks = len / 8;
            for c in 0..chunks {
                for k in 0..8 {
                    lanes[k] += a[c * 8 + k] * b[c * 8 + k];
                }
            }
            let mut tail = 0.0f32;
            for i in chunks * 8..len {
                tail += a[i] * b[i];
            }
            let expect = lanes.iter().sum::<f32>() + tail;
            assert_eq!(dot(&a, &b), expect, "len={len}");
        }
    }
}
