//! Dirty-tracked incremental state encoding.
//!
//! [`StateEncoder`] re-encodes the full state vector on every step even
//! though an [`Action`] touches exactly one table or edge. [`DeltaEncoder`]
//! keeps the previous `(Partitioning, FrequencyVector)` plus the encoded
//! state prefix in a reused arena buffer, and on each call patches only the
//! feature slots whose inputs changed: the one-hot block of a re-partitioned
//! table, a flipped edge bit, a moved frequency slot. Unchanged slots are
//! untouched bytes.
//!
//! Bit-exactness contract (DESIGN.md §13): every patched slot is written by
//! the *same* expression the full encoder would use (`fill(0.0)` + one-hot
//! writes per table block, `1.0`/`0.0` per edge bit, `*f as f32` per
//! frequency slot), so the arena is byte-for-byte equal to a fresh
//! [`StateEncoder::encode_state_into`] after every call. The full re-encode
//! stays available as the oracle: property tests drive hundreds of random
//! action sequences and compare byte-for-byte, and
//! [`with_full_encode`] forces the oracle path at runtime for full-training
//! differentials.
//!
//! This file is hot-path scoped under lint rule L013: no `Vec::new` /
//! `vec![]` / `collect()` outside `#[cfg(test)]` — steady-state calls must
//! not allocate.

use std::cell::Cell;

use crate::action::Action;
use crate::encoder::{put, StateEncoder};
use crate::partitioning::{Partitioning, TableState};
use lpa_workload::FrequencyVector;

thread_local! {
    static FORCE_FULL: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with the delta encoder forced onto the full re-encode oracle
/// path. Used by differential harnesses; composes with
/// `lpa_nn::with_naive_kernels`.
pub fn with_full_encode<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_FULL.with(|c| c.set(self.0));
        }
    }
    let _reset = Reset(FORCE_FULL.with(|c| c.replace(true)));
    f()
}

/// True while inside [`with_full_encode`] on this thread.
pub fn full_encode_forced() -> bool {
    FORCE_FULL.with(|c| c.get())
}

/// The inputs the cached state prefix was encoded from.
#[derive(Clone, Debug)]
struct CachedInputs {
    tables: Vec<TableState>,
    edges: Vec<bool>,
    freqs: Vec<f64>,
}

/// Incremental (dirty-tracked) wrapper around [`StateEncoder`].
///
/// Owns a reused `state_dim` arena holding the encoding of the last state
/// seen; [`Self::state_prefix`] patches it in place and returns it.
#[derive(Clone, Debug)]
pub struct DeltaEncoder {
    enc: StateEncoder,
    buf: Vec<f32>,
    cached: Option<CachedInputs>,
    patches: u64,
    rebuilds: u64,
}

impl DeltaEncoder {
    pub fn new(enc: StateEncoder) -> Self {
        let mut buf = Vec::with_capacity(enc.state_dim);
        buf.resize(enc.state_dim, 0.0);
        Self {
            enc,
            buf,
            cached: None,
            patches: 0,
            rebuilds: 0,
        }
    }

    /// The wrapped layout.
    pub fn encoder(&self) -> &StateEncoder {
        &self.enc
    }

    /// Calls answered by patching the cached arena.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Calls answered by a full re-encode (first use, forced oracle).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Drop the cached state (the next call re-encodes in full).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// Encode `(p, f)` into the arena — patching dirty slots only — and
    /// return the `state_dim` prefix. Byte-for-byte equal to
    /// [`StateEncoder::encode_state_into`] on a zeroed buffer.
    pub fn state_prefix(&mut self, p: &Partitioning, f: &FrequencyVector) -> &[f32] {
        assert!(
            f.len() <= self.enc.freq_slots,
            "frequency vector longer than layout ({} > {})",
            f.len(),
            self.enc.freq_slots
        );
        match (&mut self.cached, full_encode_forced()) {
            (Some(c), false) => {
                self.patches += 1;
                for (ti, new) in p.table_states().iter().enumerate() {
                    if c.tables[ti] == *new {
                        continue;
                    }
                    let base = self.enc.table_offsets[ti];
                    let dim = self.enc.table_dims[ti];
                    self.buf[base..base + dim].fill(0.0);
                    match new {
                        TableState::Replicated => put(&mut self.buf, base, 1.0),
                        TableState::PartitionedBy(a) => {
                            debug_assert!(1 + a.0 < dim);
                            put(&mut self.buf, base + 1 + a.0, 1.0);
                        }
                    }
                    c.tables[ti] = *new;
                }
                for (ei, new) in p.edge_flags().iter().enumerate() {
                    if c.edges[ei] != *new {
                        put(
                            &mut self.buf,
                            self.enc.edge_offset + ei,
                            if *new { 1.0 } else { 0.0 },
                        );
                        c.edges[ei] = *new;
                    }
                }
                // Frequency tail: slots past the vector's length are 0.0 in
                // a full encode, so a shrink must zero the stale tail.
                let new_f = f.as_slice();
                let n = new_f.len().max(c.freqs.len());
                for i in 0..n {
                    let new_v = new_f.get(i).copied();
                    let old_v = c.freqs.get(i).copied();
                    if new_v.map(f64::to_bits) != old_v.map(f64::to_bits) {
                        put(
                            &mut self.buf,
                            self.enc.freq_offset + i,
                            new_v.unwrap_or(0.0) as f32,
                        );
                    }
                }
                c.freqs.clear();
                c.freqs.extend_from_slice(new_f);
            }
            (cached, _) => {
                self.rebuilds += 1;
                self.enc.encode_state_into(p, f, &mut self.buf);
                match cached {
                    Some(c) => {
                        c.tables.clear();
                        c.tables.extend_from_slice(p.table_states());
                        c.edges.clear();
                        c.edges.extend_from_slice(p.edge_flags());
                        c.freqs.clear();
                        c.freqs.extend_from_slice(f.as_slice());
                    }
                    None => {
                        let mut tables = Vec::with_capacity(p.table_states().len());
                        tables.extend_from_slice(p.table_states());
                        let mut edges = Vec::with_capacity(p.edge_flags().len());
                        edges.extend_from_slice(p.edge_flags());
                        let mut freqs = Vec::with_capacity(self.enc.freq_slots);
                        freqs.extend_from_slice(f.as_slice());
                        *cached = Some(CachedInputs {
                            tables,
                            edges,
                            freqs,
                        });
                    }
                }
            }
        }
        &self.buf
    }

    /// Incremental equivalent of [`StateEncoder::encode_input`].
    pub fn encode_input(
        &mut self,
        p: &Partitioning,
        f: &FrequencyVector,
        a: &Action,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), self.enc.input_dim());
        self.state_prefix(p, f);
        let (s, act) = out.split_at_mut(self.enc.state_dim);
        s.copy_from_slice(&self.buf);
        self.enc.encode_action_into(a, act);
    }

    /// Incremental equivalent of [`StateEncoder::encode_batch`]: the state
    /// prefix is patched once and block-copied into every row.
    pub fn encode_batch(
        &mut self,
        p: &Partitioning,
        f: &FrequencyVector,
        actions: &[Action],
        out: &mut [f32],
    ) {
        let dim = self.enc.input_dim();
        assert_eq!(out.len(), actions.len() * dim, "output buffer size");
        if actions.is_empty() {
            return;
        }
        self.state_prefix(p, f);
        for (row, a) in out.chunks_exact_mut(dim).zip(actions) {
            let (s, act) = row.split_at_mut(self.enc.state_dim);
            s.copy_from_slice(&self.buf);
            self.enc.encode_action_into(a, act);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::valid_actions;
    use lpa_schema::Schema;

    fn setup() -> (Schema, StateEncoder) {
        let s = lpa_schema::ssb::schema(0.001).expect("schema builds");
        let enc = StateEncoder::new(&s, 13);
        (s, enc)
    }

    fn assert_prefix_matches(
        enc: &StateEncoder,
        delta: &mut DeltaEncoder,
        p: &Partitioning,
        f: &FrequencyVector,
    ) {
        let want = enc.encode_state(p, f);
        let got = delta.state_prefix(p, f);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "slot {i}");
        }
    }

    #[test]
    fn walk_of_actions_patches_bitwise() {
        let (s, enc) = setup();
        let mut delta = DeltaEncoder::new(enc.clone());
        let mut p = Partitioning::initial(&s);
        let f = FrequencyVector::from_counts(&[1.0, 3.0, 0.5], 13);
        assert_prefix_matches(&enc, &mut delta, &p, &f);
        // Deterministic walk: always apply the middle valid action.
        for step in 0..40 {
            let acts = valid_actions(&s, &p);
            let a = acts[(step * 7 + 3) % acts.len()];
            p = a.apply(&s, &p).expect("valid action applies");
            assert_prefix_matches(&enc, &mut delta, &p, &f);
        }
        assert_eq!(delta.rebuilds(), 1, "only the first call re-encodes");
        assert_eq!(delta.patches(), 40);
    }

    #[test]
    fn frequency_resample_and_shrink_patch() {
        let (s, enc) = setup();
        let mut delta = DeltaEncoder::new(enc.clone());
        let p = Partitioning::initial(&s);
        let long = FrequencyVector::from_counts(&[1.0, 2.0, 3.0, 4.0], 13);
        let short = FrequencyVector::from_counts(&[5.0], 13);
        assert_prefix_matches(&enc, &mut delta, &p, &long);
        // Shrinking the vector must zero the stale tail slots.
        assert_prefix_matches(&enc, &mut delta, &p, &short);
        assert_prefix_matches(&enc, &mut delta, &p, &long);
    }

    #[test]
    fn batch_matches_full_encoder_bitwise() {
        let (s, enc) = setup();
        let mut delta = DeltaEncoder::new(enc.clone());
        let mut p = Partitioning::initial(&s);
        let f = FrequencyVector::from_counts(&[1.0, 3.0], 13);
        // Prime the cache, then mutate and batch-encode.
        let _ = delta.state_prefix(&p, &f);
        let acts = valid_actions(&s, &p);
        p = acts[0].apply(&s, &p).expect("applies");
        let acts = valid_actions(&s, &p);
        let dim = enc.input_dim();
        let mut want = vec![0.111f32; acts.len() * dim];
        let mut got = vec![0.222f32; acts.len() * dim];
        enc.encode_batch(&p, &f, &acts, &mut want);
        delta.encode_batch(&p, &f, &acts, &mut got);
        assert!(
            got.iter()
                .zip(&want)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batch rows differ"
        );
        // Empty action set is a no-op.
        delta.encode_batch(&p, &f, &[], &mut []);
    }

    #[test]
    fn forced_full_encode_rebuilds_every_call() {
        let (s, enc) = setup();
        let mut delta = DeltaEncoder::new(enc.clone());
        let p = Partitioning::initial(&s);
        let f = FrequencyVector::uniform(13);
        with_full_encode(|| {
            assert_prefix_matches(&enc, &mut delta, &p, &f);
            assert_prefix_matches(&enc, &mut delta, &p, &f);
        });
        assert_eq!(delta.rebuilds(), 2);
        assert_eq!(delta.patches(), 0);
        assert!(!full_encode_forced());
        // Back outside the guard the cache resumes patching.
        assert_prefix_matches(&enc, &mut delta, &p, &f);
        assert_eq!(delta.patches(), 1);
    }

    #[test]
    fn invalidate_forces_one_rebuild() {
        let (s, enc) = setup();
        let mut delta = DeltaEncoder::new(enc.clone());
        let p = Partitioning::initial(&s);
        let f = FrequencyVector::uniform(13);
        let _ = delta.state_prefix(&p, &f);
        delta.invalidate();
        assert_prefix_matches(&enc, &mut delta, &p, &f);
        assert_eq!(delta.rebuilds(), 2);
    }
}
