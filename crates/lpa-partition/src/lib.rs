//! Partitioning state, action space and DRL encodings (Section 3.2 of the
//! paper).
//!
//! * [`Partitioning`] — per-table state (replicated / hash-partitioned by
//!   one attribute) plus the activation flags of the candidate
//!   co-partitioning edges;
//! * [`Action`] — partition a table by an attribute, replicate a table, or
//!   (de-)activate an edge, with the paper's conflict-freedom rule;
//! * [`StateEncoder`] — the fixed-length binary state vector (appended
//!   table one-hots, edge bits, query frequencies) and one-hot action
//!   encoding fed into the Q-network;
//! * [`fingerprint`] — interned fixed-width cache keys over partitioning
//!   states (the allocation-free key layer behind the cost/runtime caches
//!   and the action-set cache).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod action;
pub mod delta_encoder;
pub mod encoder;
pub mod fingerprint;
pub mod partitioning;

pub use action::{valid_actions, Action, ActionError};
pub use delta_encoder::{full_encode_forced, with_full_encode, DeltaEncoder};
pub use encoder::StateEncoder;
pub use fingerprint::{fingerprint64, ActionSetCache, InternedKey, KeyInterner};
pub use partitioning::{Partitioning, TableState};
