//! Actions over partitioning states and their validity rules (Section 3.2,
//! "Actions").
//!
//! Each action affects at most one table's partitioning (partition /
//! replicate) or toggles one co-partitioning edge. Edge activation is only
//! allowed when *conflict-free*: no two active edges may require a table to
//! be partitioned by two different attributes.

use crate::partitioning::{Partitioning, TableState};
use lpa_schema::{AttrId, AttrRef, EdgeId, Schema, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step the DRL agent can take.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Hash-partition `table` by `attr`.
    Partition { table: TableId, attr: AttrId },
    /// Replicate `table` to all nodes.
    Replicate { table: TableId },
    /// Activate a co-partitioning edge (re-partitions both endpoints onto
    /// the edge attributes).
    ActivateEdge(EdgeId),
    /// Deactivate an edge (the tables stay partitioned as they are, but
    /// follow-up actions on them become legal again).
    DeactivateEdge(EdgeId),
}

/// Why an action is invalid in a given state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionError {
    /// The target attribute may not be used as a partitioning key.
    NotPartitionable,
    /// The table is pinned by an active edge; deactivate it first.
    TablePinned,
    /// The action would not change the state.
    NoOp,
    /// Activating the edge conflicts with another active edge.
    EdgeConflict,
    /// The edge is already in the requested activation state.
    EdgeStateUnchanged,
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPartitionable => write!(f, "attribute is not partitionable"),
            Self::TablePinned => write!(f, "table is pinned by an active edge"),
            Self::NoOp => write!(f, "action would not change the state"),
            Self::EdgeConflict => write!(f, "conflicting active edge"),
            Self::EdgeStateUnchanged => write!(f, "edge already in that state"),
        }
    }
}

impl std::error::Error for ActionError {}

impl Action {
    /// Check validity in `state`.
    pub fn validate(&self, schema: &Schema, state: &Partitioning) -> Result<(), ActionError> {
        match *self {
            Action::Partition { table, attr } => {
                if !schema.table(table).attributes[attr.0].partitionable {
                    return Err(ActionError::NotPartitionable);
                }
                if state.table_pinned(schema, table) {
                    return Err(ActionError::TablePinned);
                }
                if state.table_state(table) == TableState::PartitionedBy(attr) {
                    return Err(ActionError::NoOp);
                }
                Ok(())
            }
            Action::Replicate { table } => {
                if state.table_pinned(schema, table) {
                    return Err(ActionError::TablePinned);
                }
                if state.is_replicated(table) {
                    return Err(ActionError::NoOp);
                }
                Ok(())
            }
            Action::ActivateEdge(e) => {
                if state.edge_active(e) {
                    return Err(ActionError::EdgeStateUnchanged);
                }
                let edge = schema.edge(e);
                for ep in edge.endpoints() {
                    if !schema.attribute(ep).partitionable {
                        return Err(ActionError::NotPartitionable);
                    }
                    if Self::pin_conflict(schema, state, ep, e) {
                        return Err(ActionError::EdgeConflict);
                    }
                }
                Ok(())
            }
            Action::DeactivateEdge(e) => {
                if !state.edge_active(e) {
                    return Err(ActionError::EdgeStateUnchanged);
                }
                Ok(())
            }
        }
    }

    /// Whether activating `candidate` would require `ep.table` to be
    /// partitioned by an attribute different from what another active edge
    /// already requires.
    fn pin_conflict(schema: &Schema, state: &Partitioning, ep: AttrRef, candidate: EdgeId) -> bool {
        schema.edges_of(ep.table).any(|(id, other)| {
            id != candidate
                && state.edge_active(id)
                && other
                    .endpoint_on(ep.table)
                    .map(|o| o.attr != ep.attr)
                    .unwrap_or(false)
        })
    }

    /// Apply to a state, returning the successor. Errors if invalid.
    pub fn apply(
        &self,
        schema: &Schema,
        state: &Partitioning,
    ) -> Result<Partitioning, ActionError> {
        self.validate(schema, state)?;
        let mut next = state.clone();
        match *self {
            Action::Partition { table, attr } => {
                next.set_table_state(table, TableState::PartitionedBy(attr));
            }
            Action::Replicate { table } => {
                next.set_table_state(table, TableState::Replicated);
            }
            Action::ActivateEdge(e) => {
                next.set_edge(e, true);
                for ep in schema.edge(e).endpoints() {
                    next.set_table_state(ep.table, TableState::PartitionedBy(ep.attr));
                }
            }
            Action::DeactivateEdge(e) => {
                next.set_edge(e, false);
            }
        }
        debug_assert!(next.check(schema).is_ok());
        Ok(next)
    }

    /// Short label for logs/benches.
    pub fn describe(&self, schema: &Schema) -> String {
        match *self {
            Action::Partition { table, attr } => format!(
                "partition {} by {}",
                schema.table(table).name,
                schema.table(table).attributes[attr.0].name
            ),
            Action::Replicate { table } => format!("replicate {}", schema.table(table).name),
            Action::ActivateEdge(e) => {
                let edge = schema.edge(e);
                format!("activate {} = {}", edge.left, edge.right)
            }
            Action::DeactivateEdge(e) => {
                let edge = schema.edge(e);
                format!("deactivate {} = {}", edge.left, edge.right)
            }
        }
    }
}

/// Enumerate every action valid in `state`, in a deterministic order.
///
/// Q-learning evaluates the network once per valid action per step, so the
/// action space is deliberately small (Section 3.2): one table change or
/// one edge toggle at a time.
pub fn valid_actions(schema: &Schema, state: &Partitioning) -> Vec<Action> {
    let mut out = Vec::new();
    for (ti, t) in schema.tables().iter().enumerate() {
        let table = TableId(ti);
        for attr in t.partitionable_attrs() {
            let a = Action::Partition { table, attr };
            if a.validate(schema, state).is_ok() {
                out.push(a);
            }
        }
        let r = Action::Replicate { table };
        if r.validate(schema, state).is_ok() {
            out.push(r);
        }
    }
    for ei in 0..schema.edges().len() {
        for a in [
            Action::ActivateEdge(EdgeId(ei)),
            Action::DeactivateEdge(EdgeId(ei)),
        ] {
            if a.validate(schema, state).is_ok() {
                out.push(a);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssb() -> Schema {
        lpa_schema::ssb::schema(0.001).expect("schema builds")
    }

    #[test]
    fn partition_and_replicate() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let lo = s.table_by_name("lineorder").unwrap();
        let p1 = Action::Partition {
            table: lo,
            attr: AttrId(1),
        }
        .apply(&s, &p0)
        .unwrap();
        assert_eq!(p1.table_state(lo), TableState::PartitionedBy(AttrId(1)));
        let p2 = Action::Replicate { table: lo }.apply(&s, &p1).unwrap();
        assert!(p2.is_replicated(lo));
    }

    #[test]
    fn noop_rejected() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let lo = s.table_by_name("lineorder").unwrap();
        let err = Action::Partition {
            table: lo,
            attr: AttrId(0),
        }
        .validate(&s, &p0)
        .unwrap_err();
        assert_eq!(err, ActionError::NoOp);
    }

    #[test]
    fn edge_activation_co_partitions() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let e0 = EdgeId(0); // lineorder.lo_custkey = customer.c_custkey
        let p1 = Action::ActivateEdge(e0).apply(&s, &p0).unwrap();
        assert!(p1.edge_active(e0));
        let edge = s.edge(e0);
        for ep in edge.endpoints() {
            assert_eq!(p1.table_state(ep.table), TableState::PartitionedBy(ep.attr));
        }
        p1.check(&s).unwrap();
    }

    #[test]
    fn conflicting_edge_rejected_until_deactivation() {
        // Paper's example: e2 cannot be activated while e1 pins lineorder to
        // lo_custkey; deactivate e1 first.
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let e_cust = EdgeId(0); // lineorder.lo_custkey
        let e_part = EdgeId(1); // lineorder.lo_partkey
        let p1 = Action::ActivateEdge(e_cust).apply(&s, &p0).unwrap();
        assert_eq!(
            Action::ActivateEdge(e_part).validate(&s, &p1),
            Err(ActionError::EdgeConflict)
        );
        let p2 = Action::DeactivateEdge(e_cust).apply(&s, &p1).unwrap();
        Action::ActivateEdge(e_part).apply(&s, &p2).unwrap();
    }

    #[test]
    fn pinned_table_rejects_direct_changes() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let p1 = Action::ActivateEdge(EdgeId(0)).apply(&s, &p0).unwrap();
        let cust = s.table_by_name("customer").unwrap();
        assert_eq!(
            Action::Replicate { table: cust }.validate(&s, &p1),
            Err(ActionError::TablePinned)
        );
    }

    #[test]
    fn non_partitionable_attr_rejected() {
        let s = lpa_schema::tpcch::schema(0.0001).expect("schema builds");
        let p0 = Partitioning::initial(&s);
        let r = s.attr_ref("customer", "c_w_id").unwrap();
        assert_eq!(
            Action::Partition {
                table: r.table,
                attr: r.attr
            }
            .validate(&s, &p0),
            Err(ActionError::NotPartitionable)
        );
    }

    #[test]
    fn valid_actions_cover_every_table() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let actions = valid_actions(&s, &p0);
        for (ti, _) in s.tables().iter().enumerate() {
            assert!(actions.iter().any(|a| matches!(
                a,
                Action::Replicate { table } if table.0 == ti
            )));
        }
        // All four SSB edges can be activated from s0; none deactivated.
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, Action::ActivateEdge(_)))
                .count(),
            4
        );
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, Action::DeactivateEdge(_)))
                .count(),
            0
        );
    }

    #[test]
    fn any_state_reachable_within_table_count_actions() {
        // The paper's t_max >= |T| argument: one action per table suffices
        // to reach any pure table-state partitioning from s0.
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let target = Partitioning::from_states(
            &s,
            vec![
                TableState::PartitionedBy(AttrId(1)),
                TableState::Replicated,
                TableState::Replicated,
                TableState::PartitionedBy(AttrId(0)),
                TableState::Replicated,
            ],
        );
        let mut cur = p0;
        let mut steps = 0;
        for (ti, want) in target.table_states().iter().enumerate() {
            let table = TableId(ti);
            if cur.table_state(table) == *want {
                continue;
            }
            let action = match want {
                TableState::Replicated => Action::Replicate { table },
                TableState::PartitionedBy(a) => Action::Partition { table, attr: *a },
            };
            cur = action.apply(&s, &cur).unwrap();
            steps += 1;
        }
        assert_eq!(cur.table_states(), target.table_states());
        assert!(steps <= s.tables().len());
    }
}
