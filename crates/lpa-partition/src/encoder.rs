//! Fixed-length state and action encodings for the Q-network (Fig. 2 of
//! the paper).
//!
//! The state vector appends, in order: one block per table
//! (`[replicated, attr_0, attr_1, …]` one-hot), one bit per candidate edge,
//! and the normalized query-frequency vector. The action vector appends a
//! one-hot action kind, table, attribute and edge. Q(s,a) is computed from
//! the concatenation of both.

use crate::action::Action;
use crate::partitioning::{Partitioning, TableState};
use lpa_schema::Schema;
use lpa_workload::FrequencyVector;
use serde::{Deserialize, Serialize};

/// Number of action kinds (partition / replicate / activate / deactivate).
const ACTION_KINDS: usize = 4;

/// Write `v` at offset `i`, ignoring out-of-range offsets. Layout
/// invariants are asserted against the buffer length on entry to each
/// encode method; a stale offset must degrade the encoding, not abort the
/// training episode.
pub(crate) fn put(out: &mut [f32], i: usize, v: f32) {
    if let Some(slot) = out.get_mut(i) {
        *slot = v;
    }
}

/// Precomputed layout of the state/action encodings for one schema and one
/// workload size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StateEncoder {
    pub(crate) table_offsets: Vec<usize>,
    pub(crate) table_dims: Vec<usize>,
    pub(crate) edge_offset: usize,
    pub(crate) n_edges: usize,
    pub(crate) freq_offset: usize,
    pub(crate) freq_slots: usize,
    pub(crate) state_dim: usize,
    pub(crate) n_tables: usize,
    pub(crate) max_attrs: usize,
    pub(crate) action_dim: usize,
}

impl StateEncoder {
    /// Layout for `schema` with `freq_slots` query-frequency entries
    /// (active queries plus reserved slots).
    pub fn new(schema: &Schema, freq_slots: usize) -> Self {
        let mut table_offsets = Vec::with_capacity(schema.tables().len());
        let mut table_dims = Vec::with_capacity(schema.tables().len());
        let mut off = 0;
        for t in schema.tables() {
            table_offsets.push(off);
            let dim = 1 + t.attributes.len();
            table_dims.push(dim);
            off += dim;
        }
        let edge_offset = off;
        let n_edges = schema.edges().len();
        let freq_offset = edge_offset + n_edges;
        let state_dim = freq_offset + freq_slots;
        let n_tables = schema.tables().len();
        let max_attrs = schema
            .tables()
            .iter()
            .map(|t| t.attributes.len())
            .max()
            .unwrap_or(0);
        let action_dim = ACTION_KINDS + n_tables + max_attrs + n_edges;
        Self {
            table_offsets,
            table_dims,
            edge_offset,
            n_edges,
            freq_offset,
            freq_slots,
            state_dim,
            n_tables,
            max_attrs,
            action_dim,
        }
    }

    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Dimension of the Q-network input (state ‖ action).
    pub fn input_dim(&self) -> usize {
        self.state_dim + self.action_dim
    }

    pub fn freq_slots(&self) -> usize {
        self.freq_slots
    }

    /// Encode a state into `out[..state_dim]` (zeroing it first).
    pub fn encode_state_into(
        &self,
        partitioning: &Partitioning,
        freqs: &FrequencyVector,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), self.state_dim, "output buffer size");
        assert!(
            freqs.len() <= self.freq_slots,
            "frequency vector longer than layout ({} > {})",
            freqs.len(),
            self.freq_slots
        );
        out.fill(0.0);
        for (ti, state) in partitioning.table_states().iter().enumerate() {
            let base = self.table_offsets[ti];
            match state {
                TableState::Replicated => put(out, base, 1.0),
                TableState::PartitionedBy(a) => {
                    debug_assert!(1 + a.0 < self.table_dims[ti]);
                    put(out, base + 1 + a.0, 1.0);
                }
            }
        }
        for e in partitioning.active_edges() {
            put(out, self.edge_offset + e.0, 1.0);
        }
        for (i, f) in freqs.as_slice().iter().enumerate() {
            put(out, self.freq_offset + i, *f as f32);
        }
    }

    /// Encode an action into `out[..action_dim]` (zeroing it first).
    pub fn encode_action_into(&self, action: &Action, out: &mut [f32]) {
        assert_eq!(out.len(), self.action_dim, "output buffer size");
        out.fill(0.0);
        let table_base = ACTION_KINDS;
        let attr_base = table_base + self.n_tables;
        let edge_base = attr_base + self.max_attrs;
        match *action {
            Action::Partition { table, attr } => {
                out[0] = 1.0;
                put(out, table_base + table.0, 1.0);
                put(out, attr_base + attr.0, 1.0);
            }
            Action::Replicate { table } => {
                out[1] = 1.0;
                put(out, table_base + table.0, 1.0);
            }
            Action::ActivateEdge(e) => {
                out[2] = 1.0;
                put(out, edge_base + e.0, 1.0);
            }
            Action::DeactivateEdge(e) => {
                out[3] = 1.0;
                put(out, edge_base + e.0, 1.0);
            }
        }
    }

    /// Convenience allocating variants.
    pub fn encode_state(&self, p: &Partitioning, f: &FrequencyVector) -> Vec<f32> {
        let mut v = vec![0.0; self.state_dim];
        self.encode_state_into(p, f, &mut v);
        v
    }

    pub fn encode_action(&self, a: &Action) -> Vec<f32> {
        let mut v = vec![0.0; self.action_dim];
        self.encode_action_into(a, &mut v);
        v
    }

    /// Encode state ‖ action in one buffer (the Q-network input).
    pub fn encode_input(&self, p: &Partitioning, f: &FrequencyVector, a: &Action, out: &mut [f32]) {
        assert_eq!(out.len(), self.input_dim());
        let (s, act) = out.split_at_mut(self.state_dim);
        self.encode_state_into(p, f, s);
        self.encode_action_into(a, act);
    }

    /// Encode `(state, action_i)` rows for every action into `out`, a
    /// row-major `actions.len() × input_dim` buffer.
    ///
    /// The Q-network scores every candidate action against the *same*
    /// state, so the state prefix is encoded once and block-copied into
    /// the remaining rows; only the short action suffix is written per
    /// row. Bit-identical to calling [`Self::encode_input`] per row (same
    /// writes, different write order).
    pub fn encode_batch(
        &self,
        p: &Partitioning,
        f: &FrequencyVector,
        actions: &[Action],
        out: &mut [f32],
    ) {
        let dim = self.input_dim();
        assert_eq!(out.len(), actions.len() * dim, "output buffer size");
        if actions.is_empty() {
            return;
        }
        self.encode_state_into(p, f, &mut out[..self.state_dim]);
        let (first, rest) = out.split_at_mut(dim);
        let (state_prefix, first_action) = first.split_at_mut(self.state_dim);
        self.encode_action_into(&actions[0], first_action);
        for (row, a) in rest.chunks_exact_mut(dim).zip(&actions[1..]) {
            let (s, act) = row.split_at_mut(self.state_dim);
            s.copy_from_slice(state_prefix);
            self.encode_action_into(a, act);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::valid_actions;
    use lpa_schema::{AttrId, EdgeId, TableId};

    fn setup() -> (Schema, StateEncoder) {
        let s = lpa_schema::ssb::schema(0.001).expect("schema builds");
        let enc = StateEncoder::new(&s, 13);
        (s, enc)
    }

    #[test]
    fn dims_match_layout() {
        let (s, enc) = setup();
        // Tables: lineorder(1+5) + customer(1+3) + supplier(1+3) +
        // part(1+3) + date(1+2) = 21; edges 4; freqs 13.
        assert_eq!(enc.state_dim(), 21 + 4 + 13);
        // Actions: 4 kinds + 5 tables + 5 max attrs + 4 edges.
        assert_eq!(enc.action_dim(), 4 + 5 + 5 + 4);
        assert_eq!(enc.input_dim(), enc.state_dim() + enc.action_dim());
        assert_eq!(s.edges().len(), 4);
    }

    #[test]
    fn paper_figure2_style_encoding() {
        // Mirror Fig. 2: partitioned tables put a single 1 in the attribute
        // slot, replicated tables set the leading bit.
        let (s, enc) = setup();
        let mut p = Partitioning::initial(&s);
        let cust = s.table_by_name("customer").unwrap();
        p = Action::Replicate { table: cust }.apply(&s, &p).unwrap();
        let f = FrequencyVector::from_counts(&[1.0, 2.0], 13);
        let v = enc.encode_state(&p, &f);
        // customer block starts after lineorder (6 entries).
        assert_eq!(v[6], 1.0, "replicated bit");
        assert_eq!(&v[7..10], &[0.0, 0.0, 0.0]);
        // lineorder partitioned by PK → slot 1 within its block.
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
        // Frequencies normalized to (0.5, 1.0) at the tail.
        let freq_base = 21 + 4;
        assert_eq!(v[freq_base], 0.5);
        assert_eq!(v[freq_base + 1], 1.0);
    }

    #[test]
    fn each_state_block_is_one_hot() {
        let (s, enc) = setup();
        let p = Partitioning::initial(&s);
        let f = FrequencyVector::uniform(13);
        let v = enc.encode_state(&p, &f);
        let mut off = 0;
        for t in s.tables() {
            let dim = 1 + t.attributes.len();
            let ones = v[off..off + dim].iter().filter(|x| **x == 1.0).count();
            assert_eq!(ones, 1, "exactly one bit per table block");
            off += dim;
        }
    }

    #[test]
    fn action_encodings_are_distinct() {
        let (s, enc) = setup();
        let p = Partitioning::initial(&s);
        let actions = valid_actions(&s, &p);
        let mut seen = std::collections::HashSet::new();
        for a in &actions {
            let key: Vec<u32> = enc.encode_action(a).iter().map(|x| x.to_bits()).collect();
            assert!(seen.insert(key), "duplicate encoding for {a:?}");
        }
    }

    #[test]
    fn edge_bits_set() {
        let (s, enc) = setup();
        let p = Action::ActivateEdge(EdgeId(2))
            .apply(&s, &Partitioning::initial(&s))
            .unwrap();
        let f = FrequencyVector::uniform(13);
        let v = enc.encode_state(&p, &f);
        assert_eq!(v[21 + 2], 1.0);
        assert_eq!(v[21], 0.0);
    }

    #[test]
    fn encode_input_concatenates() {
        let (s, enc) = setup();
        let p = Partitioning::initial(&s);
        let f = FrequencyVector::uniform(13);
        let a = Action::Partition {
            table: TableId(0),
            attr: AttrId(2),
        };
        let mut buf = vec![0.0; enc.input_dim()];
        enc.encode_input(&p, &f, &a, &mut buf);
        assert_eq!(&buf[..enc.state_dim()], enc.encode_state(&p, &f).as_slice());
        assert_eq!(&buf[enc.state_dim()..], enc.encode_action(&a).as_slice());
    }

    #[test]
    fn encode_batch_bitwise_matches_per_row_encode() {
        let (s, enc) = setup();
        let mut p = Partitioning::initial(&s);
        p = Action::ActivateEdge(EdgeId(1)).apply(&s, &p).unwrap();
        let f = FrequencyVector::from_counts(&[1.0, 3.0, 0.5], 13);
        let actions = valid_actions(&s, &p);
        assert!(actions.len() > 1);
        let dim = enc.input_dim();
        let mut batch = vec![0.123f32; actions.len() * dim];
        enc.encode_batch(&p, &f, &actions, &mut batch);
        for (i, a) in actions.iter().enumerate() {
            let mut row = vec![0.0f32; dim];
            enc.encode_input(&p, &f, a, &mut row);
            let got = &batch[i * dim..(i + 1) * dim];
            assert!(
                got.iter()
                    .zip(&row)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "row {i} differs"
            );
        }
        // Empty action set is a no-op on an empty buffer.
        enc.encode_batch(&p, &f, &[], &mut []);
    }

    #[test]
    fn shorter_frequency_vector_pads() {
        let (s, enc) = setup();
        let p = Partitioning::initial(&s);
        let f = FrequencyVector::uniform(5);
        let v = enc.encode_state(&p, &f);
        assert_eq!(v[21 + 4 + 4], 1.0);
        assert_eq!(v[21 + 4 + 5], 0.0);
    }
}
