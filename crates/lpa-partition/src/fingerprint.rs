//! Interned, fixed-width cache keys for partitioning states.
//!
//! The step-loop caches (offline cost cache, online runtime cache, the
//! action-set cache) all key on "physical states of some tables" — which
//! the seed code materialized as a fresh `Vec<TableState>` per lookup.
//! This module replaces that with *interning*: every distinct packed key
//! is assigned a dense [`InternedKey`] exactly once (through a `BTreeMap`,
//! never a `HashMap` — lint L002), and every later lookup packs the state
//! into a reused scratch buffer, so the hot path allocates nothing.
//!
//! Keys are fully collision-free by construction: the interner compares
//! the *complete* packed state, not a hash of it, so two distinct
//! physical layouts can never receive the same id. The 64-bit
//! [`fingerprint64`] is a convenience digest for logs and bench reports
//! only — never a cache key.

use crate::action::Action;
use crate::partitioning::{Partitioning, TableState};
use lpa_schema::TableId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dense id of one distinct packed key within a [`KeyInterner`].
///
/// Fixed-width (`u32`), `Copy`, and totally ordered — a `(query, key)`
/// pair is a two-word `BTreeMap` key with no heap indirection.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct InternedKey(pub u32);

/// Packs one table state into a word: `0` = replicated, `attr + 1` =
/// partitioned by `attr`. Lossless for any schema with < 2^32 - 1
/// attributes per table.
#[inline]
fn pack(state: TableState) -> u32 {
    match state {
        TableState::Replicated => 0,
        TableState::PartitionedBy(a) => a.0 as u32 + 1,
    }
}

/// Tag words keep the two key spaces (per-query table subsets vs whole
/// partitionings including edge flags) disjoint inside one interner.
const TAG_QUERY: u32 = 0;
const TAG_STATE: u32 = 1;

/// Interns packed partitioning keys into dense [`InternedKey`]s.
///
/// Lookup of an already-seen key performs zero allocations: the packed
/// form is built in a reused scratch buffer and only cloned into the map
/// when the key is genuinely new.
#[derive(Clone, Debug, Default)]
pub struct KeyInterner {
    ids: BTreeMap<Box<[u32]>, u32>,
    scratch: Vec<u32>,
}

impl KeyInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys seen so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn intern_scratch(&mut self) -> InternedKey {
        if let Some(&id) = self.ids.get(self.scratch.as_slice()) {
            return InternedKey(id);
        }
        let id = self.ids.len() as u32;
        self.ids.insert(self.scratch.clone().into_boxed_slice(), id);
        InternedKey(id)
    }

    /// Key for one query: the physical states of exactly the tables it
    /// touches, in query-table order (the Section 4.2 cache-key argument —
    /// a query's cost depends only on the states of its own tables).
    pub fn query_key(&mut self, p: &Partitioning, tables: &[TableId]) -> InternedKey {
        self.scratch.clear();
        self.scratch.push(TAG_QUERY);
        let states = p.table_states();
        self.scratch
            .extend(tables.iter().map(|t| pack(states[t.0])));
        self.intern_scratch()
    }

    /// Dump every `(packed key, id)` pair in key order, for checkpointing.
    /// Ids are first-seen-order and therefore *not* reconstructible from a
    /// key list alone — the exact pairs must be persisted.
    pub fn entries(&self) -> Vec<(&[u32], u32)> {
        self.ids.iter().map(|(k, &v)| (k.as_ref(), v)).collect()
    }

    /// Rebuild an interner from checkpointed `(packed key, id)` pairs.
    /// `Err` if the ids are not a permutation of `0..n` (a corrupt dump
    /// would otherwise silently alias future keys).
    pub fn from_entries(entries: Vec<(Vec<u32>, u32)>) -> Result<Self, String> {
        let n = entries.len() as u32;
        let mut seen = vec![false; entries.len()];
        for (_, id) in &entries {
            if *id >= n || seen[*id as usize] {
                return Err(format!("interner ids are not a permutation of 0..{n}"));
            }
            seen[*id as usize] = true;
        }
        let mut ids = BTreeMap::new();
        for (k, id) in entries {
            if ids.insert(k.into_boxed_slice(), id).is_some() {
                return Err("duplicate interner key".to_string());
            }
        }
        Ok(Self {
            ids,
            scratch: Vec::new(),
        })
    }

    /// Key for a whole partitioning *including* edge activation flags —
    /// the action-set cache keys on this, because `valid_actions` depends
    /// on which tables are pinned by active edges.
    pub fn state_key(&mut self, p: &Partitioning) -> InternedKey {
        self.scratch.clear();
        self.scratch.push(TAG_STATE);
        self.scratch
            .extend(p.table_states().iter().map(|s| pack(*s)));
        // Edge flags bit-packed, 32 per word.
        let mut word = 0u32;
        let mut bits = 0u32;
        for e in p.edge_flags() {
            word |= u32::from(*e) << bits;
            bits += 1;
            if bits == 32 {
                self.scratch.push(word);
                word = 0;
                bits = 0;
            }
        }
        if bits > 0 {
            self.scratch.push(word);
        }
        self.intern_scratch()
    }
}

/// FNV-1a digest of a partitioning (tables + edge flags) — a stable
/// 64-bit label for logs, bench fingerprints and reports. Not a cache
/// key: collisions are astronomically unlikely but not impossible.
pub fn fingerprint64(p: &Partitioning) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in p.table_states() {
        mix(pack(*s) as u64);
    }
    for e in p.edge_flags() {
        mix(u64::from(*e));
    }
    h
}

/// Memoizes `valid_actions` per distinct partitioning (tables + edges).
///
/// `select_action` evaluates the action set once per step and `train_step`
/// once per replayed sample; partitionings repeat heavily within an
/// episode (t_max steps orbit a handful of states), so the enumeration +
/// validity checks are paid once per *distinct* state instead.
#[derive(Clone, Debug, Default)]
pub struct ActionSetCache {
    interner: KeyInterner,
    sets: BTreeMap<InternedKey, Vec<Action>>,
    pub hits: u64,
    pub misses: u64,
}

impl ActionSetCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached action set for `p`, or `compute(p)` on first sight.
    pub fn get_or_insert_with(
        &mut self,
        p: &Partitioning,
        compute: impl FnOnce() -> Vec<Action>,
    ) -> &[Action] {
        let key = self.interner.state_key(p);
        match self.sets.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(compute())
            }
        }
    }

    /// Distinct partitionings cached.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::valid_actions;
    use lpa_schema::{AttrId, EdgeId};

    fn ssb() -> lpa_schema::Schema {
        lpa_schema::ssb::schema(0.001).expect("schema builds")
    }

    #[test]
    fn query_keys_distinguish_states_and_dedupe() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let lo = s.table_by_name("lineorder").unwrap();
        let p1 = Action::Partition {
            table: lo,
            attr: AttrId(1),
        }
        .apply(&s, &p0)
        .unwrap();
        let mut i = KeyInterner::new();
        let tables = [lo, s.table_by_name("customer").unwrap()];
        let k0 = i.query_key(&p0, &tables);
        let k1 = i.query_key(&p1, &tables);
        assert_ne!(k0, k1);
        assert_eq!(i.query_key(&p0, &tables), k0, "revisits reuse the id");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn query_key_ignores_untouched_tables_and_edges() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        // Toggling an edge whose endpoints are outside `tables` must not
        // change the query key (cache survives edge churn elsewhere).
        let part = s.table_by_name("part").unwrap();
        let date = s.table_by_name("date").unwrap();
        let p1 = Action::ActivateEdge(EdgeId(0)).apply(&s, &p0).unwrap();
        let mut i = KeyInterner::new();
        let k0 = i.query_key(&p0, &[part, date]);
        let k1 = i.query_key(&p1, &[part, date]);
        assert_eq!(k0, k1);
    }

    #[test]
    fn state_key_sees_edge_flags() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let p1 = Action::ActivateEdge(EdgeId(0)).apply(&s, &p0).unwrap();
        let p2 = Action::DeactivateEdge(EdgeId(0)).apply(&s, &p1).unwrap();
        let mut i = KeyInterner::new();
        let k1 = i.state_key(&p1);
        let k2 = i.state_key(&p2);
        // Same table states (deactivation keeps them), different flags.
        assert_eq!(p1.physical_key(), p2.physical_key());
        assert_ne!(k1, k2);
    }

    #[test]
    fn key_spaces_are_disjoint() {
        let s = ssb();
        let p = Partitioning::initial(&s);
        let all: Vec<TableId> = (0..s.tables().len()).map(TableId).collect();
        let mut i = KeyInterner::new();
        let q = i.query_key(&p, &all);
        let st = i.state_key(&p);
        assert_ne!(q, st, "query and state keys never alias");
    }

    #[test]
    fn fingerprint_differs_across_states() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let p1 = Action::ActivateEdge(EdgeId(1)).apply(&s, &p0).unwrap();
        assert_ne!(fingerprint64(&p0), fingerprint64(&p1));
        assert_eq!(fingerprint64(&p0), fingerprint64(&p0.clone()));
    }

    #[test]
    fn action_cache_returns_identical_sets() {
        let s = ssb();
        let p0 = Partitioning::initial(&s);
        let p1 = Action::ActivateEdge(EdgeId(0)).apply(&s, &p0).unwrap();
        let mut c = ActionSetCache::new();
        let fresh0 = valid_actions(&s, &p0);
        let a0 = c
            .get_or_insert_with(&p0, || valid_actions(&s, &p0))
            .to_vec();
        let a1 = c
            .get_or_insert_with(&p1, || valid_actions(&s, &p1))
            .to_vec();
        let a0_again = c.get_or_insert_with(&p0, || unreachable!()).to_vec();
        assert_eq!(a0, fresh0);
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert_eq!(c.len(), 2);
    }
}
