//! The partitioning state: what is replicated, what is hash-partitioned by
//! which attribute, and which co-partitioning edges are active.

use lpa_schema::{AttrId, EdgeId, Schema, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Partitioning state of a single table (the paper's
/// `s(T_i) = (r_i, a_i1, …, a_in)` one-hot vector).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TableState {
    /// Full copy on every node.
    Replicated,
    /// Horizontally hash-partitioned by the given attribute into one shard
    /// per node.
    PartitionedBy(AttrId),
}

/// A complete partitioning of the database: one [`TableState`] per table
/// plus the active/inactive flags of the schema's candidate edges.
///
/// Invariant (checked by [`Partitioning::check`]): an active edge forces
/// both endpoint tables to be partitioned by the edge's attributes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Partitioning {
    tables: Vec<TableState>,
    edges: Vec<bool>,
}

impl Partitioning {
    /// The paper's initial state `s_0`: every table partitioned by its
    /// first partitionable attribute (the primary key for the built-in
    /// schemas), no active edges.
    pub fn initial(schema: &Schema) -> Self {
        let tables = schema
            .tables()
            .iter()
            .map(|t| {
                // Validated schemas always have a partitionable attribute;
                // replication is the graceful fallback if not.
                match t.partitionable_attrs().next() {
                    Some(attr) => TableState::PartitionedBy(attr),
                    None => TableState::Replicated,
                }
            })
            .collect();
        Self {
            tables,
            edges: vec![false; schema.edges().len()],
        }
    }

    /// Build from explicit table states (no active edges). Panics if the
    /// lengths don't match the schema.
    pub fn from_states(schema: &Schema, tables: Vec<TableState>) -> Self {
        assert_eq!(tables.len(), schema.tables().len());
        Self {
            tables,
            edges: vec![false; schema.edges().len()],
        }
    }

    /// Build from explicit table states *and* edge flags — the checkpoint
    /// restore path, which must reproduce mid-episode states where edges
    /// are active. `Err` (never panics: runs on the recovery path) if the
    /// lengths are inconsistent or the edge/table invariant is violated.
    pub fn from_parts(
        schema: &Schema,
        tables: Vec<TableState>,
        edges: Vec<bool>,
    ) -> Result<Self, String> {
        let p = Self { tables, edges };
        p.check(schema)?;
        Ok(p)
    }

    pub fn table_state(&self, t: TableId) -> TableState {
        self.tables[t.0]
    }

    pub fn table_states(&self) -> &[TableState] {
        &self.tables
    }

    pub fn edge_active(&self, e: EdgeId) -> bool {
        self.edges[e.0]
    }

    /// Raw activation flags, one per candidate edge (used by the
    /// fingerprint/interning layer to pack whole-state cache keys).
    pub fn edge_flags(&self) -> &[bool] {
        &self.edges
    }

    pub fn active_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| EdgeId(i))
    }

    pub(crate) fn set_table_state(&mut self, t: TableId, s: TableState) {
        self.tables[t.0] = s;
    }

    pub(crate) fn set_edge(&mut self, e: EdgeId, active: bool) {
        self.edges[e.0] = active;
    }

    /// Whether the table is pinned by at least one active edge.
    pub fn table_pinned(&self, schema: &Schema, t: TableId) -> bool {
        schema.edges_of(t).any(|(id, _)| self.edge_active(id))
    }

    /// Whether the table is replicated.
    pub fn is_replicated(&self, t: TableId) -> bool {
        matches!(self.tables[t.0], TableState::Replicated)
    }

    /// The physical layout ignoring edge flags. Two states that differ only
    /// in edge activation deploy identically — the online phase's runtime
    /// cache keys on this (Section 4.2, Query Runtime Caching).
    pub fn physical_key(&self) -> &[TableState] {
        &self.tables
    }

    /// Physical layout restricted to the given tables — the cache key for a
    /// single query, which depends only on the states of the tables it
    /// touches.
    pub fn physical_key_of(&self, tables: &[TableId]) -> Vec<TableState> {
        tables.iter().map(|t| self.tables[t.0]).collect()
    }

    /// Tables whose physical state differs between `self` and `other`
    /// (drives lazy repartitioning).
    pub fn diff_tables(&self, other: &Self) -> Vec<TableId> {
        assert_eq!(self.tables.len(), other.tables.len());
        self.tables
            .iter()
            .zip(&other.tables)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| TableId(i))
            .collect()
    }

    /// Verify the edge/table consistency invariant.
    pub fn check(&self, schema: &Schema) -> Result<(), String> {
        if self.tables.len() != schema.tables().len() {
            return Err("table count mismatch".into());
        }
        if self.edges.len() != schema.edges().len() {
            return Err("edge count mismatch".into());
        }
        for (i, active) in self.edges.iter().enumerate() {
            if !active {
                continue;
            }
            let edge = schema.edge(EdgeId(i));
            for ep in edge.endpoints() {
                match self.tables[ep.table.0] {
                    TableState::PartitionedBy(a) if a == ep.attr => {}
                    other => {
                        return Err(format!(
                            "edge e{i} active but {} is {:?}",
                            schema.table(ep.table).name,
                            other
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Human-readable description against a schema (used by the experiment
    /// harness to print suggested partitionings).
    pub fn describe(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, (t, s)) in schema.tables().iter().zip(&self.tables).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match s {
                TableState::Replicated => {
                    out.push_str(&format!("{}: replicated", t.name));
                }
                TableState::PartitionedBy(a) => {
                    out.push_str(&format!("{}: by {}", t.name, t.attributes[a.0].name));
                }
            }
        }
        out
    }
}

impl fmt::Display for TableState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Replicated => write!(f, "R"),
            Self::PartitionedBy(a) => write!(f, "P({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        lpa_schema::ssb::schema(0.001).expect("schema builds")
    }

    #[test]
    fn initial_state_partitions_by_primary_key() {
        let s = schema();
        let p = Partitioning::initial(&s);
        for t in 0..s.tables().len() {
            assert_eq!(
                p.table_state(TableId(t)),
                TableState::PartitionedBy(AttrId(0))
            );
        }
        assert_eq!(p.active_edges().count(), 0);
        p.check(&s).unwrap();
    }

    #[test]
    fn diff_tables_detects_changes() {
        let s = schema();
        let a = Partitioning::initial(&s);
        let mut b = a.clone();
        b.set_table_state(TableId(1), TableState::Replicated);
        assert_eq!(a.diff_tables(&b), vec![TableId(1)]);
        assert!(a.diff_tables(&a).is_empty());
    }

    #[test]
    fn physical_key_ignores_edges() {
        let s = schema();
        let a = Partitioning::initial(&s);
        let mut b = a.clone();
        // Activating edge e0 in SSB sets lineorder/customer to the edge
        // attrs — which for lo_custkey/c_custkey changes lineorder's state.
        b.set_edge(EdgeId(0), true);
        // Keys identical because table states were not touched here.
        assert_eq!(a.physical_key(), b.physical_key());
    }

    #[test]
    fn check_rejects_inconsistent_edge() {
        let s = schema();
        let mut p = Partitioning::initial(&s);
        p.set_edge(EdgeId(0), true); // lineorder.lo_custkey = customer.c_custkey
        assert!(
            p.check(&s).is_err(),
            "lineorder is partitioned by PK, not lo_custkey"
        );
    }

    #[test]
    fn describe_names_attributes() {
        let s = schema();
        let mut p = Partitioning::initial(&s);
        p.set_table_state(TableId(1), TableState::Replicated);
        let d = p.describe(&s);
        assert!(d.contains("lineorder: by lo_orderkey"));
        assert!(d.contains("customer: replicated"));
    }
}
