//! DBA heuristics (Section 7.1, "Baselines").

use lpa_partition::{Partitioning, TableState};
use lpa_schema::{AttrRef, Schema, TableId};
use lpa_workload::Workload;

/// Whether the schema is star-shaped (SSB, TPC-DS) or complex (TPC-CH).
/// The paper applies different heuristics per class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchemaClass {
    Star,
    Complex,
}

impl SchemaClass {
    /// Simple auto-detection: a schema is star-shaped if the largest table
    /// is at least 10x the median table and every join edge touches one of
    /// the top-size tables.
    pub fn detect(schema: &Schema) -> Self {
        let mut sizes: Vec<u64> = schema.tables().iter().map(|t| t.bytes()).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let facts: Vec<TableId> = fact_tables(schema);
        let star = !facts.is_empty()
            && sizes.last().copied().unwrap_or(0) >= median.saturating_mul(10)
            && schema
                .edges()
                .iter()
                .all(|e| facts.contains(&e.left.table) || facts.contains(&e.right.table));
        if star {
            Self::Star
        } else {
            Self::Complex
        }
    }
}

/// Tables at least 1/20 the size of the largest table (the "fact" side).
fn fact_tables(schema: &Schema) -> Vec<TableId> {
    let max = schema.tables().iter().map(|t| t.bytes()).max().unwrap_or(0);
    schema
        .tables()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.bytes() >= max / 20)
        .map(|(i, _)| TableId(i))
        .collect()
}

/// How many workload queries join `fact` with `dim`.
fn join_count(schema: &Schema, workload: &Workload, dim: TableId) -> usize {
    let facts = fact_tables(schema);
    workload
        .queries()
        .iter()
        .filter(|q| q.uses_table(dim) && q.tables.iter().any(|t| facts.contains(t)))
        .count()
}

/// The FK pair connecting `fact` to `dim`, if declared.
fn connecting_pair(schema: &Schema, fact: TableId, dim: TableId) -> Option<(AttrRef, AttrRef)> {
    schema
        .edges_of(fact)
        .find(|(_, e)| e.touches(dim))
        .and_then(|(_, e)| Some((e.endpoint_on(fact)?, e.endpoint_on(dim)?)))
}

fn star_heuristic(
    schema: &Schema,
    workload: &Workload,
    pick_dim: impl Fn(&Schema, &Workload, &[TableId]) -> Option<TableId>,
) -> Partitioning {
    let mut facts = fact_tables(schema);
    // Degenerate case (every table is fact-sized): only the single largest
    // table counts as the fact side.
    if facts.len() == schema.tables().len() {
        if let Some(largest) = facts
            .iter()
            .copied()
            .max_by_key(|t| schema.table(*t).bytes())
        {
            facts = vec![largest];
        }
    }
    let dims: Vec<TableId> = (0..schema.tables().len())
        .map(TableId)
        .filter(|t| !facts.contains(t))
        .collect();
    let anchor = pick_dim(schema, workload, &dims);
    let mut states: Vec<TableState> = Partitioning::initial(schema).table_states().to_vec();
    // Replicate every dimension except the anchor.
    for &d in &dims {
        states[d.0] = if Some(d) == anchor {
            match schema.table(d).partitionable_attrs().next() {
                Some(attr) => TableState::PartitionedBy(attr),
                None => TableState::Replicated,
            }
        } else {
            TableState::Replicated
        };
    }
    // Co-partition each fact with the anchor when a join path exists.
    if let Some(anchor) = anchor {
        for &f in &facts {
            if let Some((fa, da)) = connecting_pair(schema, f, anchor) {
                if schema.attribute(fa).partitionable && schema.attribute(da).partitionable {
                    states[f.0] = TableState::PartitionedBy(fa.attr);
                    states[anchor.0] = TableState::PartitionedBy(da.attr);
                }
            }
        }
    }
    Partitioning::from_states(schema, states)
}

fn complex_heuristic_a(schema: &Schema) -> Partitioning {
    // Replicate small tables, partition large tables by primary key.
    let threshold = replicate_threshold(schema);
    let mut states = Vec::with_capacity(schema.tables().len());
    for (i, t) in schema.tables().iter().enumerate() {
        if t.bytes() <= threshold {
            states.push(TableState::Replicated);
        } else {
            // Validated schemas always have a partitionable attribute per
            // table; replication is the graceful fallback if not.
            states.push(
                match schema.table(TableId(i)).partitionable_attrs().next() {
                    Some(attr) => TableState::PartitionedBy(attr),
                    None => TableState::Replicated,
                },
            );
        }
    }
    Partitioning::from_states(schema, states)
}

fn complex_heuristic_b(schema: &Schema) -> Partitioning {
    // Greedily co-partition the largest table pairs (by combined bytes)
    // along declared join edges; replicate the small remainder.
    let threshold = replicate_threshold(schema);
    let mut edges: Vec<_> = schema.edges().iter().collect();
    edges.sort_by_key(|e| {
        std::cmp::Reverse(schema.table(e.left.table).bytes() + schema.table(e.right.table).bytes())
    });
    let mut states: Vec<Option<TableState>> = vec![None; schema.tables().len()];
    for e in edges {
        let [l, r] = e.endpoints();
        let big = |t: TableId| schema.table(t).bytes() > threshold;
        if !big(l.table) || !big(r.table) {
            continue;
        }
        let ok = |ep: AttrRef, states: &[Option<TableState>]| {
            schema.attribute(ep).partitionable
                && matches!(
                    states[ep.table.0],
                    None | Some(TableState::PartitionedBy(_))
                )
                && states[ep.table.0]
                    .map(|s| s == TableState::PartitionedBy(ep.attr))
                    .unwrap_or(true)
        };
        if ok(l, &states) && ok(r, &states) {
            states[l.table.0] = Some(TableState::PartitionedBy(l.attr));
            states[r.table.0] = Some(TableState::PartitionedBy(r.attr));
        }
    }
    let filled: Vec<TableState> = states
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or_else(|| {
                if schema.tables()[i].bytes() <= threshold {
                    TableState::Replicated
                } else {
                    match schema.table(TableId(i)).partitionable_attrs().next() {
                        Some(attr) => TableState::PartitionedBy(attr),
                        None => TableState::Replicated,
                    }
                }
            })
        })
        .collect();
    Partitioning::from_states(schema, filled)
}

/// Tables below 2% of the largest table are "small" (replication fodder).
fn replicate_threshold(schema: &Schema) -> u64 {
    schema.tables().iter().map(|t| t.bytes()).max().unwrap_or(0) / 50
}

/// Heuristic (a): star → co-partition facts with the *most frequently
/// joined* dimension; complex → replicate small tables, partition large
/// ones by primary key.
pub fn heuristic_a(schema: &Schema, workload: &Workload, class: SchemaClass) -> Partitioning {
    match class {
        SchemaClass::Star => star_heuristic(schema, workload, |s, w, dims| {
            dims.iter().copied().max_by_key(|d| join_count(s, w, *d))
        }),
        SchemaClass::Complex => complex_heuristic_a(schema),
    }
}

/// Heuristic (b): star → co-partition facts with the *largest* dimension;
/// complex → greedily co-partition the largest table pairs.
pub fn heuristic_b(schema: &Schema, workload: &Workload, class: SchemaClass) -> Partitioning {
    match class {
        SchemaClass::Star => star_heuristic(schema, workload, |s, _, dims| {
            dims.iter().copied().max_by_key(|d| s.table(*d).bytes())
        }),
        SchemaClass::Complex => complex_heuristic_b(schema),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_class_detection() {
        assert_eq!(
            SchemaClass::detect(&lpa_schema::ssb::schema(1.0).expect("schema builds")),
            SchemaClass::Star
        );
        assert_eq!(
            SchemaClass::detect(&lpa_schema::tpcch::schema(1.0).expect("schema builds")),
            SchemaClass::Complex
        );
    }

    #[test]
    fn ssb_heuristic_a_anchors_on_date_b_on_customer() {
        let s = lpa_schema::ssb::schema(1.0).expect("schema builds");
        let w = lpa_workload::ssb::workload(&s).expect("workload builds");
        let a = heuristic_a(&s, &w, SchemaClass::Star);
        let b = heuristic_b(&s, &w, SchemaClass::Star);
        let lo = s.table_by_name("lineorder").unwrap();
        let date = s.table_by_name("date").unwrap();
        let cust = s.table_by_name("customer").unwrap();
        // (a): fact partitioned by lo_orderdate, date by its key.
        let lo_date = s.attr_ref("lineorder", "lo_orderdate").unwrap();
        assert_eq!(a.table_state(lo), TableState::PartitionedBy(lo_date.attr));
        assert!(matches!(a.table_state(date), TableState::PartitionedBy(_)));
        assert!(a.is_replicated(cust));
        // (b): largest dimension is part... check by bytes.
        let largest = (1..5)
            .map(TableId)
            .max_by_key(|t| s.table(*t).bytes())
            .unwrap();
        assert!(matches!(
            b.table_state(largest),
            TableState::PartitionedBy(_)
        ));
        assert!(!b.is_replicated(lo));
    }

    #[test]
    fn tpcch_heuristic_a_replicates_small_tables() {
        let s = lpa_schema::tpcch::schema(1.0).expect("schema builds");
        let w = lpa_workload::tpcch::workload(&s).expect("workload builds");
        let p = heuristic_a(&s, &w, SchemaClass::Complex);
        for name in [
            "nation",
            "region",
            "warehouse",
            "district",
            "item",
            "supplier",
        ] {
            let t = s.table_by_name(name).unwrap();
            assert!(p.is_replicated(t), "{name} should be replicated");
        }
        for name in ["orderline", "stock", "customer"] {
            let t = s.table_by_name(name).unwrap();
            assert!(!p.is_replicated(t), "{name} should be partitioned");
        }
        p.check(&s).unwrap();
    }

    #[test]
    fn tpcch_heuristic_b_co_partitions_large_pairs() {
        let s = lpa_schema::tpcch::schema(1.0).expect("schema builds");
        let w = lpa_workload::tpcch::workload(&s).expect("workload builds");
        let p = heuristic_b(&s, &w, SchemaClass::Complex);
        // stock ⋈ orderline is the largest pair; both partitioned on the
        // shared item key (or a compatible co-partitioning).
        let stock = s.table_by_name("stock").unwrap();
        let ol = s.table_by_name("orderline").unwrap();
        assert!(matches!(p.table_state(stock), TableState::PartitionedBy(_)));
        assert!(matches!(p.table_state(ol), TableState::PartitionedBy(_)));
        p.check(&s).unwrap();
    }

    #[test]
    fn heuristics_differ() {
        let s = lpa_schema::ssb::schema(1.0).expect("schema builds");
        let w = lpa_workload::ssb::workload(&s).expect("workload builds");
        let a = heuristic_a(&s, &w, SchemaClass::Star);
        let b = heuristic_b(&s, &w, SchemaClass::Star);
        assert_ne!(a.physical_key(), b.physical_key());
    }
}
