//! Baselines the paper evaluates against (Section 7.1):
//!
//! * [`heuristics`] — the two DBA rules of thumb: co-partition facts with
//!   the most frequently joined / the largest dimension (star schemas), or
//!   replicate-small/partition-by-key vs greedy co-partitioning of the
//!   largest table pairs (complex schemas);
//! * [`optimizer_advisor`] — the classical automated design approach:
//!   search the candidate space minimizing the *engine optimizer's* cost
//!   estimates (unavailable on engines that hide them, like System-X);
//! * [`neural_cost`] — the Section 7.5 alternative: a learned neural cost
//!   model minimized by search, in exploitation- and exploration-driven
//!   variants.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod heuristics;
pub mod neural_cost;
pub mod optimizer_advisor;

pub use heuristics::{heuristic_a, heuristic_b, SchemaClass};
pub use neural_cost::{NeuralCostAdvisor, NeuralCostVariant};
pub use optimizer_advisor::minimum_optimizer_partitioning;
