//! The "minimum optimizer cost" baseline (Section 7.1).
//!
//! Classical automated partitioning designers enumerate candidate designs
//! and pick the one with the minimal *optimizer* cost estimate. We search
//! the same action space as the DRL agent with steepest-descent hill
//! climbing over the engine's (erroneous) estimates — the errors, not the
//! search, are what the paper shows to be the weakness.
//!
//! Returns `None` on engines that do not expose optimizer estimates
//! (System-X), mirroring the "Not available" bars in Fig. 3.

use lpa_cluster::Cluster;
use lpa_partition::{valid_actions, Partitioning};
use lpa_workload::{FrequencyVector, Workload};

/// Estimated workload cost under the engine's optimizer; `None` when the
/// engine hides estimates.
fn estimated_cost(
    cluster: &Cluster,
    workload: &Workload,
    freqs: &FrequencyVector,
    p: &Partitioning,
) -> Option<f64> {
    let mut total = 0.0;
    for (j, q) in workload.queries().iter().enumerate() {
        let f = freqs.as_slice().get(j).copied().unwrap_or(0.0);
        if f == 0.0 {
            continue;
        }
        total += f * cluster.optimizer_estimate(q, p)?;
    }
    Some(total)
}

/// Search for the partitioning minimizing the optimizer's estimated
/// workload cost. `max_rounds` bounds the hill climbing.
pub fn minimum_optimizer_partitioning(
    cluster: &Cluster,
    workload: &Workload,
    freqs: &FrequencyVector,
    max_rounds: usize,
) -> Option<Partitioning> {
    let schema = cluster.schema();
    let mut current = Partitioning::initial(schema);
    let mut current_cost = estimated_cost(cluster, workload, freqs, &current)?;
    for _ in 0..max_rounds {
        let mut best: Option<(f64, Partitioning)> = None;
        for action in valid_actions(schema, &current) {
            // Classical advisors cannot create partitionings the engine
            // does not support; compound keys follow engine capability.
            if !cluster.engine().supports_compound_keys {
                let compound = match action {
                    lpa_partition::Action::Partition { table, attr } => {
                        schema.table(table).attributes[attr.0].is_compound()
                    }
                    lpa_partition::Action::ActivateEdge(e)
                    | lpa_partition::Action::DeactivateEdge(e) => schema
                        .edge(e)
                        .endpoints()
                        .iter()
                        .any(|ep| schema.attribute(*ep).is_compound()),
                    lpa_partition::Action::Replicate { .. } => false,
                };
                if compound {
                    continue;
                }
            }
            // valid_actions only yields applicable actions; skip rather
            // than trust that invariant with a panic.
            let Ok(candidate) = action.apply(schema, &current) else {
                continue;
            };
            let cost = estimated_cost(cluster, workload, freqs, &candidate)?;
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                best = Some((cost, candidate));
            }
        }
        match best {
            Some((cost, candidate)) if cost < current_cost * (1.0 - 1e-9) => {
                current_cost = cost;
                current = candidate;
            }
            _ => break,
        }
    }
    Some(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_cluster::{ClusterConfig, EngineProfile, HardwareProfile};

    #[test]
    fn unavailable_on_system_x() {
        let schema = lpa_schema::microbench::schema(0.002).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let cluster = Cluster::new(
            schema,
            ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
        );
        let f = FrequencyVector::uniform(w.slots());
        assert!(minimum_optimizer_partitioning(&cluster, &w, &f, 5).is_none());
    }

    #[test]
    fn improves_over_initial_on_pgxl() {
        let schema = lpa_schema::microbench::schema(0.002).expect("schema builds");
        let w = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let cluster = Cluster::new(
            schema.clone(),
            ClusterConfig::new(EngineProfile::pgxl(), HardwareProfile::standard()),
        );
        let f = FrequencyVector::uniform(w.slots());
        let p = minimum_optimizer_partitioning(&cluster, &w, &f, 10).unwrap();
        p.check(&schema).unwrap();
        let init = Partitioning::initial(&schema);
        let c0 = estimated_cost(&cluster, &w, &f, &init).unwrap();
        let c1 = estimated_cost(&cluster, &w, &f, &p).unwrap();
        assert!(c1 <= c0, "search must not regress: {c1} vs {c0}");
        assert_ne!(p.physical_key(), init.physical_key(), "found a change");
    }

    #[test]
    fn respects_compound_key_capability() {
        // On PgXL-like engines the returned partitioning never uses a
        // compound key.
        let schema = lpa_schema::tpcch::schema(0.0008).expect("schema builds");
        let w = lpa_workload::tpcch::workload(&schema).expect("workload builds");
        let cluster = Cluster::new(
            schema.clone(),
            ClusterConfig::new(EngineProfile::pgxl(), HardwareProfile::standard()),
        );
        let f = FrequencyVector::uniform(w.slots());
        let p = minimum_optimizer_partitioning(&cluster, &w, &f, 4).unwrap();
        for (i, s) in p.table_states().iter().enumerate() {
            if let lpa_partition::TableState::PartitionedBy(a) = s {
                assert!(
                    !schema.tables()[i].attributes[a.0].is_compound(),
                    "table {i} uses a compound key"
                );
            }
        }
    }
}
