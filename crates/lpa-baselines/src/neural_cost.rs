//! The learned-cost-model alternative of Section 7.5.
//!
//! Instead of Q-learning, train a neural network to predict the workload
//! cost of a partitioning and minimize it with classical search. Like the
//! DRL advisor it is bootstrapped offline on the network-centric cost
//! model (the paper uses 100 k workload/partitioning pairs) and refined
//! online with measured runtimes; two variants differ in how they pick
//! the partitionings to measure:
//!
//! * **Exploit** — deploy the minimizer of the current model each
//!   iteration;
//! * **Explore** — deploy a random partitioning each iteration.
//!
//! The paper shows both are inferior to DRL because they traverse fewer
//! distinct partitionings in the same training time.

use lpa_advisor::OnlineBackend;
use lpa_costmodel::NetworkCostModel;
use lpa_nn::{Adam, Matrix, Mlp, MlpScratch, Pool};
use lpa_partition::{valid_actions, Partitioning, StateEncoder, TableState};
use lpa_schema::Schema;
use lpa_workload::{FrequencyVector, MixSampler, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the online iterations choose partitionings to measure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NeuralCostVariant {
    Exploit,
    Explore,
}

/// A neural cost model `f(partitioning, workload mix) → cost` plus the
/// search machinery that turns it into a partitioning advisor.
#[derive(Debug)]
pub struct NeuralCostAdvisor {
    schema: Schema,
    workload: Workload,
    encoder: StateEncoder,
    net: Mlp,
    opt: Adam,
    /// Normalization constant for targets (mean bootstrap cost).
    cost_norm: f64,
    variant: NeuralCostVariant,
    rng: StdRng,
    dataset: Vec<(Vec<f32>, f32)>,
    /// Distinct partitionings measured online (the paper's explanation for
    /// why DRL wins: it sees ~3x more).
    pub distinct_partitionings: std::collections::HashSet<Vec<TableState>>,
}

impl NeuralCostAdvisor {
    /// Offline bootstrap on random (partitioning, mix) pairs labeled by
    /// the network-centric cost model.
    #[allow(clippy::too_many_arguments)]
    pub fn bootstrap_offline(
        schema: Schema,
        workload: Workload,
        model: &NetworkCostModel,
        pairs: usize,
        epochs: usize,
        variant: NeuralCostVariant,
        seed: u64,
    ) -> Self {
        let encoder = StateEncoder::new(&schema, workload.slots());
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new(&[encoder.state_dim(), 128, 64, 1], &mut rng);
        let opt = Adam::new(1e-3, net.layers());
        let mut advisor = Self {
            schema,
            workload,
            encoder,
            net,
            opt,
            cost_norm: 1.0,
            variant,
            rng,
            dataset: Vec::new(),
            distinct_partitionings: std::collections::HashSet::new(),
        };

        let mut sampler = MixSampler::uniform(&advisor.workload);
        let mut labels = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let p = advisor.random_partitioning();
            let f = sampler.sample(&mut advisor.rng);
            let cost = model.workload_cost(&advisor.schema, &advisor.workload, &f, &p);
            let x = advisor.encoder.encode_state(&p, &f);
            labels.push(cost);
            advisor.dataset.push((x, cost as f32));
        }
        advisor.cost_norm = (labels.iter().sum::<f64>() / labels.len().max(1) as f64).max(1e-9);
        for (_, y) in &mut advisor.dataset {
            *y /= advisor.cost_norm as f32;
        }
        advisor.fit(epochs);
        advisor
    }

    /// Online refinement: in each iteration, deploy a partitioning
    /// (model minimizer or random, per variant), measure the workload on
    /// the sampled cluster (sharing the runtime cache and optimizations
    /// with the DRL advisor for fairness), and retrain.
    pub fn refine_online(
        &mut self,
        backend: &mut OnlineBackend,
        iterations: usize,
        mixes_per_iteration: usize,
        epochs_per_iteration: usize,
    ) {
        let mut sampler = MixSampler::uniform(&self.workload);
        for _ in 0..iterations {
            let f0 = sampler.sample(&mut self.rng);
            let p = match self.variant {
                NeuralCostVariant::Exploit => self.minimize(&f0),
                NeuralCostVariant::Explore => self.random_partitioning(),
            };
            self.distinct_partitionings
                .insert(p.physical_key().to_vec());
            for _ in 0..mixes_per_iteration {
                let f = sampler.sample(&mut self.rng);
                let measured = -backend.reward(&self.workload, &p, &f);
                let x = self.encoder.encode_state(&p, &f);
                self.dataset.push((x, (measured / self.cost_norm) as f32));
            }
            self.fit(epochs_per_iteration);
        }
    }

    /// Suggest a partitioning for a mix by minimizing the model.
    pub fn suggest(&mut self, freqs: &FrequencyVector) -> Partitioning {
        self.minimize(freqs)
    }

    /// Model prediction (de-normalized).
    pub fn predicted_cost(&self, p: &Partitioning, freqs: &FrequencyVector) -> f64 {
        let x = self.encoder.encode_state(p, freqs);
        self.net.predict_scalar(&x) as f64 * self.cost_norm
    }

    /// Steepest-descent search over the action space using predictions.
    /// Each round scores all of the current state's candidates with one
    /// batched forward instead of one tiny network call per candidate;
    /// every batch row equals the scalar [`Self::predicted_cost`]
    /// bit-for-bit (rows of a matmul are independent), and the first-
    /// strict-minimum selection walks candidates in the same order, so
    /// the search trajectory is unchanged.
    fn minimize(&mut self, freqs: &FrequencyVector) -> Partitioning {
        let mut current = Partitioning::initial(&self.schema);
        let mut current_cost = self.predicted_cost(&current, freqs);
        let rounds = self.schema.tables().len() + self.schema.edges().len();
        // Pool and scratch hoisted out of the search loop.
        let pool = Pool::current();
        let mut scratch = MlpScratch::new();
        let mut inputs = Matrix::zeros(0, 0);
        let mut preds: Vec<f32> = Vec::new();
        let dim = self.encoder.state_dim();
        for _ in 0..rounds {
            let cands: Vec<Partitioning> = valid_actions(&self.schema, &current)
                .into_iter()
                .filter_map(|a| a.apply(&self.schema, &current).ok())
                .collect();
            if cands.is_empty() {
                break;
            }
            inputs.resize_zeroed(cands.len(), dim);
            for (cand, row) in cands.iter().zip(inputs.data_mut().chunks_exact_mut(dim)) {
                self.encoder.encode_state_into(cand, freqs, row);
            }
            preds.clear();
            self.net
                .predict_batch_into(pool, &inputs, &mut scratch, &mut preds);
            let mut best: Option<(f64, usize)> = None;
            for (i, &p) in preds.iter().enumerate() {
                let c = p as f64 * self.cost_norm;
                if best.map(|(b, _)| c < b).unwrap_or(true) {
                    best = Some((c, i));
                }
            }
            match best {
                Some((c, i)) if c < current_cost => {
                    let Some(cand) = cands.into_iter().nth(i) else {
                        break;
                    };
                    current_cost = c;
                    current = cand;
                }
                _ => break,
            }
        }
        current
    }

    fn random_partitioning(&mut self) -> Partitioning {
        let states = (0..self.schema.tables().len())
            .map(|t| {
                let table = self.schema.table(lpa_schema::TableId(t));
                let attrs: Vec<_> = table.partitionable_attrs().collect();
                let choice = self.rng.gen_range(0..=attrs.len());
                match attrs.get(choice) {
                    Some(&a) => TableState::PartitionedBy(a),
                    None => TableState::Replicated,
                }
            })
            .collect();
        Partitioning::from_states(&self.schema, states)
    }

    /// A few epochs of minibatch MSE training over the dataset.
    fn fit(&mut self, epochs: usize) {
        const BATCH: usize = 32;
        if self.dataset.is_empty() {
            return;
        }
        for _ in 0..epochs {
            // Deterministic shuffle via index permutation.
            let mut order: Vec<usize> = (0..self.dataset.len()).collect();
            for i in (1..order.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(BATCH) {
                let rows: Vec<&[f32]> = chunk
                    .iter()
                    .map(|&i| self.dataset[i].0.as_slice())
                    .collect();
                let x = Matrix::from_rows(&rows);
                let y: Vec<f32> = chunk.iter().map(|&i| self.dataset[i].1).collect();
                self.net.train_mse(&x, &y, &mut self.opt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpa_costmodel::CostParams;

    fn setup(variant: NeuralCostVariant) -> NeuralCostAdvisor {
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let workload = lpa_workload::microbench::workload(&schema).expect("workload builds");
        let model = NetworkCostModel::new(CostParams::standard());
        NeuralCostAdvisor::bootstrap_offline(schema, workload, &model, 600, 30, variant, 17)
    }

    #[test]
    fn bootstrap_learns_cost_ordering() {
        let advisor = setup(NeuralCostVariant::Exploit);
        let schema = lpa_schema::microbench::schema(1.0).expect("schema builds");
        let model = NetworkCostModel::new(CostParams::standard());
        let f = FrequencyVector::uniform(2);
        // The model should prefer a/c co-partitioning over replicating a.
        let a = schema.table_by_name("a").unwrap();
        let good = {
            let a_c = schema.attr_ref("a", "a_c_key").unwrap();
            let mut s = Partitioning::initial(&schema).table_states().to_vec();
            s[a.0] = TableState::PartitionedBy(a_c.attr);
            Partitioning::from_states(&schema, s)
        };
        let bad = {
            let mut s = Partitioning::initial(&schema).table_states().to_vec();
            s[a.0] = TableState::Replicated;
            Partitioning::from_states(&schema, s)
        };
        let pg = advisor.predicted_cost(&good, &f);
        let pb = advisor.predicted_cost(&bad, &f);
        let tg = model.workload_cost(advisor.schema(), &advisor.workload, &f, &good);
        let tb = model.workload_cost(advisor.schema(), &advisor.workload, &f, &bad);
        assert!(tg < tb, "sanity: truth orders them");
        assert!(pg < pb, "model must order extremes correctly: {pg} vs {pb}");
    }

    #[test]
    fn minimize_improves_over_initial_prediction() {
        let mut advisor = setup(NeuralCostVariant::Exploit);
        let f = FrequencyVector::uniform(2);
        let s0 = Partitioning::initial(&advisor.schema().clone());
        let suggested = advisor.suggest(&f);
        let c0 = advisor.predicted_cost(&s0, &f);
        let c1 = advisor.predicted_cost(&suggested, &f);
        assert!(c1 <= c0 + 1e-6);
    }

    #[test]
    fn explore_variant_visits_many_partitionings() {
        let mut advisor = setup(NeuralCostVariant::Explore);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30 {
            seen.insert(advisor.random_partitioning().physical_key().to_vec());
        }
        assert!(seen.len() > 10, "random sampling diversity: {}", seen.len());
    }

    impl NeuralCostAdvisor {
        fn schema(&self) -> &Schema {
            &self.schema
        }
    }
}
