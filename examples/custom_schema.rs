//! Bring your own schema: define a catalog and a workload with the
//! builder APIs, then train an advisor for it — what a cloud provider
//! would run per customer.
//!
//! ```sh
//! cargo run --release --example custom_schema
//! ```

#![allow(clippy::unwrap_used)] // test-scale code; libraries are gated by lpa-lint L001

use lpa::prelude::*;
use lpa::schema::{Attribute, Domain, Table};

fn main() {
    // An IoT fleet-analytics schema: readings reference devices and sites.
    let mut b = SchemaBuilder::new("fleet");
    b.table(Table::new(
        "readings",
        vec![
            Attribute::new("r_id", Domain::PrimaryKey),
            Attribute::new("r_device", Domain::ForeignKey(lpa::schema::TableId(1))),
            Attribute::new("r_site", Domain::ForeignKey(lpa::schema::TableId(2))),
        ],
        2_000_000,
        64,
    ));
    b.table(Table::new(
        "devices",
        vec![
            Attribute::new("d_id", Domain::PrimaryKey),
            Attribute::new("d_model", Domain::Fixed(50)),
        ],
        40_000,
        96,
    ));
    b.table(Table::new(
        "sites",
        vec![Attribute::new("s_id", Domain::PrimaryKey)],
        500,
        200,
    ));
    b.edge(("readings", "r_device"), ("devices", "d_id"));
    b.edge(("readings", "r_site"), ("sites", "s_id"));
    let schema = b.build().expect("valid schema").scaled(0.05);

    // Two recurring dashboards.
    let per_device = QueryBuilder::new(&schema, "per_device_health")
        .join(("readings", "r_device"), ("devices", "d_id"))
        .filter("devices", 0.1)
        .finish()
        .unwrap();
    let per_site = QueryBuilder::new(&schema, "per_site_rollup")
        .join(("readings", "r_site"), ("sites", "s_id"))
        .cpu(1.5)
        .finish()
        .unwrap();
    let workload = Workload::new(vec![per_device, per_site]);

    println!("training an advisor for the custom schema…");
    let cfg = DqnConfig::simulation(120, 8).with_seed(5);
    let mut advisor = Advisor::train_offline(
        schema.clone(),
        workload.clone(),
        NetworkCostModel::new(CostParams::standard()),
        MixSampler::uniform(&workload),
        cfg,
        true,
    );

    // Device-dashboard-heavy vs site-dashboard-heavy mixes.
    for (label, counts) in [("device-heavy", [1.0, 0.1]), ("site-heavy", [0.1, 1.0])] {
        let mix = FrequencyVector::from_counts(&counts, 2);
        let s = advisor.suggest(&mix);
        println!("{label:<13} → {}", s.partitioning.describe(&schema));
    }
}
