//! A retailer's cloud data warehouse: TPC-DS-style star schemas with
//! several fact tables sharing dimensions — the scenario where the paper's
//! advisor finds the non-obvious "co-partition every channel's fact tables
//! with `item`" layout that lets sales ⋈ returns run locally.
//!
//! ```sh
//! cargo run --release --example cloud_warehouse
//! ```

#![allow(clippy::unwrap_used)] // test-scale code; libraries are gated by lpa-lint L001

use lpa::prelude::*;

fn main() {
    let schema = lpa::schema::tpcds::schema(0.005).expect("schema builds");
    let workload = lpa::workload::tpcds::workload(&schema).expect("workload builds");
    println!(
        "TPC-DS: {} tables ({} fact), {} queries",
        schema.tables().len(),
        lpa::schema::tpcds::fact_tables().len(),
        workload.queries().len()
    );

    // What a DBA would do.
    let class = SchemaClass::detect(&schema);
    let ha = heuristic_a(&schema, &workload, class);
    let hb = heuristic_b(&schema, &workload, class);

    // What the learned advisor does (offline phase only, for speed).
    println!("training the advisor offline (~a minute)…");
    let cfg = DqnConfig::simulation(160, 30).with_seed(7);
    let mut advisor = Advisor::train_offline(
        schema.clone(),
        workload.clone(),
        NetworkCostModel::new(CostParams::standard()),
        MixSampler::uniform(&workload),
        cfg,
        true, // the target engine supports compound keys
    );
    let mix = workload.uniform_frequencies();
    let p_rl = advisor.suggest(&mix).partitioning;

    // Compare all three on the simulated in-memory engine.
    let mut cluster = Cluster::new(
        schema.clone(),
        ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
    );
    for (label, p) in [
        ("Heuristic (a)", &ha),
        ("Heuristic (b)", &hb),
        ("RL advisor", &p_rl),
    ] {
        cluster.deploy(p);
        let t = cluster.run_workload(&workload, &mix);
        println!("{label:<16} {t:>9.3}s");
    }
    println!("advisor's layout: {}", p_rl.describe(&schema));
}
