//! Workload drift without retraining: the advisor is trained once over
//! *many* workload mixes; when the observed mix shifts, inference alone
//! produces a partitioning suited to the new mix (Section 7.4). New
//! queries are absorbed with cheap incremental training into reserved
//! frequency slots (Section 5).
//!
//! ```sh
//! cargo run --release --example workload_drift
//! ```

#![allow(clippy::unwrap_used)] // test-scale code; libraries are gated by lpa-lint L001

use lpa::advisor::incremental;
use lpa::prelude::*;
use lpa::workload::QueryId;

fn main() {
    let schema = lpa::schema::tpcch::schema(0.001).expect("schema builds");
    // Reserve two slots for queries we have not seen yet.
    let workload = lpa::workload::tpcch::workload(&schema)
        .expect("workload builds")
        .with_reserved_slots(2);

    println!("training the advisor once over many workload mixes…");
    let cfg = DqnConfig::simulation(220, 26).with_seed(11);
    let mut advisor = Advisor::train_offline(
        schema.clone(),
        workload.clone(),
        NetworkCostModel::new(CostParams::standard()),
        MixSampler::uniform(&workload),
        cfg,
        false, // Postgres-XL-like target: no compound keys
    );

    // Monday: a balanced analytical mix.
    let balanced = workload.uniform_frequencies();
    let p1 = advisor.suggest(&balanced).partitioning;
    println!("\nbalanced mix       → {}", p1.describe(&schema));

    // Friday: inventory-heavy reporting (stock ⋈ item queries dominate).
    let hot = lpa::workload::tpcch::stock_item_queries(&schema, &workload);
    let mut counts = vec![0.2; workload.queries().len()];
    for q in &hot {
        counts[q.0] = 1.0;
    }
    let inventory_heavy = FrequencyVector::from_counts(&counts, workload.slots());
    let p2 = advisor.suggest(&inventory_heavy).partitioning;
    println!("inventory-heavy mix → {}", p2.describe(&schema));
    println!("(no retraining happened between the two suggestions)");

    // A genuinely new query appears: absorb it incrementally.
    let new_query = QueryBuilder::new(&schema, "weekly_history_report")
        .join_multi(&lpa::workload::tpcch::HIST_CUST)
        .filter("history", 0.2)
        .finish()
        .expect("valid query");
    println!("\nadding a new query (weekly_history_report) with incremental training…");
    let report = incremental::add_queries(&mut advisor, vec![new_query], 25)
        .expect("a reserved slot is available");
    let new_id = report.new_ids[0];
    let mix_with_new = FrequencyVector::extreme(workload.slots(), QueryId(new_id.0), 0.2, 1.0);
    let p3 = advisor.suggest(&mix_with_new).partitioning;
    println!("new-query-heavy mix → {}", p3.describe(&schema));
}
