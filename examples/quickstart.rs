//! Quickstart: train a partitioning advisor offline and let it pick a
//! partitioning for the paper's three-table microbenchmark.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used)] // test-scale code; libraries are gated by lpa-lint L001

use lpa::prelude::*;

fn main() {
    // A fact table `a` (6M rows at full scale) joining two dimensions:
    // `b` (small) and `c` (large). Run at 5% scale for a fast demo.
    let schema = lpa::schema::microbench::schema(0.05).expect("schema builds");
    let workload = lpa::workload::microbench::workload(&schema).expect("workload builds");
    println!(
        "schema: {} tables, {} candidate co-partitioning edges",
        schema.tables().len(),
        schema.edges().len()
    );

    // Offline phase (Section 4.1): the agent explores partitionings in a
    // simulation, rewarded by the network-centric cost model.
    println!("training offline (a few seconds)…");
    let cfg = DqnConfig::simulation(150, 10).with_seed(42);
    let mut advisor = Advisor::train_offline(
        schema.clone(),
        workload.clone(),
        NetworkCostModel::new(CostParams::standard()),
        MixSampler::uniform(&workload),
        cfg,
        true,
    );

    // Inference (Section 6): greedy rollout, best state wins.
    let mix = workload.uniform_frequencies();
    let suggestion = advisor.suggest(&mix);
    println!(
        "suggested partitioning: {}",
        suggestion.partitioning.describe(&schema)
    );

    // Validate the suggestion against the naive layout on the simulated
    // cluster (actual row-level execution, not the cost model).
    let mut cluster = Cluster::new(
        schema.clone(),
        ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
    );
    let naive = Partitioning::initial(&schema);
    cluster.deploy(&naive);
    let t_naive = cluster.run_workload(&workload, &mix);
    cluster.deploy(&suggestion.partitioning);
    let t_rl = cluster.run_workload(&workload, &mix);
    println!("measured workload runtime: naive {t_naive:.4}s → advisor {t_rl:.4}s");
    if t_rl < t_naive {
        println!(
            "the advisor's layout is {:.1}% faster",
            (1.0 - t_rl / t_naive) * 100.0
        );
    }
}
