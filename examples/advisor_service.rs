//! The advisor as a service (the paper's Figure 1 production loop):
//! applications submit SQL, the monitor counts frequencies, a forecaster
//! anticipates the next window's mix, and the controller repartitions the
//! database only when the benefit amortizes the repartitioning cost.
//!
//! ```sh
//! cargo run --release --example advisor_service
//! ```

#![allow(clippy::unwrap_used)] // test-scale code; libraries are gated by lpa-lint L001

use lpa::cluster::GuardrailEvent;
use lpa::prelude::*;
use lpa::service::ServiceEvent;

fn main() {
    let schema = lpa::schema::ssb::schema(0.005).expect("schema builds");
    let workload = lpa::workload::ssb::workload(&schema)
        .expect("workload builds")
        .with_reserved_slots(2);

    println!("training the advisor once (offline)…");
    let cfg = DqnConfig::simulation(200, 16).with_seed(77);
    let advisor = Advisor::train_offline(
        schema.clone(),
        workload.clone(),
        NetworkCostModel::new(CostParams::standard()),
        MixSampler::uniform(&workload),
        cfg,
        true,
    );

    // Persist + restore the trained policy — what a provider would do
    // between the training cluster and the serving fleet.
    let snapshot_json = serde_json_roundtrip(&advisor);
    println!(
        "policy snapshot: {} KiB of JSON",
        snapshot_json.len() / 1024
    );

    let production = Cluster::new(
        schema.clone(),
        ClusterConfig::new(EngineProfile::system_x(), HardwareProfile::standard()),
    );
    let mut service = PartitioningService::new(advisor, production, ServiceConfig::default());

    // Week 1: date-filtered revenue dashboards dominate.
    println!("\n-- window 1: revenue dashboards --");
    for year in [1992, 1993, 1994, 1995, 1996] {
        for _ in 0..4 {
            service.observe_sql(&format!(
                "SELECT sum(lo_revenue) FROM lineorder l, date d \
                 WHERE l.lo_orderdate = d.d_datekey AND d.d_year = {year} \
                 AND l.lo_orderkey < 100000"
            ));
        }
    }
    report(service.end_window());

    // Week 2: supplier/customer drill-downs take over, plus a brand-new
    // query shape that the advisor absorbs with incremental training.
    println!("\n-- window 2: drill-downs + a new query shape --");
    for _ in 0..12 {
        service.observe_sql(
            "SELECT sum(l.lo_revenue) FROM lineorder l, customer c, supplier s, date d \
             WHERE l.lo_custkey = c.c_custkey AND l.lo_suppkey = s.s_suppkey \
             AND l.lo_orderdate = d.d_datekey AND c.c_nation = 3 AND s.s_nation = 3",
        );
    }
    for _ in 0..3 {
        service
            .observe_sql("SELECT count(*) FROM customer c, supplier s WHERE c.c_city = s.s_city");
        service.observe_sql(
            "SELECT count(*) FROM part p, lineorder l WHERE l.lo_partkey = p.p_partkey \
             AND p.p_brand BETWEEN 100 AND 120",
        );
    }
    report(service.end_window());

    // Week 3: the drill-down mix persists; the forecaster has caught up and
    // the layout should now be stable (no repeated repartitioning churn).
    println!("\n-- window 3: the mix persists --");
    for _ in 0..12 {
        service.observe_sql(
            "SELECT sum(l.lo_revenue) FROM lineorder l, customer c, supplier s, date d \
             WHERE l.lo_custkey = c.c_custkey AND l.lo_suppkey = s.s_suppkey \
             AND l.lo_orderdate = d.d_datekey AND c.c_nation = 3 AND s.s_nation = 3",
        );
    }
    report(service.end_window());
    println!(
        "\nfinal layout: {}",
        service.cluster().deployed().describe(&schema)
    );
}

fn report(r: lpa::service::WindowReport) {
    for e in &r.events {
        match e {
            ServiceEvent::Guardrail(g) => match g {
                GuardrailEvent::CanaryStarted {
                    benefit_per_run,
                    repartition_cost,
                    ..
                } => println!(
                    "  → staged a canary (predicted benefit {benefit_per_run:.4}s/run vs one-off cost {repartition_cost:.3}s)"
                ),
                GuardrailEvent::Committed { mean_observed, baseline_seconds, .. } => println!(
                    "  → committed the new layout (observed {mean_observed:.3}s/window vs baseline {baseline_seconds:.3}s)"
                ),
                GuardrailEvent::RolledBack { reason, .. } => {
                    println!("  → rolled back the canary ({reason:?})")
                }
                GuardrailEvent::KeptCurrent {
                    benefit_per_run,
                    repartition_cost,
                    ..
                } => println!(
                    "  → kept layout (benefit {benefit_per_run:.4}s/run would not amortize {repartition_cost:.3}s)"
                ),
                GuardrailEvent::StageRejected { reason, .. } => {
                    println!("  → deferred the repartitioning ({reason:?})")
                }
                GuardrailEvent::CanaryObserved { observed, .. } => println!(
                    "  → canary window observed ({:.3}s weighted)",
                    observed.weighted_seconds
                ),
                GuardrailEvent::CanaryExtended { inconclusive, .. } => {
                    println!("  → canary extended (degraded evidence ×{inconclusive})")
                }
            },
            ServiceEvent::NoTraffic => println!("  → no traffic"),
            ServiceEvent::IncrementallyTrained { added, skipped } => println!(
                "  → incrementally trained for {added} new queries ({skipped} deferred)"
            ),
        }
    }
    if !r.health.healthy() || r.health.degraded_measurements() > 0 {
        println!(
            "  → health: {}/{} nodes down, {} stragglers, {} degraded links, {} degraded measurements",
            r.health.nodes_down,
            r.health.nodes,
            r.health.stragglers,
            r.health.degraded_links,
            r.health.degraded_measurements()
        );
    }
}

/// Round-trip the policy through JSON (stand-in for writing it to object
/// storage between the training and serving environments).
fn serde_json_roundtrip(advisor: &Advisor) -> String {
    let snap = advisor.snapshot();
    let json = serde_json::to_string(&snap).expect("serializable policy");
    let _back: lpa::rl::AgentSnapshot = serde_json::from_str(&json).expect("round-trips");
    json
}
