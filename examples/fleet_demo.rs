//! Multi-tenant fleet demo: one process advising many databases.
//!
//! Builds a durable [`CheckpointedFleet`] with seven tenant specs under a
//! six-tenant admission budget (the seventh is rejected), one of them a
//! "storm" tenant whose cluster runs a seeded fault storm *and* whose
//! slices fail with injected step errors — it gets quarantined, cools
//! down, and rejoins without ever touching its neighbours. Halfway
//! through, the process "crashes" (the fleet is dropped) and
//! [`CheckpointedFleet::resume_or`] rebuilds everything from the manifest
//! and per-tenant checkpoint lineages, bit-identical, to finish the run.
//!
//! Run with: `cargo run --release --example fleet_demo`

use lpa::prelude::*;
use lpa::store::CheckpointedFleet;

/// Seven specs against a budget of six: admission control rejects the last.
fn specs() -> Vec<TenantSpec> {
    (0..7)
        .map(|i| {
            let bench = if i % 2 == 0 {
                Benchmark::Ssb
            } else {
                Benchmark::TpcCh
            };
            let mut spec = TenantSpec::new(format!("tenant-{i}"), bench, 0.001, 1000 + i);
            spec.episodes = 4;
            if i == 2 {
                // The problem tenant: seeded fault storm on its cluster
                // plus injected step errors on its slices. Its chaos is
                // salted per tenant, so it is bit-neutral for everyone else.
                spec.fault_plan = FaultPlan::storm(0xBAD_5EED);
                spec.step_error_rate = 0.5;
            }
            spec
        })
        .collect()
}

fn config() -> FleetConfig {
    FleetConfig {
        seed: 0xF1EE7D,
        max_tenants: 6,
        quarantine: QuarantinePolicy {
            max_errors: 0, // quarantine on the first error
            cooldown_rounds: 1,
        },
        ..FleetConfig::default()
    }
}

fn report_fingerprints(report: &FleetReport) -> Vec<u64> {
    report
        .per_tenant
        .iter()
        .map(|t| t.weight_fingerprint)
        .collect()
}

fn print_report(when: &str, report: &FleetReport) {
    println!(
        "\n[{when}] round {}, {} tenant(s), {} quarantined, {} admission(s) rejected",
        report.round,
        report.per_tenant.len(),
        report.quarantined,
        report.rejected_admissions
    );
    for t in &report.per_tenant {
        let status = match t.status {
            TenantStatus::Active => "active".to_string(),
            TenantStatus::Quarantined { until_round } => {
                format!("quarantined until round {until_round}")
            }
        };
        println!(
            "  {:>9}  ep {}/4  slices {:>2} run / {} skipped  errors {}  quarantines {} (rejoins {})  deploys {}  weights {:016x}  [{status}]",
            t.name,
            t.episode,
            t.counters.slices_run,
            t.counters.slices_skipped,
            t.counters.step_errors,
            t.counters.quarantines,
            t.counters.rejoins,
            t.counters.deployments,
            t.weight_fingerprint,
        );
    }
    let s = &report.store;
    println!(
        "  store: {} checkpoint(s) written, {} corruption(s) detected, {} restore(s), {} manifest fallback(s)",
        s.checkpoints_written, s.corruptions_detected, s.restores, s.manifest_fallbacks
    );
}

fn main() {
    let root = std::env::temp_dir().join(format!("lpa-fleet-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Phase 1: admit and run the first half, checkpointing every 2 rounds.
    let mut fleet = CheckpointedFleet::create(config(), &root, 2).expect("fleet root");
    for spec in specs() {
        match fleet.admit(spec) {
            Ok(id) => println!("admitted tenant {id}"),
            Err(e) => println!("admission rejected: {e}"),
        }
    }
    fleet.run_rounds(4);
    print_report("before crash", &fleet.report());
    let fingerprints = report_fingerprints(&fleet.report());
    drop(fleet); // the "crash": nothing survives but the files under `root`

    // Phase 2: a fresh process resumes the whole fleet from disk —
    // scheduler round, admission counters, every tenant's training state —
    // and finishes the run.
    let mut fleet = CheckpointedFleet::resume_or(config(), specs(), &root, 2).expect("resume");
    assert_eq!(
        report_fingerprints(&fleet.report()),
        fingerprints,
        "resume restores every tenant's weights bit-identically"
    );
    println!(
        "\nresumed at round {} — weights bit-identical",
        fleet.fleet().round()
    );
    fleet.run_rounds(4);
    print_report("after resume", &fleet.report());

    let _ = std::fs::remove_dir_all(&root);
}
